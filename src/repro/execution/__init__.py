"""Fault-tolerant execution layer: supervised pool, retry policy, chaos.

``repro.execution`` sits between the api/pipeline layer and the raw forked
worker pool.  :func:`supervised_map` schedules every work item as its own
future with retry/backoff/timeout (:class:`RetryPolicy`), recovers broken
pools, and degrades to an in-process serial loop as a last resort; every
recovery action is counted in an :class:`ExecutionReport`.  The seeded
:class:`ChaosMonkey` injects worker kills, raises, slow workers and artifact
bit-rot deterministically so the recovery paths stay tested.
"""

from repro.execution.chaos import (
    CHAOS_ENV,
    ChaosError,
    ChaosKill,
    ChaosMonkey,
    chaos_from_env,
    parse_chaos_spec,
)
from repro.execution.policy import (
    DEFAULT_POLICY,
    ONE_SHOT_POLICY,
    RetryPolicy,
    deterministic_uniform,
)
from repro.execution.report import ExecutionReport
from repro.execution.supervisor import (
    FAILURE_STATUSES,
    STATUS_ABORTED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ItemFailedError,
    ItemOutcome,
    ItemTimeoutError,
    MaxFailuresExceeded,
    fork_available,
    raise_first_failure,
    supervised_map,
)

__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosKill",
    "ChaosMonkey",
    "DEFAULT_POLICY",
    "ExecutionReport",
    "FAILURE_STATUSES",
    "ItemFailedError",
    "ItemOutcome",
    "ItemTimeoutError",
    "MaxFailuresExceeded",
    "ONE_SHOT_POLICY",
    "RetryPolicy",
    "STATUS_ABORTED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "chaos_from_env",
    "deterministic_uniform",
    "fork_available",
    "parse_chaos_spec",
    "raise_first_failure",
    "supervised_map",
]
