"""Retry, timeout and backoff policy for the supervised executor.

A :class:`RetryPolicy` is immutable plain data so it can ride configuration
(and tests) without surprises.  Backoff is exponential with **deterministic
jitter**: the jitter fraction is derived from ``(item index, attempt)``
through a :class:`numpy.random.SeedSequence`, so two runs of the same
workload schedule byte-identical retry delays — there is no hidden global
randomness anywhere in the failure path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import require


def deterministic_uniform(*entropy: int) -> float:
    """A uniform in ``[0, 1)`` that is a pure function of ``entropy``."""
    state = np.random.SeedSequence([int(value) & (2**63 - 1) for value in entropy])
    return float(state.generate_state(1, dtype=np.uint64)[0]) / float(2**64)


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries, times out and backs off one work item.

    Attributes
    ----------
    max_attempts:
        Total attempts per item (first try included).  ``1`` disables retry.
    timeout:
        Per-item wall-clock seconds, or ``None`` for no deadline.  Enforced
        on the process-pool path (a stuck worker is reclaimed by respawning
        the pool); the serial fallback cannot preempt a running item.
    backoff_base / backoff_factor / backoff_max:
        Delay before attempt ``k+1`` is ``base * factor**(k-1)``, clamped to
        ``backoff_max`` seconds.
    jitter:
        Fractional jitter added on top of the clamped delay, derived
        deterministically from ``(item index, attempt)``.
    max_pool_respawns:
        Broken-pool respawns tolerated before degrading to the in-process
        serial fallback.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    max_pool_respawns: int = 3

    def __post_init__(self):
        require(isinstance(self.max_attempts, int) and self.max_attempts >= 1,
                f"max_attempts must be a positive integer, got {self.max_attempts!r}")
        require(self.timeout is None or self.timeout > 0,
                f"timeout must be positive (or None), got {self.timeout!r}")
        require(self.backoff_base >= 0, "backoff_base must be non-negative")
        require(self.backoff_factor >= 1, "backoff_factor must be >= 1")
        require(self.backoff_max >= 0, "backoff_max must be non-negative")
        require(0 <= self.jitter <= 1, "jitter must be a fraction in [0, 1]")
        require(isinstance(self.max_pool_respawns, int) and self.max_pool_respawns >= 0,
                f"max_pool_respawns must be a non-negative integer, got {self.max_pool_respawns!r}")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Seconds to wait before re-submitting ``index`` for ``attempt``.

        Deterministic: exponential in the attempt number, with a jitter
        fraction that is a pure function of ``(index, attempt)``.
        """
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** max(0, attempt - 2))
        return base * (1.0 + self.jitter * deterministic_uniform(index, attempt))


#: Policy used when callers do not configure one (resilient but finite).
DEFAULT_POLICY = RetryPolicy()

#: Policy reproducing the historical one-shot semantics (no retry at all).
ONE_SHOT_POLICY = RetryPolicy(max_attempts=1, max_pool_respawns=0)


__all__ = ["DEFAULT_POLICY", "ONE_SHOT_POLICY", "RetryPolicy", "deterministic_uniform"]
