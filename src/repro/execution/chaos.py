"""Seeded chaos injection for the supervised executor and the artifact store.

The paper's rumor-spreading processes treat message drops and node crashes as
first-class events; this module does the same for the harness that runs them.
A :class:`ChaosMonkey` deterministically injects four fault families:

* **kill** — the worker process exits abruptly (``os._exit``), which the
  supervisor observes as a broken process pool;
* **raise** — the work item raises :class:`ChaosError` mid-attempt;
* **slow** — the attempt sleeps before running, tripping per-item timeouts;
* **corrupt** — a stored JSON artifact's payload is flipped on disk without
  updating its checksum, which the sink must detect on load.

Every decision is a pure function of ``(seed, item index, attempt)`` (or of
the artifact key), so a chaos run is exactly reproducible: the fault-injection
test suite replays identical kill/raise/slow schedules on every platform, and
a retried attempt can make progress because the next attempt draws a fresh
decision.  Kills only ever fire inside worker processes — in the parent (or
the serial fallback) a kill decision degrades to a raise so chaos can never
take down the supervising process itself.

``chaos_from_env()`` reads the ``REPRO_CHAOS`` environment variable
(``"kill=0.1,raise=0.1,slow=0.05,corrupt=0.1,slow_seconds=0.2,seed=0"``) so
CI can run the ordinary CLI under injection without code changes.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.execution.policy import deterministic_uniform
from repro.utils.validation import require, require_probability

#: Environment variable holding a chaos spec for :func:`chaos_from_env`.
CHAOS_ENV = "REPRO_CHAOS"


class ChaosError(RuntimeError):
    """An error injected by the chaos harness (not a real failure)."""


class ChaosKill(ChaosError):
    """A kill decision raised in-process (parent / serial fallback only)."""


def _in_worker_process() -> bool:
    """True when running inside a spawned/forked child process."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class ChaosMonkey:
    """Deterministic fault injector.

    Rates are per-attempt probabilities; they are evaluated against one
    uniform draw per ``(seed, index, attempt)`` in the order kill → raise →
    slow, so the families are mutually exclusive within an attempt.
    """

    seed: int = 0
    kill_rate: float = 0.0
    raise_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.25
    corrupt_rate: float = 0.0

    def __post_init__(self):
        require(isinstance(self.seed, int), f"seed must be an integer, got {self.seed!r}")
        for name in ("kill_rate", "raise_rate", "slow_rate", "corrupt_rate"):
            require_probability(getattr(self, name), name)
        require(self.slow_seconds >= 0, "slow_seconds must be non-negative")
        require(self.kill_rate + self.raise_rate + self.slow_rate <= 1.0,
                "kill_rate + raise_rate + slow_rate must not exceed 1")

    # -- per-attempt injection ---------------------------------------------

    def decision(self, index: int, attempt: int) -> Optional[str]:
        """The fault injected for this attempt: kill/raise/slow, or None."""
        draw = deterministic_uniform(self.seed, 0xC4A05, index, attempt)
        if draw < self.kill_rate:
            return "kill"
        if draw < self.kill_rate + self.raise_rate:
            return "raise"
        if draw < self.kill_rate + self.raise_rate + self.slow_rate:
            return "slow"
        return None

    def maybe_inject(self, index: int, attempt: int) -> None:
        """Inject this attempt's fault (called at the top of a work item)."""
        fault = self.decision(index, attempt)
        if fault is None:
            return
        if fault == "kill":
            if _in_worker_process():
                os._exit(86)  # abrupt worker death: the pool breaks
            raise ChaosKill(
                f"chaos kill for item {index} attempt {attempt} "
                "(degraded to a raise outside a worker process)"
            )
        if fault == "raise":
            raise ChaosError(f"chaos raise for item {index} attempt {attempt}")
        time.sleep(self.slow_seconds)

    # -- artifact corruption -----------------------------------------------

    def corrupts_key(self, key: str) -> bool:
        """Whether the artifact stored under ``key`` should be corrupted."""
        if self.corrupt_rate <= 0:
            return False
        digest = hashlib.sha256(f"{self.seed}:{key}".encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.corrupt_rate

    def corrupt_artifact(self, path: Any) -> bool:
        """Flip the payload of the JSON artifact at ``path`` in place.

        The artifact stays well-formed JSON and keeps its recorded checksum,
        simulating silent bit-rot that only payload verification can catch.
        Returns True when the file was modified.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError):
            return False
        payload = artifact.get("payload")
        if not isinstance(payload, dict):
            return False
        payload["__chaos_bit_rot__"] = int(
            deterministic_uniform(self.seed, 0xB17507) * 2**31
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, sort_keys=True)
        return True

    def maybe_corrupt(self, sink: Any, key: str) -> bool:
        """Corrupt the just-stored artifact for ``key`` if the dice say so.

        Only file-backed sinks (anything exposing ``_path``) can rot.
        """
        if not self.corrupts_key(key):
            return False
        path_of = getattr(sink, "_path", None)
        if path_of is None:
            return False
        return self.corrupt_artifact(path_of(key))

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (mirrors the ``REPRO_CHAOS`` fields)."""
        return {
            "seed": self.seed,
            "kill": self.kill_rate,
            "raise": self.raise_rate,
            "slow": self.slow_rate,
            "slow_seconds": self.slow_seconds,
            "corrupt": self.corrupt_rate,
        }


def parse_chaos_spec(spec: str) -> Optional[ChaosMonkey]:
    """Build a :class:`ChaosMonkey` from a ``key=value,...`` spec string.

    Keys: ``kill``, ``raise``, ``slow``, ``corrupt`` (rates), ``slow_seconds``
    and ``seed``.  An empty/blank spec means no chaos (returns ``None``).
    """
    spec = spec.strip()
    if not spec or spec in ("0", "off", "none"):
        return None
    values: Dict[str, str] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        require("=" in token, f"malformed {CHAOS_ENV} entry {token!r} (expected key=value)")
        key, _, value = token.partition("=")
        values[key.strip()] = value.strip()
    known = {"kill", "raise", "slow", "corrupt", "slow_seconds", "seed"}
    unknown = sorted(set(values) - known)
    require(not unknown, f"unknown {CHAOS_ENV} key(s) {unknown}; known keys: {sorted(known)}")
    return ChaosMonkey(
        seed=int(values.get("seed", "0")),
        kill_rate=float(values.get("kill", "0")),
        raise_rate=float(values.get("raise", "0")),
        slow_rate=float(values.get("slow", "0")),
        slow_seconds=float(values.get("slow_seconds", "0.25")),
        corrupt_rate=float(values.get("corrupt", "0")),
    )


def chaos_from_env() -> Optional[ChaosMonkey]:
    """The chaos monkey configured by ``REPRO_CHAOS``, or ``None``."""
    spec = os.environ.get(CHAOS_ENV)
    if spec is None:
        return None
    return parse_chaos_spec(spec)


__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosKill",
    "ChaosMonkey",
    "chaos_from_env",
    "parse_chaos_spec",
]
