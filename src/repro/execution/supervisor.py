"""Supervised fan-out over forked worker processes.

This is the resilience layer between the api/pipeline and the raw process
pool.  The historical ``fork_map`` was a bare ``pool.map``: one OOM-killed
child, one raising item or one runaway run aborted the whole sweep with no
retry, no timeout and no partial result.  :func:`supervised_map` replaces it
with a per-item future scheduler:

* every work item is submitted **individually** (no chunking — one poisoned
  item can never fail its neighbours), with the number of queued futures
  bounded to at most 4× the worker count so dispatch overhead stays flat;
* failed attempts retry with exponential backoff and deterministic jitter
  (:class:`repro.execution.policy.RetryPolicy`), up to ``max_attempts``;
* a broken pool (a worker killed by the OOM reaper, a chaos ``os._exit``)
  is respawned and its in-flight items re-leased;
* per-item wall-clock timeouts are enforced by recycling the pool (the only
  way to reclaim a stuck worker) and re-leasing the innocent in-flight items
  without consuming one of their attempts;
* when pool breaks exceed ``max_pool_respawns``, execution degrades to an
  in-process serial loop so a sweep always makes progress.

Work items are pure functions of spawned generators, so a retry replays the
same stream and successful results are **bit-identical** however many faults
were recovered along the way.  Every recovery action is counted in an
:class:`repro.execution.report.ExecutionReport`.

Like the historical ``fork_map``, the pool path passes the callable and the
items to workers through fork-inherited memory (no pickling of closures); the
payload window is serialised by a lock so concurrent supervised runs cannot
fork workers that inherit each other's payload.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.execution.chaos import ChaosMonkey
from repro.execution.policy import DEFAULT_POLICY, RetryPolicy
from repro.execution.report import ExecutionReport

#: Item outcome statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_ABORTED = "aborted"

#: Statuses that mean "no payload was produced".
FAILURE_STATUSES = (STATUS_FAILED, STATUS_TIMEOUT, STATUS_ABORTED)


class ItemFailedError(RuntimeError):
    """A supervised item exhausted its attempts without a captured exception."""


class ItemTimeoutError(ItemFailedError):
    """A supervised item exceeded its wall-clock timeout on every attempt."""


class MaxFailuresExceeded(RuntimeError):
    """More items failed than the configured failure budget tolerates."""

    def __init__(self, message: str, outcomes: Sequence["ItemOutcome"] = ()):
        super().__init__(message)
        self.outcomes = list(outcomes)


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ItemOutcome:
    """The terminal state of one supervised work item."""

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    exception: Optional[BaseException] = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """True when the item produced a value."""
        return self.status == STATUS_OK


#: Payload inherited by forked workers (set only around a supervised run).
_PAYLOAD: Optional[Tuple[Callable, Sequence, Optional[ChaosMonkey]]] = None

#: Serialises the set-payload / fork-workers / clear-payload window.
_PAYLOAD_LOCK = threading.Lock()


def _supervised_call(index: int, attempt: int):
    """Run item ``index`` in a worker, injecting this attempt's chaos first."""
    fn, items, chaos = _PAYLOAD
    if chaos is not None:
        chaos.maybe_inject(index, attempt)
    return fn(items[index])


class _ItemState:
    """Mutable per-item bookkeeping while a supervised run is in progress."""

    __slots__ = ("index", "attempts", "outcome")

    def __init__(self, index: int):
        self.index = index
        self.attempts = 0
        self.outcome: Optional[ItemOutcome] = None


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _serial_run(
    fn: Callable,
    items: Sequence,
    states: List[_ItemState],
    policy: RetryPolicy,
    chaos: Optional[ChaosMonkey],
    report: ExecutionReport,
    max_failures: Optional[int],
    failures: int = 0,
) -> None:
    """Run every unfinished item in-process, honouring retry and chaos.

    Continues existing attempt counts (the pool path hands over here when it
    degrades), so an item's total attempts stay bounded by ``max_attempts``.
    Wall-clock timeouts cannot preempt an in-process item and are not
    enforced on this path.
    """
    for state in states:
        if state.outcome is not None:
            continue
        while state.outcome is None:
            state.attempts += 1
            try:
                if chaos is not None:
                    # In-process, a chaos kill degrades to ChaosKill (raise).
                    chaos.maybe_inject(state.index, state.attempts)
                value = fn(items[state.index])
            except Exception as exc:
                if state.attempts >= policy.max_attempts:
                    state.outcome = ItemOutcome(
                        state.index, STATUS_FAILED, error=_describe(exc),
                        attempts=state.attempts, exception=exc,
                    )
                    failures += 1
                else:
                    report.retries += 1
                    time.sleep(policy.backoff_delay(state.index, state.attempts + 1))
            else:
                state.outcome = ItemOutcome(
                    state.index, STATUS_OK, value=value, attempts=state.attempts
                )
        if max_failures is not None and failures > max_failures:
            _abort_remaining(states, failures, max_failures)
            return


def _abort_remaining(states: List[_ItemState], failures: int, max_failures: int) -> None:
    message = f"aborted after {failures} failures (max_failures={max_failures})"
    for state in states:
        if state.outcome is None:
            state.outcome = ItemOutcome(
                state.index, STATUS_ABORTED, error=message, attempts=state.attempts
            )


class _PoolSupervisor:
    """One supervised run over a (respawnable) forked process pool."""

    def __init__(
        self,
        fn: Callable,
        items: Sequence,
        workers: int,
        policy: RetryPolicy,
        chaos: Optional[ChaosMonkey],
        report: ExecutionReport,
        max_failures: Optional[int],
    ):
        self.fn = fn
        self.items = items
        self.workers = min(workers, len(items))
        self.policy = policy
        self.chaos = chaos
        self.report = report
        self.max_failures = max_failures
        self.states = [_ItemState(index) for index in range(len(items))]
        #: (ready_at, index) heap of items awaiting (re)submission.
        self.ready: List[Tuple[float, int]] = [(0.0, index) for index in range(len(items))]
        heapq.heapify(self.ready)
        #: future -> (index, deadline) for submitted attempts.
        self.inflight: Dict[Any, Tuple[int, float]] = {}
        self.failures = 0
        self.breaks = 0
        self.aborted = False
        self.degraded = False

    # -- pool lifecycle ----------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=context)

    @staticmethod
    def _shutdown(pool: Optional[ProcessPoolExecutor], force: bool) -> None:
        if pool is None:
            return
        if force:
            # Stuck or doomed workers cannot be joined; terminate them so the
            # pool's resources are reclaimed without blocking the supervisor.
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=not force, cancel_futures=force)
        except Exception:
            pass

    # -- scheduling --------------------------------------------------------

    def _max_inflight(self) -> int:
        # With a timeout configured, queued-but-not-started futures would
        # burn deadline while waiting for a worker; cap in-flight at the
        # worker count so a submitted attempt starts (almost) immediately.
        if self.policy.timeout is not None:
            return self.workers
        return 4 * self.workers

    def _submit_ready(self, pool: ProcessPoolExecutor) -> bool:
        """Submit eligible items; True when the pool turned out to be broken."""
        now = time.monotonic()
        limit = self._max_inflight()
        while self.ready and len(self.inflight) < limit:
            ready_at, index = self.ready[0]
            if ready_at > now:
                break
            heapq.heappop(self.ready)
            state = self.states[index]
            state.attempts += 1
            try:
                future = pool.submit(_supervised_call, index, state.attempts)
            except (BrokenProcessPool, RuntimeError):
                # Pool already broke; undo and let the break handler re-lease.
                state.attempts -= 1
                heapq.heappush(self.ready, (ready_at, index))
                return True
            deadline = now + self.policy.timeout if self.policy.timeout else math.inf
            self.inflight[future] = (index, deadline)
        return False

    def _retry_or_fail(
        self,
        state: _ItemState,
        error: str,
        exception: Optional[BaseException] = None,
        timeout: bool = False,
    ) -> None:
        if state.attempts >= self.policy.max_attempts:
            status = STATUS_TIMEOUT if timeout else STATUS_FAILED
            state.outcome = ItemOutcome(
                state.index, status, error=error,
                attempts=state.attempts, exception=exception,
            )
            self.failures += 1
            if self.max_failures is not None and self.failures > self.max_failures:
                self.aborted = True
        else:
            self.report.retries += 1
            ready_at = time.monotonic() + self.policy.backoff_delay(
                state.index, state.attempts + 1
            )
            heapq.heappush(self.ready, (ready_at, state.index))

    def _consume(self, done) -> bool:
        """Record completed futures; True when the pool broke underneath."""
        broke = False
        for future in done:
            index, _deadline = self.inflight.pop(future)
            state = self.states[index]
            try:
                value = future.result()
            except BrokenProcessPool:
                broke = True
                self._retry_or_fail(state, "worker process died (process pool broken)")
            except Exception as exc:
                self._retry_or_fail(state, _describe(exc), exception=exc)
            else:
                state.outcome = ItemOutcome(
                    index, STATUS_OK, value=value, attempts=state.attempts
                )
        return broke

    def _handle_break(self, pool) -> Optional[ProcessPoolExecutor]:
        """Respawn after an unexpected pool break, re-leasing in-flight items.

        Which worker died cannot be observed, so every in-flight attempt is
        charged as used — chaos decisions advance and a deterministic killer
        cannot livelock the supervisor.
        """
        self.report.pool_respawns += 1
        self.breaks += 1
        for future, (index, _deadline) in list(self.inflight.items()):
            self._retry_or_fail(
                self.states[index], "worker process died (process pool broken)"
            )
        self.inflight.clear()
        self._shutdown(pool, force=True)
        if self.aborted:
            return None
        if self.breaks > self.policy.max_pool_respawns:
            self.degraded = True
            return None
        return self._new_pool()

    def _enforce_deadlines(self, pool) -> Optional[ProcessPoolExecutor]:
        """Censor timed-out attempts; recycle the pool to reclaim workers."""
        if self.policy.timeout is None or not self.inflight:
            return pool
        now = time.monotonic()
        expired = [
            (future, index)
            for future, (index, deadline) in self.inflight.items()
            if deadline <= now
        ]
        if not expired:
            return pool
        self.report.timeouts += len(expired)
        for future, index in expired:
            del self.inflight[future]
            self._retry_or_fail(
                self.states[index],
                f"attempt timed out after {self.policy.timeout:g}s",
                timeout=True,
            )
        # The stuck workers can only be reclaimed by recycling the pool.
        # Innocent in-flight attempts are re-leased without consuming an
        # attempt: the supervisor interrupted them, they did not fail.
        for future, (index, _deadline) in list(self.inflight.items()):
            self.states[index].attempts -= 1
            heapq.heappush(self.ready, (time.monotonic(), index))
        self.inflight.clear()
        self.report.pool_respawns += 1
        self._shutdown(pool, force=True)
        if self.aborted:
            return None
        return self._new_pool()

    def _wait_timeout(self) -> Optional[float]:
        next_event = math.inf
        if self.inflight:
            next_event = min(deadline for _index, deadline in self.inflight.values())
        if self.ready:
            next_event = min(next_event, self.ready[0][0])
        if math.isinf(next_event):
            return None
        return max(0.0, next_event - time.monotonic()) + 0.005

    def _unfinished(self) -> bool:
        return any(state.outcome is None for state in self.states)

    # -- the supervision loop ----------------------------------------------

    def run(self) -> List[ItemOutcome]:
        global _PAYLOAD
        with _PAYLOAD_LOCK:
            _PAYLOAD = (self.fn, self.items, self.chaos)
            try:
                self._loop()
            finally:
                _PAYLOAD = None
        if self.aborted:
            _abort_remaining(self.states, self.failures, self.max_failures)
        return [state.outcome for state in self.states]

    def _loop(self) -> None:
        pool: Optional[ProcessPoolExecutor] = self._new_pool()
        try:
            while self._unfinished() and not self.aborted:
                if self.degraded or pool is None:
                    break
                if self._submit_ready(pool):
                    pool = self._handle_break(pool)
                    continue
                if not self.inflight:
                    if self.ready:
                        # Everything eligible is backing off; sleep until the
                        # earliest retry becomes ready.
                        delay = max(0.0, self.ready[0][0] - time.monotonic())
                        time.sleep(min(delay, 0.25))
                        continue
                    break
                done, _pending = wait_futures(
                    set(self.inflight), timeout=self._wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                if self._consume(done):
                    pool = self._handle_break(pool)
                    continue
                pool = self._enforce_deadlines(pool)
        finally:
            self._shutdown(pool, force=self.aborted or bool(self.inflight))
        if self.degraded and self._unfinished() and not self.aborted:
            # Last resort: finish the remaining items in-process.
            self.report.serial_fallbacks += 1
            _serial_run(
                self.fn, self.items, self.states, self.policy, self.chaos,
                self.report, self.max_failures, failures=self.failures,
            )


def supervised_map(
    fn: Callable,
    items: Sequence,
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosMonkey] = None,
    report: Optional[ExecutionReport] = None,
    max_failures: Optional[int] = None,
) -> List[ItemOutcome]:
    """Map ``fn`` over ``items`` under supervision; one outcome per item.

    Outcomes come back in item order.  ``workers > 1`` fans items over a
    forked process pool (when the platform has ``fork``); otherwise items run
    in-process with the same retry/chaos semantics.  Nothing raises on item
    failure — inspect the outcomes, or use :func:`raise_first_failure`.
    ``max_failures`` aborts the run (statuses ``"aborted"``) once strictly
    more than that many items have failed.
    """
    items = list(items)
    policy = DEFAULT_POLICY if policy is None else policy
    report = ExecutionReport() if report is None else report
    if not items:
        return []
    report.items += len(items)
    if workers > 1 and len(items) > 1 and fork_available():
        outcomes = _PoolSupervisor(
            fn, items, workers, policy, chaos, report, max_failures
        ).run()
    else:
        states = [_ItemState(index) for index in range(len(items))]
        _serial_run(fn, items, states, policy, chaos, report, max_failures)
        outcomes = [state.outcome for state in states]
    report.succeeded += sum(1 for outcome in outcomes if outcome.ok)
    report.failures += sum(1 for outcome in outcomes if not outcome.ok)
    return outcomes


def raise_first_failure(outcomes: Sequence[ItemOutcome]) -> None:
    """Re-raise the first failed outcome's exception (by item order).

    Worker exceptions are re-raised as the original object (with the remote
    traceback attached by ``concurrent.futures``); timeouts and
    exception-less failures raise :class:`ItemTimeoutError` /
    :class:`ItemFailedError`.
    """
    for outcome in outcomes:
        if outcome.ok:
            continue
        if outcome.exception is not None:
            raise outcome.exception
        message = f"item {outcome.index}: {outcome.error}"
        if outcome.status == STATUS_TIMEOUT:
            raise ItemTimeoutError(message)
        raise ItemFailedError(message)


__all__ = [
    "FAILURE_STATUSES",
    "ItemFailedError",
    "ItemOutcome",
    "ItemTimeoutError",
    "MaxFailuresExceeded",
    "STATUS_ABORTED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "fork_available",
    "raise_first_failure",
    "supervised_map",
]
