"""Structured accounting of what the supervised executor had to do.

Every supervised run — a pipeline sweep, a trial fan-out — accumulates its
recovery actions into an :class:`ExecutionReport`: how many item retries were
scheduled, how many wall-clock timeouts fired, how often a broken process
pool had to be respawned, whether execution degraded to the in-process serial
fallback, how many items ultimately failed, and how many cached artifacts
were rejected because their payload checksum did not verify.

The report is plain data: it merges (one pipeline instance accumulates across
``run()`` calls) and serialises to the ``--json`` documents of ``repro
experiment`` / ``repro verify`` / ``repro scenarios run``, so operational
anomalies are visible wherever results are consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict


@dataclass
class ExecutionReport:
    """Counters describing one (or several merged) supervised executions.

    Attributes
    ----------
    items:
        Work items handed to the executor (cached points excluded).
    succeeded:
        Items that produced a payload (possibly after retries).
    failures:
        Items whose attempts were exhausted (includes timeouts and aborts).
    retries:
        Re-submissions scheduled after a failed or interrupted attempt.
    timeouts:
        Per-item wall-clock deadline expiries.
    pool_respawns:
        Times a broken or wedged process pool was torn down and respawned.
    serial_fallbacks:
        Times execution degraded to the in-process serial fallback.
    cache_hits:
        Pipeline points served from the artifact store.
    cache_corruption:
        Stored artifacts rejected because their payload checksum mismatched.
    """

    items: int = 0
    succeeded: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    serial_fallbacks: int = 0
    cache_hits: int = 0
    cache_corruption: int = 0

    def merge(self, other: "ExecutionReport") -> "ExecutionReport":
        """Add ``other``'s counters into this report (returns ``self``)."""
        for field in fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))
        return self

    def __add__(self, other: "ExecutionReport") -> "ExecutionReport":
        """A new report holding the sum of both operands (neither mutated).

        The non-mutating sibling of :meth:`merge`, for aggregating per-run
        reports across requests (e.g. a service-wide ``/metrics`` total)
        without touching the per-run records.
        """
        if not isinstance(other, ExecutionReport):
            return NotImplemented
        return self.copy().merge(other)

    def copy(self) -> "ExecutionReport":
        """An independent copy of this report's counters."""
        return ExecutionReport(**self.as_dict())

    @property
    def clean(self) -> bool:
        """True when no recovery action fired and nothing failed."""
        return not any(
            (self.failures, self.retries, self.timeouts, self.pool_respawns,
             self.serial_fallbacks, self.cache_corruption)
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (stable key order: declaration order)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutionReport":
        """Rebuild a report from :meth:`as_dict` output."""
        return cls(**{field.name: int(data.get(field.name, 0)) for field in fields(cls)})


__all__ = ["ExecutionReport"]
