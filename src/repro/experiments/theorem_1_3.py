"""Experiment E3 — Theorem 1.3 / Remark 1.4 absolute-diligence upper bound.

Claims checked:

* the measured spread time never exceeds
  ``T_abs(G) = min{t : Σ_{p≤t} ⌈Φ(G(p))⌉ ρ̄(G(p)) ≥ 2n}`` evaluated on the
  realised snapshot sequence (absolute diligence and connectivity are cheap to
  measure exactly on every snapshot, so this check uses no analytic
  shortcuts);
* Remark 1.4: every *connected* dynamic network finishes within ``O(n²)``
  time — checked by verifying spread ≤ ``2n(n−1)`` on every run, including on
  the adversarial Theorem 1.5 construction.

Networks exercised: the absolutely-diligent adversarial family, the bridged
double clique ``G1``, the dynamic star ``G2``, and a mobile-agents network
whose snapshots are frequently disconnected (contributing nothing to the
budget on those steps).  Each case is one ``tabs_trials`` scenario: the
measurement records every realised snapshot with the cheap recorder and
evaluates the budget per trial.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bounds.theorems import universal_quadratic_bound
from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def scenarios(scale: str = "small", rng: RngLike = 2022) -> List[Scenario]:
    """The declarative E3 scenario table (one ``tabs_trials`` case each)."""
    if scale == "small":
        trials = 3
        cases = [
            ("absolutely-diligent (rho=0.25)", "absolute-diligent", {"n": 48, "rho": 0.25}),
            ("bridged cliques G1", "clique-bridge", {"n": 24}),
            ("dynamic star G2", "dynamic-star", {"n": 24}),
            ("mobile agents (16 on 6x6)", "mobile-agents", {"n": 16, "side": 6}),
        ]
    else:
        trials = 10
        cases = [
            ("absolutely-diligent (rho=0.1)", "absolute-diligent", {"n": 120, "rho": 0.1}),
            ("absolutely-diligent (rho=0.25)", "absolute-diligent", {"n": 120, "rho": 0.25}),
            ("bridged cliques G1", "clique-bridge", {"n": 64}),
            ("dynamic star G2", "dynamic-star", {"n": 64}),
            ("mobile agents (32 on 8x8)", "mobile-agents", {"n": 32, "side": 8}),
        ]
    return [
        Scenario(
            label=label,
            kind="tabs_trials",
            network=family,
            params=params,
            trials=trials,
            seed=scenario_seed(rng, index),
        )
        for index, (label, family, params) in enumerate(cases)
    ]


def checks(scale: str = "small") -> List[Check]:
    """The declarative E3 check table.

    The per-trial budget verdicts (``within_Tabs``: completed runs that
    reached the budget stay under it; ``within_2n(n-1)``: every completed run
    respects the universal quadratic cap) are regenerated table columns; the
    acceptance criterion is that both hold on every run.
    """
    return [
        Check(label="every run within T_abs", kind="all_true", column="within_Tabs"),
        Check(label="every run within 2n(n-1)", kind="all_true", column="within_2n(n-1)"),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2022,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E3 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))

    rows: List[Dict] = []
    trials = 0
    for point in results:
        n = point.payload["n"]
        trials = point.scenario.trials
        for trial_index, trial in enumerate(point.payload["trials"]):
            # The run stops as soon as the rumor finishes, usually long before
            # the budget of 2n accumulates; the bound then holds a fortiori.
            within = (not trial["completed"]) or (
                trial["spread_time"] <= trial["bound"] or not trial["reached"]
            )
            rows.append(
                {
                    "network": point.label,
                    "n": n,
                    "trial": trial_index,
                    "completed": trial["completed"],
                    "spread_time": trial["spread_time"],
                    "steps_recorded": trial["steps_recorded"],
                    "budget_accumulated": trial["budget_accumulated"],
                    "budget_target": trial["budget_target"],
                    "Tabs_if_reached": trial["bound"],
                    "within_Tabs": within,
                    "within_2n(n-1)": (not trial["completed"])
                    or trial["spread_time"] <= universal_quadratic_bound(n),
                }
            )

    check_report = evaluate_checks(checks(scale), rows=rows)
    completed = sum(1 for row in rows if row["completed"])
    return ExperimentResult(
        experiment_id="E3",
        title="Theorem 1.3 / Remark 1.4: absolute-diligence bound T_abs and the O(n^2) cap",
        claim=(
            "With high probability the spread time is at most "
            "T_abs(G) = min{t : sum_p ceil(Phi(G(p))) abs-rho(G(p)) >= 2n}; in particular "
            "connected dynamic networks finish within 2n(n-1) time."
        ),
        rows=rows,
        derived={
            "runs": float(len(rows)),
            "completed_runs": float(completed),
        },
        passed=check_report.passed,
        notes=f"scale={scale}, trials per network={trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios"]
