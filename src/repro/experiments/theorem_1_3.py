"""Experiment E3 — Theorem 1.3 / Remark 1.4 absolute-diligence upper bound.

Claims checked:

* the measured spread time never exceeds
  ``T_abs(G) = min{t : Σ_{p≤t} ⌈Φ(G(p))⌉ ρ̄(G(p)) ≥ 2n}`` evaluated on the
  realised snapshot sequence (absolute diligence and connectivity are cheap to
  measure exactly on every snapshot, so this check uses no analytic
  shortcuts);
* Remark 1.4: every *connected* dynamic network finishes within ``O(n²)``
  time — checked by verifying spread ≤ ``2n(n−1)`` on every run, including on
  the adversarial Theorem 1.5 construction.

Networks exercised: the absolutely-diligent adversarial family, the bridged
double clique ``G1``, the dynamic star ``G2``, and a mobile-agents network
whose snapshots are frequently disconnected (contributing nothing to the
budget on those steps).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.bounds.theorems import absolute_diligence_bound, universal_quadratic_bound
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.dynamics.base import SnapshotRecorder
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.mobile_agents import MobileAgentsNetwork
from repro.experiments.result import ExperimentResult
from repro.utils.rng import RngLike, spawn_rngs


def run(scale: str = "small", rng: RngLike = 2022) -> ExperimentResult:
    """Run experiment E3 and return its :class:`ExperimentResult`."""
    if scale == "small":
        trials = 3
        cases = [
            ("absolutely-diligent (rho=0.25)", lambda: AbsolutelyDiligentNetwork(48, 0.25)),
            ("bridged cliques G1", lambda: CliqueBridgeNetwork(24)),
            ("dynamic star G2", lambda: DynamicStarNetwork(24)),
            ("mobile agents (16 on 6x6)", lambda: MobileAgentsNetwork(16, side=6, radius=1)),
        ]
    else:
        trials = 10
        cases = [
            ("absolutely-diligent (rho=0.1)", lambda: AbsolutelyDiligentNetwork(120, 0.1)),
            ("absolutely-diligent (rho=0.25)", lambda: AbsolutelyDiligentNetwork(120, 0.25)),
            ("bridged cliques G1", lambda: CliqueBridgeNetwork(64)),
            ("dynamic star G2", lambda: DynamicStarNetwork(64)),
            ("mobile agents (32 on 8x8)", lambda: MobileAgentsNetwork(32, side=8, radius=1)),
        ]

    process = AsynchronousRumorSpreading()
    seeds = spawn_rngs(rng, len(cases) * trials)
    rows: List[Dict] = []
    seed_index = 0

    for name, factory in cases:
        for trial in range(trials):
            network = factory()
            # "cheap" recording measures connectivity and absolute diligence on
            # every snapshot; known analytic metrics are deliberately not
            # preferred so the bound is evaluated on measured quantities.
            recorder = SnapshotRecorder(mode="cheap", prefer_known=False, track_degrees=False)
            result = process.run(network, rng=seeds[seed_index], recorder=recorder)
            seed_index += 1
            evaluation = absolute_diligence_bound(
                recorder.connectivity_series(),
                recorder.absolute_diligence_series(),
                network.n,
            )
            # The run stops as soon as the rumor finishes, usually long before
            # the budget of 2n accumulates; the bound then holds a fortiori.
            bound = evaluation.bound if evaluation.reached else math.inf
            within = (not result.completed) or (
                result.spread_time <= bound or not evaluation.reached
            )
            rows.append(
                {
                    "network": name,
                    "n": network.n,
                    "trial": trial,
                    "completed": result.completed,
                    "spread_time": result.spread_time,
                    "steps_recorded": len(recorder.steps),
                    "budget_accumulated": evaluation.accumulated,
                    "budget_target": evaluation.threshold,
                    "Tabs_if_reached": bound,
                    "within_Tabs": within,
                    "within_2n(n-1)": (not result.completed)
                    or result.spread_time <= universal_quadratic_bound(network.n),
                }
            )

    passed = all(row["within_Tabs"] and row["within_2n(n-1)"] for row in rows)
    completed = sum(1 for row in rows if row["completed"])
    return ExperimentResult(
        experiment_id="E3",
        title="Theorem 1.3 / Remark 1.4: absolute-diligence bound T_abs and the O(n^2) cap",
        claim=(
            "With high probability the spread time is at most "
            "T_abs(G) = min{t : sum_p ceil(Phi(G(p))) abs-rho(G(p)) >= 2n}; in particular "
            "connected dynamic networks finish within 2n(n-1) time."
        ),
        rows=rows,
        derived={
            "runs": float(len(rows)),
            "completed_runs": float(completed),
        },
        passed=passed,
        notes=f"scale={scale}, trials per network={trials}",
    )


__all__ = ["run"]
