"""Experiment E2 — Theorem 1.2 lower-bound construction ``G(n, ρ)``.

Claims checked:

* Observation 4.1: a built ``H_{k,Δ}(A, B)`` snapshot has
  ``Φ = Θ(Δ²/(kΔ² + n))`` and ``ρ̄ = Θ(1/Δ)`` (the absolute diligence is
  cheap to measure exactly; the diligence and conductance are compared
  against their analytic Θ-values on a small instance via spectral bounds).
* Theorem 1.2: on the adaptive network ``G(n, ρ)`` the spread time is
  ``Ω(n/(k⌈1/ρ⌉)) = Ω(nρ/k)`` — in particular it *grows* with ``ρ`` at fixed
  ``n`` and ``k``, while the Theorem 1.1 upper bound
  ``O((ρn + k/ρ) log n)`` stays within a polylogarithmic factor.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.regression import loglog_slope
from repro.analysis.trials import run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.diligent import DiligentDynamicNetwork, default_chain_length
from repro.experiments.result import ExperimentResult
from repro.graphs.hk_delta import build_hk_delta
from repro.graphs.metrics import absolute_diligence, conductance_spectral_bounds
from repro.utils.rng import RngLike, spawn_rngs


def observation_4_1_rows(n: int, rng) -> List[Dict]:
    """Measure a single ``H_{k,Δ}`` snapshot against Observation 4.1."""
    rows: List[Dict] = []
    k = default_chain_length(n)
    for delta in (2, 4, max(2, int(math.isqrt(n) // 2))):
        size_a = n // 4
        part_a = list(range(size_a))
        part_b = list(range(size_a, n))
        built = build_hk_delta(part_a, part_b, k=k, delta=delta, rng=rng)
        measured_abs = absolute_diligence(built.graph)
        low, high = conductance_spectral_bounds(built.graph)
        rows.append(
            {
                "quantity": "H_{k,delta} snapshot",
                "n": n,
                "k": k,
                "delta": delta,
                "analytic_phi": built.analytic_conductance(),
                "cheeger_lower": low,
                "cheeger_upper": high,
                "analytic_abs_diligence": built.analytic_absolute_diligence(),
                "measured_abs_diligence": measured_abs,
            }
        )
    return rows


def run(scale: str = "small", rng: RngLike = 2021) -> ExperimentResult:
    """Run experiment E2 and return its :class:`ExperimentResult`."""
    if scale == "small":
        n = 160
        rhos = [0.1, 0.25, 0.5]
        trials = 3
        observation_n = 120
    else:
        n = 400
        rhos = [1.0 / math.sqrt(400), 0.1, 0.25, 0.5, 1.0]
        trials = 10
        observation_n = 240

    seeds = spawn_rngs(rng, 3)
    process = AsynchronousRumorSpreading()
    rows: List[Dict] = []

    # Part 1: Observation 4.1 on standalone snapshots.
    snapshot_rows = observation_4_1_rows(observation_n, seeds[0])

    # Part 2: spread time on the adaptive family, swept over rho.
    spread_rows: List[Dict] = []
    for rho in rhos:
        network_factory = lambda rho=rho: DiligentDynamicNetwork(n, rho, rng=seeds[1])
        probe = network_factory()
        summary = run_trials(
            process.run,
            network_factory,
            trials=trials,
            rng=seeds[2],
            max_time=10.0 * probe.predicted_upper_bound(log_factor=2.0) + 1000.0,
        )
        spread_rows.append(
            {
                "rho": rho,
                "n": n,
                "k": probe.k,
                "delta": probe.delta,
                "measured_whp": summary.whp_spread_time,
                "measured_mean": summary.mean,
                "lower_bound": probe.predicted_lower_bound(),
                "upper_bound_T11": probe.predicted_upper_bound(log_factor=1.0),
                "completion_rate": summary.completion_rate,
            }
        )

    rows = snapshot_rows + spread_rows

    # Shape checks: (a) the absolute diligence of built snapshots tracks 1/(2Δ);
    # (b) measured spread time respects the Ω(nρ/k) lower bound up to a modest
    # constant; (c) spread time grows with rho (log-log slope > 0).
    abs_ok = all(
        0.3 <= row["measured_abs_diligence"] / row["analytic_abs_diligence"] <= 3.0
        for row in snapshot_rows
    )
    lower_ok = all(
        not math.isfinite(row["measured_mean"])
        or row["measured_mean"] >= 0.2 * row["lower_bound"]
        for row in spread_rows
    )
    finite_rows = [row for row in spread_rows if math.isfinite(row["measured_mean"])]
    slope = (
        loglog_slope([row["rho"] for row in finite_rows], [row["measured_mean"] for row in finite_rows])
        if len(finite_rows) >= 2
        else float("nan")
    )
    passed = abs_ok and lower_ok and (math.isnan(slope) or slope > 0)

    return ExperimentResult(
        experiment_id="E2",
        title="Theorem 1.2 / Observation 4.1: the Θ(ρ)-diligent lower-bound family",
        claim=(
            "On G(n, rho) the spread time is Omega(n rho / k) and the Theorem 1.1 "
            "upper bound O((rho n + k/rho) log n) is within o(log^2 n) of it; "
            "H_{k,Delta} has Phi = Theta(Delta^2/(k Delta^2 + n)) and rho = Theta(1/Delta)."
        ),
        rows=rows,
        derived={
            "spread_vs_rho_loglog_slope": slope,
            "abs_diligence_check": float(abs_ok),
            "lower_bound_check": float(lower_ok),
        },
        passed=passed,
        notes=f"scale={scale}, n={n}, trials per rho={trials}",
    )


__all__ = ["run", "observation_4_1_rows"]
