"""Experiment E2 — Theorem 1.2 lower-bound construction ``G(n, ρ)``.

Claims checked:

* Observation 4.1: a built ``H_{k,Δ}(A, B)`` snapshot has
  ``Φ = Θ(Δ²/(kΔ² + n))`` and ``ρ̄ = Θ(1/Δ)`` (the absolute diligence is
  cheap to measure exactly; the diligence and conductance are compared
  against their analytic Θ-values on a small instance via spectral bounds).
* Theorem 1.2: on the adaptive network ``G(n, ρ)`` the spread time is
  ``Ω(n/(k⌈1/ρ⌉)) = Ω(nρ/k)`` — in particular it *grows* with ``ρ`` at fixed
  ``n`` and ``k``, while the Theorem 1.1 upper bound
  ``O((ρn + k/ρ) log n)`` stays within a polylogarithmic factor.

Two declarative scenarios drive the pipeline: an ``hk_snapshot`` sweep over
``Δ`` (Observation 4.1) and a ``trials`` sweep over ``ρ`` on the adaptive
family, the latter using a ``max_time_policy`` derived from the
construction's own predicted upper bound.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def scenarios(scale: str = "small", rng: RngLike = 2021) -> List[Scenario]:
    """The declarative E2 scenario table."""
    if scale == "small":
        n = 160
        rhos = [0.1, 0.25, 0.5]
        trials = 3
        observation_n = 120
    else:
        n = 400
        rhos = [1.0 / math.sqrt(400), 0.1, 0.25, 0.5, 1.0]
        trials = 10
        observation_n = 240

    deltas = (2, 4, max(2, int(math.isqrt(observation_n) // 2)))
    return [
        # Part 1: Observation 4.1 on standalone snapshots (value = Δ).
        Scenario(
            label="H_{k,delta} snapshot",
            kind="hk_snapshot",
            sweep_name="delta",
            sweep=deltas,
            options={"n": observation_n},
            seed=scenario_seed(rng, 0),
        ),
        # Part 2: spread time on the adaptive family, swept over rho.
        Scenario(
            label="G(n, rho) spread",
            network="diligent",
            params={"n": n},
            sweep_name="rho",
            sweep=tuple(rhos),
            trials=trials,
            seed=scenario_seed(rng, 1),
            options={
                "max_time_policy": {
                    "attr": "predicted_upper_bound",
                    "kwargs": {"log_factor": 2.0},
                    "scale": 10.0,
                    "offset": 1000.0,
                },
                "probe": [
                    "k",
                    "delta",
                    {"name": "lower_bound", "attr": "predicted_lower_bound"},
                    {
                        "name": "upper_bound_T11",
                        "attr": "predicted_upper_bound",
                        "kwargs": {"log_factor": 1.0},
                    },
                ],
            },
        ),
    ]


def checks(scale: str = "small") -> List[Check]:
    """The declarative E2 check table.

    Snapshot (Observation 4.1) rows are selected by their ``quantity``
    column, spread rows by ``rho``; timed-out means are skipped on the
    lower-bound comparison exactly as the historical shape check did.
    """
    return [
        Check(
            label="measured abs diligence tracks Theta(1/Delta)",
            kind="ratio_between",
            column="measured_abs_diligence",
            against="analytic_abs_diligence",
            low=0.3,
            high=3.0,
            where={"quantity": {"exists": True}},
        ),
        Check(
            label="spread time respects Omega(n rho / k)",
            kind="lower_bound",
            column="measured_mean",
            against="lower_bound",
            scale=0.2,
            non_finite="skip",
            where={"rho": {"exists": True}},
        ),
        Check(
            label="spread time grows with rho",
            kind="log_slope",
            column="measured_mean",
            x="rho",
            low=0.0,
            strict=True,
            insufficient="pass",
            where={"rho": {"exists": True}},
        ),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2021,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E2 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))

    snapshot_rows: List[Dict] = []
    spread_rows: List[Dict] = []
    for point in results:
        payload = point.payload
        if point.scenario.kind == "hk_snapshot":
            snapshot_rows.append(
                {
                    "quantity": point.label,
                    "n": payload["n"],
                    "k": payload["k"],
                    "delta": payload["delta"],
                    "analytic_phi": payload["analytic_phi"],
                    "cheeger_lower": payload["cheeger_lower"],
                    "cheeger_upper": payload["cheeger_upper"],
                    "analytic_abs_diligence": payload["analytic_abs_diligence"],
                    "measured_abs_diligence": payload["measured_abs_diligence"],
                }
            )
        else:
            summary = payload["summary"]
            probe = payload["probe"]
            spread_rows.append(
                {
                    "rho": point.value,
                    "n": payload["n"],
                    "k": int(probe["k"]),
                    "delta": int(probe["delta"]),
                    "measured_whp": summary["whp"],
                    "measured_mean": summary["mean"],
                    "lower_bound": probe["lower_bound"],
                    "upper_bound_T11": probe["upper_bound_T11"],
                    "completion_rate": summary["completion_rate"],
                }
            )

    rows = snapshot_rows + spread_rows

    # The acceptance logic is the declarative check table: (a) the absolute
    # diligence of built snapshots tracks 1/(2Δ); (b) measured spread time
    # respects the Ω(nρ/k) lower bound up to a modest constant; (c) spread
    # time grows with rho (log-log slope > 0).  The historical derived
    # quantities are projections of the same check results.
    check_report = evaluate_checks(checks(scale), rows=rows)
    abs_result, lower_result, slope_result = check_report.results
    slope = slope_result.observed if slope_result.observed is not None else float("nan")

    trials = results[-1].scenario.trials if spread_rows else 0
    n = spread_rows[0]["n"] if spread_rows else 0
    return ExperimentResult(
        experiment_id="E2",
        title="Theorem 1.2 / Observation 4.1: the Θ(ρ)-diligent lower-bound family",
        claim=(
            "On G(n, rho) the spread time is Omega(n rho / k) and the Theorem 1.1 "
            "upper bound O((rho n + k/rho) log n) is within o(log^2 n) of it; "
            "H_{k,Delta} has Phi = Theta(Delta^2/(k Delta^2 + n)) and rho = Theta(1/Delta)."
        ),
        rows=rows,
        derived={
            "spread_vs_rho_loglog_slope": slope,
            "abs_diligence_check": float(abs_result.passed),
            "lower_bound_check": float(lower_result.passed),
        },
        passed=check_report.passed,
        notes=f"scale={scale}, n={n}, trials per rho={trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios"]
