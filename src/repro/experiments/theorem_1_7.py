"""Experiments E5 & E6 — Theorem 1.7 dichotomies (Figure 1).

Claims checked:

* (i) on ``G1`` (clique with pendant rumor holder, then two bridged cliques)
  the asynchronous spread time is ``Ω(n)`` while the synchronous one is
  ``Θ(log n)``;
* (ii) on ``G2`` (the adaptive dynamic star) the asynchronous spread time is
  ``Θ(log n)`` while the synchronous one is exactly ``n`` rounds;
* (iii) quantitatively, the asynchronous algorithm finishes on ``G2`` within
  ``2k`` time with probability at least ``1 − e^{-k/2−o(1)} − e^{-k−o(1)}``.

The workload is five declarative scenarios — G1/G2 × async/sync swept over
``n``, plus a high-trial G2 run at the largest size whose raw spread times
feed the part (iii) tail comparison.  The regenerated "Figure 1 table" pairs
the async/sync payloads per size.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.analysis.regression import loglog_slope, semilog_slope
from repro.api import run as api_run
from repro.checks import Check, evaluate_checks
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def _tail_rows(n: int, ks: List[int], spread_times: List[float]) -> List[Dict]:
    """Empirical ``Pr[spread > 2k]`` versus the theorem tail, from raw times."""
    rows = []
    for k in ks:
        empirical = sum(1 for value in spread_times if value > 2 * k) / len(spread_times)
        bound = math.exp(-k / 2.0) + math.exp(-float(k))
        rows.append(
            {
                "network": "G2 tail (iii)",
                "n": n,
                "k": k,
                "empirical_P[spread>2k]": empirical,
                "bound_e^{-k/2}+e^{-k}": min(1.0, bound),
                "within_bound": empirical <= min(1.0, bound) + 0.25,
            }
        )
    return rows


def part_iii_rows(n: int, ks: List[int], trials: int, rng) -> List[Dict]:
    """Standalone part (iii) measurement (kept for the benchmark suite)."""
    trial_set = (
        api_run(network=lambda: DynamicStarNetwork(n)).trials(trials).seed(rng).collect()
    )
    return _tail_rows(n, ks, [float(t) for t in trial_set.spread_times])


def scenarios(scale: str = "small", rng: RngLike = 2024) -> List[Scenario]:
    """The declarative E5/E6 scenario table."""
    if scale == "small":
        sizes = (32, 64, 128)
        trials = 30
        tail_trials = 60
    else:
        sizes = (64, 128, 256, 512)
        trials = 60
        tail_trials = 400
    table = [
        Scenario(
            label=label,
            network=family,
            algorithm=algorithm,
            sweep=sizes,
            trials=trials,
            seed=scenario_seed(rng, index),
        )
        for index, (label, family, algorithm) in enumerate(
            [
                ("G1 async", "clique-bridge", "async"),
                ("G1 sync", "clique-bridge", "sync"),
                ("G2 async", "dynamic-star", "async"),
                ("G2 sync", "dynamic-star", "sync"),
            ]
        )
    ]
    table.append(
        Scenario(
            label="G2 tail (iii)",
            network="dynamic-star",
            sweep=(max(sizes),),
            trials=tail_trials,
            seed=scenario_seed(rng, 4),
        )
    )
    return table


def checks(scale: str = "small") -> List[Check]:
    """The declarative E5/E6 check table.

    The slope dichotomies are stated over the derived fitted slopes (at the
    modest sizes run here the G1 asynchronous mean mixes Θ(log n) "caught the
    pendant window" runs with Θ(n) "missed it" runs, so its finite-size
    log-log slope sits well below the asymptotic 1 — requiring it to clearly
    exceed the polylogarithmic slopes, and the synchronous slopes to stay
    sublinear, captures the dichotomy); the exact-n synchronous round count
    on G2 and the part (iii) tail comparison are stated over the table rows.
    """
    return [
        Check(label="G1 async slope > 0.35", kind="lower_bound", source="derived",
              column="G1_async_loglog_slope", against=0.35, strict=True),
        Check(label="G1 sync slope < 0.6", kind="upper_bound", source="derived",
              column="G1_sync_loglog_slope", against=0.6, strict=True),
        Check(label="G1 async slope exceeds G1 sync slope", kind="lower_bound",
              source="derived", column="G1_async_loglog_slope",
              against="G1_sync_loglog_slope", strict=True),
        Check(label="G2 sync slope > 0.9", kind="lower_bound", source="derived",
              column="G2_sync_loglog_slope", against=0.9, strict=True),
        Check(label="G2 async slope < 0.6", kind="upper_bound", source="derived",
              column="G2_async_loglog_slope", against=0.6, strict=True),
        # require_rows=1 keeps these fail-loud: the historical code indexed
        # the labels directly and would have raised had the rows gone missing,
        # so an empty where-selection must not pass vacuously.
        Check(label="G2 synchronous spread is exactly n rounds", kind="equals",
              column="sync_mean_rounds", against="n",
              where={"network": "G2 (dynamic star)"}, require_rows=1),
        Check(label="G2 tail within e^{-k/2} + e^{-k} (+0.25)", kind="all_true",
              column="within_bound", where={"network": "G2 tail (iii)"},
              require_rows=1),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2024,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiments E5/E6 and return their combined :class:`ExperimentResult`."""
    # k = 2 is below the regime where the e^{-k/2} + e^{-k} tail kicks in
    # (the theorem's o(1) terms dominate there), so the sweep starts at 4.
    tail_ks = [4, 6, 8] if scale == "small" else [4, 6, 8, 10]

    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))
    by_label = {}
    for point in results:
        by_label.setdefault(point.label, []).append(point)

    sizes = [point.value for point in by_label["G1 async"]]
    means = {
        label: [point.payload["summary"]["mean"] for point in by_label[label]]
        for label in ("G1 async", "G1 sync", "G2 async", "G2 sync")
    }

    rows: List[Dict] = []
    for position, n in enumerate(sizes):
        for network_name, async_label, sync_label in (
            ("G1 (clique+pendant -> bridged cliques)", "G1 async", "G1 sync"),
            ("G2 (dynamic star)", "G2 async", "G2 sync"),
        ):
            async_mean = means[async_label][position]
            sync_mean = means[sync_label][position]
            rows.append(
                {
                    "network": network_name,
                    # G1 has n+1 nodes and G2 n+1 as well; the table keys rows
                    # by the swept size parameter like the Figure 1 sweep.
                    "n": n,
                    "async_mean": async_mean,
                    "sync_mean_rounds": sync_mean,
                    "async_over_sync": async_mean / max(sync_mean, 1e-9),
                }
            )

    tail_point = by_label["G2 tail (iii)"][0]
    tail = _tail_rows(tail_point.value, tail_ks, tail_point.payload["spread_times"])
    rows.extend(tail)

    derived = {
        "G1_async_loglog_slope": loglog_slope(sizes, means["G1 async"]),
        "G1_sync_semilog_slope": semilog_slope(sizes, means["G1 sync"]),
        "G1_sync_loglog_slope": loglog_slope(sizes, means["G1 sync"]),
        "G2_async_loglog_slope": loglog_slope(sizes, means["G2 async"]),
        "G2_sync_loglog_slope": loglog_slope(sizes, means["G2 sync"]),
    }
    check_report = evaluate_checks(checks(scale), rows=rows, derived=derived)

    trials = by_label["G1 async"][0].scenario.trials
    tail_trials = tail_point.scenario.trials
    return ExperimentResult(
        experiment_id="E5/E6",
        title="Theorem 1.7: synchronous vs asynchronous dichotomies on G1 and G2",
        claim=(
            "Ta(G1) = Omega(n) while Ts(G1) = Theta(log n); Ta(G2) = Theta(log n) while "
            "Ts(G2) = n; and Pr[async spread on G2 > 2k] <= e^{-k/2} + e^{-k}."
        ),
        rows=rows,
        derived=derived,
        passed=check_report.passed,
        notes=f"scale={scale}, trials per point={trials}, tail trials={tail_trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios", "part_iii_rows"]
