"""Experiments E5 & E6 — Theorem 1.7 dichotomies (Figure 1).

Claims checked:

* (i) on ``G1`` (clique with pendant rumor holder, then two bridged cliques)
  the asynchronous spread time is ``Ω(n)`` while the synchronous one is
  ``Θ(log n)``;
* (ii) on ``G2`` (the adaptive dynamic star) the asynchronous spread time is
  ``Θ(log n)`` while the synchronous one is exactly ``n`` rounds;
* (iii) quantitatively, the asynchronous algorithm finishes on ``G2`` within
  ``2k`` time with probability at least ``1 − e^{-k/2−o(1)} − e^{-k−o(1)}``.

The experiment produces the regenerated "Figure 1 table": for a sweep of
``n``, the mean asynchronous and synchronous spread times on both networks,
plus the tail comparison of part (iii).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.regression import loglog_slope, semilog_slope
from repro.analysis.trials import run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.experiments.result import ExperimentResult
from repro.utils.rng import RngLike, spawn_rngs


def part_iii_rows(n: int, ks: List[int], trials: int, rng) -> List[Dict]:
    """Empirical ``Pr[spread > 2k]`` on the dynamic star versus the theorem tail."""
    process = AsynchronousRumorSpreading()
    seeds = spawn_rngs(rng, trials)
    spread_times = []
    for seed in seeds:
        result = process.run(DynamicStarNetwork(n), rng=seed)
        spread_times.append(result.spread_time)
    rows = []
    for k in ks:
        empirical = sum(1 for value in spread_times if value > 2 * k) / len(spread_times)
        bound = math.exp(-k / 2.0) + math.exp(-float(k))
        rows.append(
            {
                "network": "G2 tail (iii)",
                "n": n,
                "k": k,
                "empirical_P[spread>2k]": empirical,
                "bound_e^{-k/2}+e^{-k}": min(1.0, bound),
                "within_bound": empirical <= min(1.0, bound) + 0.25,
            }
        )
    return rows


def run(scale: str = "small", rng: RngLike = 2024) -> ExperimentResult:
    """Run experiments E5/E6 and return their combined :class:`ExperimentResult`."""
    if scale == "small":
        sizes = [32, 64, 128]
        trials = 30
        tail_trials = 60
        # k = 2 is below the regime where the e^{-k/2} + e^{-k} tail kicks in
        # (the theorem's o(1) terms dominate there), so the sweep starts at 4.
        tail_ks = [4, 6, 8]
    else:
        sizes = [64, 128, 256, 512]
        trials = 60
        tail_trials = 400
        tail_ks = [4, 6, 8, 10]

    async_process = AsynchronousRumorSpreading()
    sync_process = SynchronousRumorSpreading()
    seeds = spawn_rngs(rng, 5)
    rows: List[Dict] = []

    g1_async, g1_sync, g2_async, g2_sync = [], [], [], []
    for n in sizes:
        async_g1 = run_trials(
            async_process.run, lambda n=n: CliqueBridgeNetwork(n), trials=trials, rng=seeds[0]
        )
        sync_g1 = run_trials(
            sync_process.run, lambda n=n: CliqueBridgeNetwork(n), trials=trials, rng=seeds[1]
        )
        async_g2 = run_trials(
            async_process.run, lambda n=n: DynamicStarNetwork(n), trials=trials, rng=seeds[2]
        )
        sync_g2 = run_trials(
            sync_process.run, lambda n=n: DynamicStarNetwork(n), trials=trials, rng=seeds[3]
        )
        g1_async.append(async_g1.mean)
        g1_sync.append(sync_g1.mean)
        g2_async.append(async_g2.mean)
        g2_sync.append(sync_g2.mean)
        rows.append(
            {
                "network": "G1 (clique+pendant -> bridged cliques)",
                "n": n,
                "async_mean": async_g1.mean,
                "sync_mean_rounds": sync_g1.mean,
                "async_over_sync": async_g1.mean / max(sync_g1.mean, 1e-9),
            }
        )
        rows.append(
            {
                "network": "G2 (dynamic star)",
                "n": n,
                "async_mean": async_g2.mean,
                "sync_mean_rounds": sync_g2.mean,
                "async_over_sync": async_g2.mean / max(sync_g2.mean, 1e-9),
            }
        )

    tail = part_iii_rows(max(sizes), tail_ks, tail_trials, seeds[4])
    rows.extend(tail)

    derived = {
        "G1_async_loglog_slope": loglog_slope(sizes, g1_async),
        "G1_sync_semilog_slope": semilog_slope(sizes, g1_sync),
        "G1_sync_loglog_slope": loglog_slope(sizes, g1_sync),
        "G2_async_loglog_slope": loglog_slope(sizes, g2_async),
        "G2_sync_loglog_slope": loglog_slope(sizes, g2_sync),
    }
    # Shape checks.  At the modest sizes run here the G1 asynchronous mean is a
    # mixture of the Θ(log n) "caught the pendant window" runs and the Θ(n)
    # "missed it" runs, so its finite-size log-log slope sits well below the
    # asymptotic 1; requiring it to clearly exceed the polylogarithmic slopes
    # (and the synchronous slopes to stay sublinear) captures the dichotomy.
    passed = (
        derived["G1_async_loglog_slope"] > 0.35
        and derived["G1_sync_loglog_slope"] < 0.6
        and derived["G1_async_loglog_slope"] > derived["G1_sync_loglog_slope"]
        and derived["G2_sync_loglog_slope"] > 0.9
        and derived["G2_async_loglog_slope"] < 0.6
        and all(row["sync_mean_rounds"] == row["n"] for row in rows if row["network"].startswith("G2 (dynamic"))
        and all(row["within_bound"] for row in tail)
    )

    return ExperimentResult(
        experiment_id="E5/E6",
        title="Theorem 1.7: synchronous vs asynchronous dichotomies on G1 and G2",
        claim=(
            "Ta(G1) = Omega(n) while Ts(G1) = Theta(log n); Ta(G2) = Theta(log n) while "
            "Ts(G2) = n; and Pr[async spread on G2 > 2k] <= e^{-k/2} + e^{-k}."
        ),
        rows=rows,
        derived=derived,
        passed=passed,
        notes=f"scale={scale}, trials per point={trials}, tail trials={tail_trials}",
    )


__all__ = ["run", "part_iii_rows"]
