"""Registry mapping DESIGN.md experiment ids to their runners.

Every runner accepts ``(scale=..., rng=..., pipeline=...)`` and executes its
declarative scenario table through the shared
:class:`repro.scenarios.pipeline.ExperimentPipeline`; the companion
``SCENARIO_TABLES`` registry exposes each experiment's table builder so the
CLI can list (and users can export) the scenarios without running anything.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments import (
    engine_validation,
    lemma_4_2,
    related_work,
    theorem_1_1,
    theorem_1_2,
    theorem_1_3,
    theorem_1_5,
    theorem_1_7,
)
from repro.checks import Check
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario
from repro.utils.validation import require

#: Experiment id → runner.  E5 and E6 share a runner (both halves of Theorem 1.7).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": theorem_1_1.run,
    "E2": theorem_1_2.run,
    "E3": theorem_1_3.run,
    "E4": theorem_1_5.run,
    "E5": theorem_1_7.run,
    "E6": theorem_1_7.run,
    "E7": related_work.run,
    "E8": lemma_4_2.run,
    "E9": engine_validation.run,
}

#: Experiment id → declarative scenario table builder (same sharing as above).
SCENARIO_TABLES: Dict[str, Callable[..., List[Scenario]]] = {
    "E1": theorem_1_1.scenarios,
    "E2": theorem_1_2.scenarios,
    "E3": theorem_1_3.scenarios,
    "E4": theorem_1_5.scenarios,
    "E5": theorem_1_7.scenarios,
    "E6": theorem_1_7.scenarios,
    "E7": related_work.scenarios,
    "E8": lemma_4_2.scenarios,
    "E9": engine_validation.scenarios,
}

#: Experiment id → declarative check table builder (acceptance logic as data).
CHECK_TABLES: Dict[str, Callable[..., List[Check]]] = {
    "E1": theorem_1_1.checks,
    "E2": theorem_1_2.checks,
    "E3": theorem_1_3.checks,
    "E4": theorem_1_5.checks,
    "E5": theorem_1_7.checks,
    "E6": theorem_1_7.checks,
    "E7": related_work.checks,
    "E8": lemma_4_2.checks,
    "E9": engine_validation.checks,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Return the runner for ``experiment_id`` (raising on unknown ids)."""
    require(experiment_id in EXPERIMENTS, f"unknown experiment id {experiment_id!r}; "
            f"known ids: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id]


def get_scenario_table(experiment_id: str) -> Callable[..., List[Scenario]]:
    """Return the scenario-table builder for ``experiment_id``."""
    require(experiment_id in SCENARIO_TABLES, f"unknown experiment id {experiment_id!r}; "
            f"known ids: {sorted(SCENARIO_TABLES)}")
    return SCENARIO_TABLES[experiment_id]


def get_check_table(experiment_id: str) -> Callable[..., List[Check]]:
    """Return the check-table builder for ``experiment_id``."""
    require(experiment_id in CHECK_TABLES, f"unknown experiment id {experiment_id!r}; "
            f"known ids: {sorted(CHECK_TABLES)}")
    return CHECK_TABLES[experiment_id]


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id, forwarding keyword arguments to its runner."""
    return get_experiment(experiment_id)(**kwargs)


def run_all(
    scale: str = "small", pipeline: Optional[ExperimentPipeline] = None
) -> Dict[str, ExperimentResult]:
    """Run every distinct experiment once and return results keyed by id.

    Ids sharing a runner (E5/E6) are deduplicated: the shared runner executes
    once and the result appears under the first id.
    """
    results: Dict[str, ExperimentResult] = {}
    seen_runners = set()
    for experiment_id, runner in EXPERIMENTS.items():
        if runner in seen_runners:
            continue
        seen_runners.add(runner)
        results[experiment_id] = runner(scale=scale, pipeline=pipeline)
    return results


__all__ = [
    "CHECK_TABLES",
    "EXPERIMENTS",
    "SCENARIO_TABLES",
    "get_check_table",
    "get_experiment",
    "get_scenario_table",
    "run_all",
    "run_experiment",
]
