"""Registry mapping DESIGN.md experiment ids to their runners."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    engine_validation,
    lemma_4_2,
    related_work,
    theorem_1_1,
    theorem_1_2,
    theorem_1_3,
    theorem_1_5,
    theorem_1_7,
)
from repro.experiments.result import ExperimentResult
from repro.utils.validation import require

#: Experiment id → runner.  E5 and E6 share a runner (both halves of Theorem 1.7).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": theorem_1_1.run,
    "E2": theorem_1_2.run,
    "E3": theorem_1_3.run,
    "E4": theorem_1_5.run,
    "E5": theorem_1_7.run,
    "E6": theorem_1_7.run,
    "E7": related_work.run,
    "E8": lemma_4_2.run,
    "E9": engine_validation.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Return the runner for ``experiment_id`` (raising on unknown ids)."""
    require(experiment_id in EXPERIMENTS, f"unknown experiment id {experiment_id!r}; "
            f"known ids: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id, forwarding keyword arguments to its runner."""
    return get_experiment(experiment_id)(**kwargs)


def run_all(scale: str = "small") -> Dict[str, ExperimentResult]:
    """Run every distinct experiment once and return results keyed by id."""
    results: Dict[str, ExperimentResult] = {}
    seen_runners = set()
    for experiment_id, runner in EXPERIMENTS.items():
        if runner in seen_runners:
            continue
        seen_runners.add(runner)
        results[experiment_id] = runner(scale=scale)
    return results


__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment", "run_all"]
