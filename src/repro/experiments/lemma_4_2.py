"""Experiment E8 — Lemma 4.2: crossing the ``H_{k,Δ}`` chain in one time unit.

Claim: starting with all of ``S_0`` informed, the probability that the rumor
reaches a node of ``S_k`` within one time unit is at most ``(2^k/k!)·Δ`` —
the expectation bound the paper derives for the *forward 2-push* coupling.

The experiment simulates the forward 2-push process on chains of increasing
length ``k`` and compares (a) the empirical expected number of informed nodes
in ``S_k`` after one time unit and (b) the empirical probability that ``S_k``
was reached at all, against the ``(2^k/k!)·Δ`` bound — which collapses
super-exponentially once ``k`` passes ``2e``, exactly the mechanism behind the
Theorem 1.2 lower bound.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.variants import forward_two_push_chain, forward_two_push_tail_bound
from repro.experiments.result import ExperimentResult
from repro.utils.rng import RngLike, spawn_rngs


def run(scale: str = "small", rng: RngLike = 2025) -> ExperimentResult:
    """Run experiment E8 and return its :class:`ExperimentResult`."""
    if scale == "small":
        delta = 12
        ks = [1, 2, 4, 6, 8]
        trials = 200
    else:
        delta = 24
        ks = [1, 2, 4, 6, 8, 10, 12]
        trials = 1000

    rows: List[Dict] = []
    seeds = spawn_rngs(rng, len(ks))
    for k, seed in zip(ks, seeds):
        cluster_sizes = [delta] * (k + 1)
        reached = 0
        informed_total = 0
        trial_seeds = spawn_rngs(seed, trials)
        for trial_seed in trial_seeds:
            counts = forward_two_push_chain(cluster_sizes, duration=1.0, rng=trial_seed)
            informed_total += counts[-1]
            if counts[-1] > 0:
                reached += 1
        bound = forward_two_push_tail_bound(k, delta, duration=1.0)
        empirical_mean = informed_total / trials
        rows.append(
            {
                "k": k,
                "delta": delta,
                "empirical_E[I(1,k)]": empirical_mean,
                "bound_(2^k/k!)*delta": bound,
                "empirical_P[reach S_k]": reached / trials,
                "within_bound": empirical_mean <= bound * 1.2 + 0.05,
            }
        )

    passed = all(row["within_bound"] for row in rows) and rows[-1]["empirical_P[reach S_k]"] <= max(
        0.05, min(1.0, rows[-1]["bound_(2^k/k!)*delta"])
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Lemma 4.2: forward 2-push progress along the bipartite chain in one time unit",
        claim=(
            "E[number of S_k nodes informed within one time unit] <= (2^k/k!) * Delta, "
            "so for k = Theta(log n / log log n) the chain is essentially never crossed "
            "in a single step."
        ),
        rows=rows,
        derived={"max_k": float(ks[-1])},
        passed=passed,
        notes=f"scale={scale}, delta={delta}, trials per k={trials}",
    )


__all__ = ["run"]
