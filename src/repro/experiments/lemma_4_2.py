"""Experiment E8 — Lemma 4.2: crossing the ``H_{k,Δ}`` chain in one time unit.

Claim: starting with all of ``S_0`` informed, the probability that the rumor
reaches a node of ``S_k`` within one time unit is at most ``(2^k/k!)·Δ`` —
the expectation bound the paper derives for the *forward 2-push* coupling.

One declarative ``two_push_chain`` scenario sweeps the chain length ``k``;
each point simulates the forward 2-push process and compares (a) the
empirical expected number of informed nodes in ``S_k`` after one time unit
and (b) the empirical probability that ``S_k`` was reached at all, against
the ``(2^k/k!)·Δ`` bound — which collapses super-exponentially once ``k``
passes ``2e``, exactly the mechanism behind the Theorem 1.2 lower bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def scenarios(scale: str = "small", rng: RngLike = 2025) -> List[Scenario]:
    """The declarative E8 scenario table (one k-sweep scenario)."""
    if scale == "small":
        delta = 12
        ks = (1, 2, 4, 6, 8)
        trials = 200
    else:
        delta = 24
        ks = (1, 2, 4, 6, 8, 10, 12)
        trials = 1000
    return [
        Scenario(
            label="forward 2-push chain",
            kind="two_push_chain",
            sweep_name="k",
            sweep=ks,
            trials=trials,
            seed=scenario_seed(rng, 0),
            options={"delta": delta, "duration": 1.0},
        )
    ]


def checks(scale: str = "small") -> List[Check]:
    """The declarative E8 check table.

    Every swept ``k`` must respect the ``(2^k/k!)·Δ`` expectation bound (with
    the historical 20% + 0.05 sampling slack), and at the largest ``k`` the
    empirical crossing probability must stay under the bound clamped to
    ``[0.05, 1.0]`` — super-exponential collapse means the chain is
    essentially never crossed there.
    """
    last_k = 8 if scale == "small" else 12
    return [
        Check(
            label="E[informed in S_k] within (2^k/k!) Delta",
            kind="upper_bound",
            column="empirical_E[I(1,k)]",
            against="bound_(2^k/k!)*delta",
            scale=1.2,
            offset=0.05,
        ),
        Check(
            label="chain essentially never crossed at the largest k",
            kind="upper_bound",
            column="empirical_P[reach S_k]",
            against="bound_(2^k/k!)*delta",
            clamp_low=0.05,
            clamp_high=1.0,
            where={"k": last_k},
            # Fail loud if the sweep ever stops producing the largest-k row
            # (the historical code indexed rows[-1] unconditionally).
            require_rows=1,
        ),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2025,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E8 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))

    rows: List[Dict] = []
    for point in results:
        payload = point.payload
        rows.append(
            {
                "k": payload["k"],
                "delta": payload["delta"],
                "empirical_E[I(1,k)]": payload["empirical_mean"],
                "bound_(2^k/k!)*delta": payload["bound"],
                "empirical_P[reach S_k]": payload["empirical_reach_probability"],
                "within_bound": payload["empirical_mean"] <= payload["bound"] * 1.2 + 0.05,
            }
        )

    check_report = evaluate_checks(checks(scale), rows=rows)
    delta = rows[-1]["delta"]
    trials = results[0].scenario.trials if results else 0
    return ExperimentResult(
        experiment_id="E8",
        title="Lemma 4.2: forward 2-push progress along the bipartite chain in one time unit",
        claim=(
            "E[number of S_k nodes informed within one time unit] <= (2^k/k!) * Delta, "
            "so for k = Theta(log n / log log n) the chain is essentially never crossed "
            "in a single step."
        ),
        rows=rows,
        derived={"max_k": float(rows[-1]["k"])},
        passed=check_report.passed,
        notes=f"scale={scale}, delta={delta}, trials per k={trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios"]
