"""Experiment E9 — boundary engine vs naive engine cross-validation (ablation).

The boundary engine only simulates informative contacts (an exponential race
over the informed/uninformed cut); the naive engine simulates every clock tick
of Definition 1 literally.  The two must agree in distribution.  This
experiment runs one declarative scenario per (topology, engine) pair through
the pipeline and compares the engines' mean spread times per topology,
serving both as a correctness check and as the ablation benchmark for the
engine design choice called out in DESIGN.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike

#: (label, network family, size parameter) of each cross-validation topology.
_CASES = [
    ("path(6)", "path", 6),
    ("cycle(8)", "cycle", 8),
    ("star(8)", "star", 8),
    ("clique(8)", "clique", 8),
    ("dynamic star G2(8)", "dynamic-star", 8),
]


def scenarios(scale: str = "small", rng: RngLike = 2027) -> List[Scenario]:
    """The declarative E9 scenario table: every case × both engines."""
    trials = 150 if scale == "small" else 600
    table: List[Scenario] = []
    for index, (label, family, n) in enumerate(_CASES):
        for engine_index, engine in enumerate(("boundary", "naive")):
            table.append(
                Scenario(
                    label=f"{label} [{engine}]",
                    network=family,
                    sweep=(n,),
                    engine=engine,
                    trials=trials,
                    seed=scenario_seed(rng, 2 * index + engine_index),
                )
            )
    return table


def checks(scale: str = "small") -> List[Check]:
    """The declarative E9 check table: engines agree within 4σ per topology."""
    return [
        Check(
            label="boundary and naive engines agree (z < 4)",
            kind="upper_bound",
            column="z_score",
            against=4.0,
            strict=True,
        ),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2027,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E9 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))
    by_label = {point.label: point for point in results}

    rows: List[Dict] = []
    trials = results[0].scenario.trials if results else 0
    for label, _family, _n in _CASES:
        summary_boundary = by_label[f"{label} [boundary]"].payload["summary"]
        summary_naive = by_label[f"{label} [naive]"].payload["summary"]
        mean_b = summary_boundary["mean"]
        mean_n = summary_naive["mean"]
        # Two-sample z-style comparison of the means.
        pooled_se = math.sqrt(
            summary_boundary["std"] ** 2 / trials + summary_naive["std"] ** 2 / trials
        )
        z_score = abs(mean_b - mean_n) / pooled_se if pooled_se > 0 else 0.0
        rows.append(
            {
                "network": label,
                "trials": trials,
                "mean_boundary": mean_b,
                "mean_naive": mean_n,
                "relative_gap": abs(mean_b - mean_n) / max(mean_n, 1e-9),
                "z_score": z_score,
                "agree": z_score < 4.0,
            }
        )

    check_report = evaluate_checks(checks(scale), rows=rows)
    return ExperimentResult(
        experiment_id="E9",
        title="Engine ablation: boundary (cut-race) engine vs naive clock-tick engine",
        claim=(
            "The boundary engine is a statistically exact simulation of Definition 1: its "
            "spread time distribution matches the literal clock-tick simulation."
        ),
        rows=rows,
        derived={"max_z_score": max(row["z_score"] for row in rows)},
        passed=check_report.passed,
        notes=f"scale={scale}, trials per engine per network={trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios"]
