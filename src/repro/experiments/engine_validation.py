"""Experiment E9 — boundary engine vs naive engine cross-validation (ablation).

The boundary engine only simulates informative contacts (an exponential race
over the informed/uninformed cut); the naive engine simulates every clock tick
of Definition 1 literally.  The two must agree in distribution.  This
experiment compares their mean spread times on several small topologies and
reports the speed advantage of the boundary engine, serving both as a
correctness check and as the ablation benchmark for the engine design choice
called out in DESIGN.md.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List

from repro.analysis.trials import run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.experiments.result import ExperimentResult
from repro.graphs.generators import clique, cycle, path, star
from repro.utils.rng import RngLike, spawn_rngs


def run(scale: str = "small", rng: RngLike = 2027) -> ExperimentResult:
    """Run experiment E9 and return its :class:`ExperimentResult`."""
    trials = 150 if scale == "small" else 600
    cases = [
        ("path(6)", lambda: StaticDynamicNetwork(path(range(6)))),
        ("cycle(8)", lambda: StaticDynamicNetwork(cycle(range(8)))),
        ("star(8)", lambda: StaticDynamicNetwork(star(0, range(1, 8)))),
        ("clique(8)", lambda: StaticDynamicNetwork(clique(range(8)))),
        ("dynamic star G2(8)", lambda: DynamicStarNetwork(8)),
    ]
    boundary = AsynchronousRumorSpreading(engine="boundary")
    naive = AsynchronousRumorSpreading(engine="naive")
    seeds = spawn_rngs(rng, 2 * len(cases))
    rows: List[Dict] = []

    for index, (name, factory) in enumerate(cases):
        summary_boundary = run_trials(boundary.run, factory, trials=trials, rng=seeds[2 * index])
        summary_naive = run_trials(naive.run, factory, trials=trials, rng=seeds[2 * index + 1])
        mean_b = summary_boundary.mean
        mean_n = summary_naive.mean
        # Two-sample z-style comparison of the means.
        pooled_se = math.sqrt(
            summary_boundary.std**2 / trials + summary_naive.std**2 / trials
        )
        z_score = abs(mean_b - mean_n) / pooled_se if pooled_se > 0 else 0.0
        rows.append(
            {
                "network": name,
                "trials": trials,
                "mean_boundary": mean_b,
                "mean_naive": mean_n,
                "relative_gap": abs(mean_b - mean_n) / max(mean_n, 1e-9),
                "z_score": z_score,
                "agree": z_score < 4.0,
            }
        )

    passed = all(row["agree"] for row in rows)
    return ExperimentResult(
        experiment_id="E9",
        title="Engine ablation: boundary (cut-race) engine vs naive clock-tick engine",
        claim=(
            "The boundary engine is a statistically exact simulation of Definition 1: its "
            "spread time distribution matches the literal clock-tick simulation."
        ),
        rows=rows,
        derived={"max_z_score": max(row["z_score"] for row in rows)},
        passed=passed,
        notes=f"scale={scale}, trials per engine per network={trials}",
    )


__all__ = ["run"]
