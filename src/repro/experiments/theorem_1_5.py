"""Experiment E4 — Theorem 1.5 lower-bound construction (absolute diligence).

Claim: for every ``10/n ≤ ρ ≤ 1`` there is an absolutely Θ(ρ)-diligent,
always-connected dynamic network on which the algorithm needs ``Ω(n/ρ)`` time
with probability ``1 − O(1/n)`` — matching the Theorem 1.3 upper bound
``T_abs = Θ(n/ρ)`` up to a constant.

The experiment is one declarative scenario: a ``trials`` sweep over ``ρ``
(equivalently the bridge degree ``Δ``) at fixed ``n`` on the adaptive
construction, capped at a multiple of its own ``T_abs`` prediction.  The
checks are that

* the measured spread time grows linearly with ``Δ ≈ 1/ρ`` (log–log slope
  close to 1), and
* measured times sit between a small constant times the ``nΔ/20`` lower-bound
  prediction and the ``2n(Δ+1)`` Theorem 1.3 budget.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.analysis.regression import loglog_slope
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def scenarios(scale: str = "small", rng: RngLike = 2023) -> List[Scenario]:
    """The declarative E4 scenario table (one ρ-sweep scenario)."""
    if scale == "small":
        n = 96
        rhos = [0.25, 0.125, 1.0 / 12.0]
        trials = 3
    else:
        n = 240
        rhos = [0.25, 0.125, 0.0625, 1.0 / 24.0]
        trials = 10
    return [
        Scenario(
            label="absolutely-diligent rho sweep",
            network="absolute-diligent",
            params={"n": n},
            sweep_name="rho",
            sweep=tuple(rhos),
            trials=trials,
            seed=scenario_seed(rng, 0),
            options={
                "max_time_policy": {
                    "attr": "predicted_absolute_upper_bound",
                    "scale": 4.0,
                },
                "probe": [
                    "delta",
                    {"name": "lower_prediction", "attr": "predicted_lower_bound"},
                    {"name": "upper_Tabs", "attr": "predicted_absolute_upper_bound"},
                ],
            },
        )
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2023,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E4 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))

    rows: List[Dict] = []
    for point in results:
        summary = point.payload["summary"]
        probe = point.payload["probe"]
        rows.append(
            {
                "rho": point.value,
                "delta": int(probe["delta"]),
                "n": point.payload["n"],
                "measured_mean": summary["mean"],
                "measured_whp": summary["whp"],
                "lower_prediction_nD/20": probe["lower_prediction"],
                "upper_Tabs_2n(D+1)": probe["upper_Tabs"],
                "completion_rate": summary["completion_rate"],
            }
        )

    finite = [row for row in rows if math.isfinite(row["measured_mean"])]
    slope = (
        loglog_slope([row["delta"] for row in finite], [row["measured_mean"] for row in finite])
        if len(finite) >= 2
        else float("nan")
    )
    lower_ok = all(
        row["measured_mean"] >= 0.5 * row["lower_prediction_nD/20"] for row in finite
    )
    upper_ok = all(
        row["measured_whp"] <= row["upper_Tabs_2n(D+1)"]
        for row in rows
        if math.isfinite(row["measured_whp"])
    )
    passed = bool(finite) and lower_ok and upper_ok and (0.5 <= slope <= 1.8)

    n = rows[0]["n"] if rows else 0
    trials = results[0].scenario.trials if results else 0
    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 1.5: Ω(n/ρ) spread time on the absolutely Θ(ρ)-diligent family",
        claim=(
            "On the adaptive construction of Section 5.1 the spread time is Omega(n/rho) "
            "with probability 1 - O(1/n), matching T_abs up to a constant."
        ),
        rows=rows,
        derived={
            "spread_vs_delta_loglog_slope": slope,
            "lower_bound_check": float(lower_ok),
            "upper_bound_check": float(upper_ok),
        },
        passed=passed,
        notes=f"scale={scale}, n={n}, trials per rho={trials}",
    )


__all__ = ["run", "scenarios"]
