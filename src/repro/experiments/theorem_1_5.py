"""Experiment E4 — Theorem 1.5 lower-bound construction (absolute diligence).

Claim: for every ``10/n ≤ ρ ≤ 1`` there is an absolutely Θ(ρ)-diligent,
always-connected dynamic network on which the algorithm needs ``Ω(n/ρ)`` time
with probability ``1 − O(1/n)`` — matching the Theorem 1.3 upper bound
``T_abs = Θ(n/ρ)`` up to a constant.

The experiment sweeps ``ρ`` (equivalently the bridge degree ``Δ``) at fixed
``n``, measures the spread time of the asynchronous push–pull algorithm on the
adaptive construction, and checks that

* the measured spread time grows linearly with ``Δ ≈ 1/ρ`` (log–log slope
  close to 1), and
* measured times sit between a small constant times the ``nΔ/20`` lower-bound
  prediction and the ``2n(Δ+1)`` Theorem 1.3 budget.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.regression import loglog_slope
from repro.analysis.trials import run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.experiments.result import ExperimentResult
from repro.utils.rng import RngLike, spawn_rngs


def run(scale: str = "small", rng: RngLike = 2023) -> ExperimentResult:
    """Run experiment E4 and return its :class:`ExperimentResult`."""
    if scale == "small":
        n = 96
        rhos = [0.25, 0.125, 1.0 / 12.0]
        trials = 3
    else:
        n = 240
        rhos = [0.25, 0.125, 0.0625, 1.0 / 24.0]
        trials = 10

    process = AsynchronousRumorSpreading()
    seeds = spawn_rngs(rng, len(rhos))
    rows: List[Dict] = []

    for rho, seed in zip(rhos, seeds):
        factory = lambda rho=rho: AbsolutelyDiligentNetwork(n, rho)
        probe = factory()
        summary = run_trials(
            process.run,
            factory,
            trials=trials,
            rng=seed,
            max_time=4.0 * probe.predicted_absolute_upper_bound(),
        )
        rows.append(
            {
                "rho": rho,
                "delta": probe.delta,
                "n": n,
                "measured_mean": summary.mean,
                "measured_whp": summary.whp_spread_time,
                "lower_prediction_nD/20": probe.predicted_lower_bound(),
                "upper_Tabs_2n(D+1)": probe.predicted_absolute_upper_bound(),
                "completion_rate": summary.completion_rate,
            }
        )

    finite = [row for row in rows if math.isfinite(row["measured_mean"])]
    slope = (
        loglog_slope([row["delta"] for row in finite], [row["measured_mean"] for row in finite])
        if len(finite) >= 2
        else float("nan")
    )
    lower_ok = all(
        row["measured_mean"] >= 0.5 * row["lower_prediction_nD/20"] for row in finite
    )
    upper_ok = all(
        row["measured_whp"] <= row["upper_Tabs_2n(D+1)"]
        for row in rows
        if math.isfinite(row["measured_whp"])
    )
    passed = bool(finite) and lower_ok and upper_ok and (0.5 <= slope <= 1.8)

    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 1.5: Ω(n/ρ) spread time on the absolutely Θ(ρ)-diligent family",
        claim=(
            "On the adaptive construction of Section 5.1 the spread time is Omega(n/rho) "
            "with probability 1 - O(1/n), matching T_abs up to a constant."
        ),
        rows=rows,
        derived={
            "spread_vs_delta_loglog_slope": slope,
            "lower_bound_check": float(lower_ok),
            "upper_bound_check": float(upper_ok),
        },
        passed=passed,
        notes=f"scale={scale}, n={n}, trials per rho={trials}",
    )


__all__ = ["run"]
