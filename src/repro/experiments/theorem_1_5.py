"""Experiment E4 — Theorem 1.5 lower-bound construction (absolute diligence).

Claim: for every ``10/n ≤ ρ ≤ 1`` there is an absolutely Θ(ρ)-diligent,
always-connected dynamic network on which the algorithm needs ``Ω(n/ρ)`` time
with probability ``1 − O(1/n)`` — matching the Theorem 1.3 upper bound
``T_abs = Θ(n/ρ)`` up to a constant.

The experiment is one declarative scenario: a ``trials`` sweep over ``ρ``
(equivalently the bridge degree ``Δ``) at fixed ``n`` on the adaptive
construction, capped at a multiple of its own ``T_abs`` prediction.  The
checks are that

* the measured spread time grows linearly with ``Δ ≈ 1/ρ`` (log–log slope
  close to 1), and
* measured times sit between a small constant times the ``nΔ/20`` lower-bound
  prediction and the ``2n(Δ+1)`` Theorem 1.3 budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def scenarios(scale: str = "small", rng: RngLike = 2023) -> List[Scenario]:
    """The declarative E4 scenario table (one ρ-sweep scenario)."""
    if scale == "small":
        n = 96
        rhos = [0.25, 0.125, 1.0 / 12.0]
        trials = 3
    else:
        n = 240
        rhos = [0.25, 0.125, 0.0625, 1.0 / 24.0]
        trials = 10
    return [
        Scenario(
            label="absolutely-diligent rho sweep",
            network="absolute-diligent",
            params={"n": n},
            sweep_name="rho",
            sweep=tuple(rhos),
            trials=trials,
            seed=scenario_seed(rng, 0),
            options={
                "max_time_policy": {
                    "attr": "predicted_absolute_upper_bound",
                    "scale": 4.0,
                },
                "probe": [
                    "delta",
                    {"name": "lower_prediction", "attr": "predicted_lower_bound"},
                    {"name": "upper_Tabs", "attr": "predicted_absolute_upper_bound"},
                ],
            },
        )
    ]


def checks(scale: str = "small") -> List[Check]:
    """The declarative E4 check table.

    Timed-out points are skipped on both bound comparisons (the historical
    behaviour); ``require_rows=1`` on the lower bound demands at least one
    completed point, and the slope fit fails outright when fewer than two
    usable points remain.
    """
    return [
        Check(
            label="spread time above the nD/20 lower prediction",
            kind="lower_bound",
            column="measured_mean",
            against="lower_prediction_nD/20",
            scale=0.5,
            non_finite="skip",
            require_rows=1,
        ),
        Check(
            label="whp spread time within T_abs = 2n(D+1)",
            kind="upper_bound",
            column="measured_whp",
            against="upper_Tabs_2n(D+1)",
            non_finite="skip",
        ),
        Check(
            label="spread time linear in Delta (log-log slope in [0.5, 1.8])",
            kind="log_slope",
            column="measured_mean",
            x="delta",
            low=0.5,
            high=1.8,
            insufficient="fail",
        ),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2023,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E4 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng))

    rows: List[Dict] = []
    for point in results:
        summary = point.payload["summary"]
        probe = point.payload["probe"]
        rows.append(
            {
                "rho": point.value,
                "delta": int(probe["delta"]),
                "n": point.payload["n"],
                "measured_mean": summary["mean"],
                "measured_whp": summary["whp"],
                "lower_prediction_nD/20": probe["lower_prediction"],
                "upper_Tabs_2n(D+1)": probe["upper_Tabs"],
                "completion_rate": summary["completion_rate"],
            }
        )

    check_report = evaluate_checks(checks(scale), rows=rows)
    lower_result, upper_result, slope_result = check_report.results
    slope = slope_result.observed if slope_result.observed is not None else float("nan")

    n = rows[0]["n"] if rows else 0
    trials = results[0].scenario.trials if results else 0
    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 1.5: Ω(n/ρ) spread time on the absolutely Θ(ρ)-diligent family",
        claim=(
            "On the adaptive construction of Section 5.1 the spread time is Omega(n/rho) "
            "with probability 1 - O(1/n), matching T_abs up to a constant."
        ),
        rows=rows,
        derived={
            "spread_vs_delta_loglog_slope": slope,
            "lower_bound_check": float(lower_result.passed),
            "upper_bound_check": float(upper_result.passed),
        },
        passed=check_report.passed,
        notes=f"scale={scale}, n={n}, trials per rho={trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios"]
