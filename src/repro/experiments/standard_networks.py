"""Compatibility shim: the standard-network builders moved to the dynamics layer.

The implementation now lives in :mod:`repro.dynamics.standard` so the scenario
network registry (:mod:`repro.scenarios.networks`) can resolve these families
without importing the experiment package.  The old duplicated
``STANDARD_FACTORIES`` table is gone — the registry is the single source of
truth for name → builder resolution.
"""

from repro.dynamics.standard import (
    EXPANDER_CONDUCTANCE,
    alternating_regular_complete_network,
    clique_metrics,
    cycle_metrics,
    regular_metrics,
    star_metrics,
    static_clique_network,
    static_cycle_network,
    static_star_network,
)

__all__ = [
    "EXPANDER_CONDUCTANCE",
    "alternating_regular_complete_network",
    "clique_metrics",
    "cycle_metrics",
    "regular_metrics",
    "star_metrics",
    "static_clique_network",
    "static_cycle_network",
    "static_star_network",
]
