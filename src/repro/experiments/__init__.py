"""Experiments reproducing every quantitative claim of the paper.

Each module exposes ``run(scale="small", rng=...) -> ExperimentResult`` and is
wired to one benchmark in ``benchmarks/``; the registry maps experiment ids
(E1..E9, matching DESIGN.md's experiment index) to their runners.

The paper is a theory paper — its "tables and figures" are the theorem
statements plus the two constructions of Figure 1 — so each experiment
validates the *shape* of a theorem by simulation: upper bounds hold on every
run, lower-bound constructions grow at the predicted rate, and the
synchronous/asynchronous dichotomies point in the stated directions.
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment", "run_experiment"]
