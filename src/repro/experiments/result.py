"""Common result container for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.checks.check import CheckResult
from repro.utils.validation import require


@dataclass
class ExperimentResult:
    """The outcome of one reproduction experiment.

    Attributes
    ----------
    experiment_id:
        DESIGN.md experiment id (``"E1"`` .. ``"E9"``).
    title:
        Short human-readable title.
    claim:
        The paper claim being validated (quoted / paraphrased).
    rows:
        The regenerated table: one dict per row.
    derived:
        Scalar quantities derived from the rows (fitted slopes, max ratios,
        pass/fail margins) used by tests and EXPERIMENTS.md.
    passed:
        Overall shape-check verdict for the experiment (None if the experiment
        is purely descriptive).
    notes:
        Free-form remarks (scale used, caveats).
    check_results:
        Structured outcomes of the experiment's declarative check table
        (empty for purely descriptive experiments); ``passed`` is their
        conjunction.
    """

    experiment_id: str
    title: str
    claim: str
    rows: List[Dict[str, Any]]
    derived: Dict[str, float] = field(default_factory=dict)
    passed: Optional[bool] = None
    notes: str = ""
    check_results: List[CheckResult] = field(default_factory=list)

    def table(self, columns: Optional[Sequence[str]] = None, precision: int = 3) -> str:
        """Render the regenerated table as text."""
        require(len(self.rows) > 0, "experiment produced no rows")
        return format_table(self.rows, columns=columns, precision=precision, title=self.title)

    def as_dict(self, include_checks: bool = False) -> Dict[str, Any]:
        """Plain-dict form of the result (the CLI's ``--json`` schema).

        ``include_checks`` adds the per-check outcomes under ``"checks"``
        (used by ``repro verify --json``); the default form is the stable
        ``report --json`` schema.
        """
        document = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "rows": self.rows,
            "derived": self.derived,
            "passed": self.passed,
            "notes": self.notes,
        }
        if include_checks:
            document["checks"] = [result.as_dict() for result in self.check_results]
        return document

    def report(self) -> str:
        """Full text report: claim, table, derived quantities and verdict."""
        lines = [f"[{self.experiment_id}] {self.title}", f"Claim: {self.claim}", ""]
        lines.append(self.table())
        if self.derived:
            lines.append("Derived:")
            for key, value in self.derived.items():
                lines.append(f"  {key} = {value:.4g}" if isinstance(value, float) else f"  {key} = {value}")
        if self.check_results:
            lines.append("Checks:")
            for result in self.check_results:
                verdict = "PASS" if result.passed else "FAIL"
                observed = (
                    f" observed={result.observed:.4g}" if result.observed is not None else ""
                )
                lines.append(f"  [{verdict}] {result.label} ({result.kind}){observed}")
        if self.passed is not None:
            lines.append(f"Shape check: {'PASS' if self.passed else 'FAIL'}")
        if self.notes:
            lines.append(f"Notes: {self.notes}")
        return "\n".join(lines) + "\n"


__all__ = ["ExperimentResult"]
