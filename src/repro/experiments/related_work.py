"""Experiment E7 — comparison against the Giakkoupis–Sauerwald–Stauffer bound.

Section 1.2 of the paper argues that the earlier synchronous bound of [17],

    ``min{t : Σ_p Φ(G(p)) = Ω(M(G) log n)}``  with  ``M(G) = max_u Δ_u/δ_u``,

can be a factor Θ(n) above the true spread time on sequences whose degree
distribution swings wildly but harmlessly — the canonical example being a
3-regular expander alternating with the complete graph, for which
``M(G) = (n−1)/3`` while every snapshot is 1-diligent.  Theorem 1.1's
diligence-based bound stays at ``O(log n)`` on the same sequence.

The experiment measures the actual asynchronous and synchronous spread times
on that alternating sequence and tabulates both bounds, checking that the [17]
budget is ~``n/3`` times larger than the Theorem 1.1 budget and that the
measured times track the latter.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.trials import run_trials
from repro.bounds.giakkoupis import giakkoupis_bound
from repro.bounds.theorems import conductance_diligence_bound, theorem_1_1_threshold
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading
from repro.dynamics.base import SnapshotRecorder
from repro.experiments.result import ExperimentResult
from repro.experiments.standard_networks import alternating_regular_complete_network
from repro.utils.rng import RngLike, spawn_rngs


def run(scale: str = "small", rng: RngLike = 2026, c: float = 1.0) -> ExperimentResult:
    """Run experiment E7 and return its :class:`ExperimentResult`."""
    if scale == "small":
        sizes = [32, 64]
        trials = 5
    else:
        sizes = [64, 128, 256]
        trials = 15

    async_process = AsynchronousRumorSpreading()
    sync_process = SynchronousRumorSpreading()
    seeds = spawn_rngs(rng, 3)
    rows: List[Dict] = []

    for n in sizes:
        factory = lambda n=n: alternating_regular_complete_network(n, rng=7)
        async_summary = run_trials(async_process.run, factory, trials=trials, rng=seeds[0])
        sync_summary = run_trials(sync_process.run, factory, trials=trials, rng=seeds[1])

        # Evaluate both bounds on a realised snapshot sequence long enough for
        # the slower budget (Theorem 1.1's, with its explicit constant C) to
        # be reached.  Analytic per-step metrics are attached to the network,
        # so recording thousands of steps is cheap.
        network = factory()
        recorder = SnapshotRecorder(mode="cheap")
        network.reset(seeds[2])
        min_per_step_budget = 0.2  # the regular snapshot's Phi * rho
        horizon = int(math.ceil(theorem_1_1_threshold(n, c) / min_per_step_budget)) + 10
        for step in range(horizon):
            graph = network.graph_for_step(step, frozenset())
            recorder.record(network, step, graph, informed_count=1)
        ours = conductance_diligence_bound(
            recorder.conductance_series(), recorder.diligence_series(), n, c
        )
        theirs = giakkoupis_bound(recorder.conductance_series(), recorder.degree_history, n)
        rows.append(
            {
                "n": n,
                "async_measured_mean": async_summary.mean,
                "sync_measured_mean": sync_summary.mean,
                "bound_thm_1_1": ours.bound,
                "bound_giakkoupis": theirs.bound,
                "giakkoupis_over_thm_1_1_threshold": theirs.threshold / ours.threshold,
                "M(G)": (n - 1) / 3.0,
            }
        )

    # Shape check: the [17] budget grows linearly in n relative to ours, and
    # the measured asynchronous spread time stays polylogarithmic.
    ratio_growth = [row["giakkoupis_over_thm_1_1_threshold"] for row in rows]
    measured = [row["async_measured_mean"] for row in rows]
    passed = (
        all(b > a for a, b in zip(ratio_growth, ratio_growth[1:]))
        and all(value < 10 * math.log(row["n"]) for value, row in zip(measured, rows))
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Section 1.2: Theorem 1.1 vs the degree-variation bound of Giakkoupis et al.",
        claim=(
            "On the alternating 3-regular / complete sequence the [17] bound carries an "
            "M(G) = Theta(n) factor while the diligence-based Theorem 1.1 bound and the "
            "measured spread time stay polylogarithmic."
        ),
        rows=rows,
        derived={"threshold_ratio_at_max_n": ratio_growth[-1]},
        passed=passed,
        notes=f"scale={scale}, trials per point={trials}",
    )


__all__ = ["run"]
