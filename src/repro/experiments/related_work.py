"""Experiment E7 — comparison against the Giakkoupis–Sauerwald–Stauffer bound.

Section 1.2 of the paper argues that the earlier synchronous bound of [17],

    ``min{t : Σ_p Φ(G(p)) = Ω(M(G) log n)}``  with  ``M(G) = max_u Δ_u/δ_u``,

can be a factor Θ(n) above the true spread time on sequences whose degree
distribution swings wildly but harmlessly — the canonical example being a
3-regular expander alternating with the complete graph, for which
``M(G) = (n−1)/3`` while every snapshot is 1-diligent.  Theorem 1.1's
diligence-based bound stays at ``O(log n)`` on the same sequence.

Three declarative scenarios drive the pipeline: asynchronous and synchronous
``trials`` sweeps on the alternating sequence, and a ``bound_series`` sweep
that evaluates both budgets on a realised snapshot sequence (cheap, because
analytic per-step metrics are attached to the network).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike


def scenarios(scale: str = "small", rng: RngLike = 2026, c: float = 1.0) -> List[Scenario]:
    """The declarative E7 scenario table."""
    if scale == "small":
        sizes = (32, 64)
        trials = 5
    else:
        sizes = (64, 128, 256)
        trials = 15
    common = {"network": "alternating-regular-complete", "params": {"degree": 3}, "sweep": sizes}
    return [
        Scenario(label="alternating async", algorithm="async", trials=trials,
                 seed=scenario_seed(rng, 0), **common),
        Scenario(label="alternating sync", algorithm="sync", trials=trials,
                 seed=scenario_seed(rng, 1), **common),
        Scenario(label="alternating bounds", kind="bound_series",
                 seed=scenario_seed(rng, 2), options={"c": c, "min_per_step_budget": 0.2},
                 **common),
    ]


def checks(scale: str = "small") -> List[Check]:
    """The declarative E7 check table.

    The [17] budget must grow strictly relative to ours as ``n`` grows, and
    the measured asynchronous spread time must stay polylogarithmic
    (``< 10 log n``).
    """
    return [
        Check(
            label="[17]/Thm1.1 threshold ratio grows with n",
            kind="monotonic",
            column="giakkoupis_over_thm_1_1_threshold",
            direction="increasing",
            strict=True,
        ),
        Check(
            label="async spread time stays under 10 log n",
            kind="upper_bound",
            column="async_measured_mean",
            against="n",
            transform="log",
            scale=10.0,
            strict=True,
        ),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2026,
    c: float = 1.0,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E7 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng, c))
    by_label = {}
    for point in results:
        by_label.setdefault(point.label, []).append(point)

    rows: List[Dict] = []
    for async_point, sync_point, bound_point in zip(
        by_label["alternating async"],
        by_label["alternating sync"],
        by_label["alternating bounds"],
    ):
        n = async_point.value
        bounds = bound_point.payload
        rows.append(
            {
                "n": n,
                "async_measured_mean": async_point.payload["summary"]["mean"],
                "sync_measured_mean": sync_point.payload["summary"]["mean"],
                "bound_thm_1_1": bounds["bound_thm_1_1"],
                "bound_giakkoupis": bounds["bound_giakkoupis"],
                "giakkoupis_over_thm_1_1_threshold": bounds["threshold_giakkoupis"]
                / bounds["threshold_thm_1_1"],
                "M(G)": (n - 1) / 3.0,
            }
        )

    check_report = evaluate_checks(checks(scale), rows=rows)
    ratio_growth = [row["giakkoupis_over_thm_1_1_threshold"] for row in rows]
    trials = by_label["alternating async"][0].scenario.trials
    return ExperimentResult(
        experiment_id="E7",
        title="Section 1.2: Theorem 1.1 vs the degree-variation bound of Giakkoupis et al.",
        claim=(
            "On the alternating 3-regular / complete sequence the [17] bound carries an "
            "M(G) = Theta(n) factor while the diligence-based Theorem 1.1 bound and the "
            "measured spread time stay polylogarithmic."
        ),
        rows=rows,
        derived={"threshold_ratio_at_max_n": ratio_growth[-1]},
        passed=check_report.passed,
        notes=f"scale={scale}, trials per point={trials}",
        check_results=list(check_report.results),
    )


__all__ = ["checks", "run", "scenarios"]
