"""Experiment E1 — Theorem 1.1 upper bound validation.

Claim: with probability ``1 − n^{-c}`` the asynchronous push–pull algorithm
finishes by ``T(G, c) = min{t : Σ_{p≤t} Φ(G(p)) ρ(G(p)) ≥ C log n}``.

The experiment runs the algorithm on a spread of dynamic networks — static
cliques/stars/cycles viewed as dynamic networks, the alternating regular /
complete sequence, an edge-Markovian evolving graph, and the dynamic star of
Figure 1(b) — and checks that the measured w.h.p. spread time never exceeds
the bound evaluated on the realised snapshot sequence (analytic per-step
metrics where available, measured metrics on small instances otherwise).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.analysis.trials import run_trials
from repro.bounds.theorems import (
    theorem_1_1_threshold,
    theorem_1_3_threshold,
)
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.experiments.result import ExperimentResult
from repro.experiments.standard_networks import (
    alternating_regular_complete_network,
    static_clique_network,
    static_cycle_network,
    static_star_network,
)
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import require


def constant_rate_theorem_1_1_bound(phi: float, rho: float, n: int, c: float = 1.0) -> float:
    """``T(G, c)`` when every snapshot contributes the same ``Φ·ρ`` budget."""
    require(phi > 0 and rho > 0, "phi and rho must be positive for a finite bound")
    return math.ceil(theorem_1_1_threshold(n, c) / (phi * rho))


def constant_rate_theorem_1_3_bound(abs_rho: float, n: int) -> float:
    """``T_abs(G)`` when every snapshot is connected with the same ``ρ̄``."""
    require(abs_rho > 0, "absolute diligence must be positive for a finite bound")
    return math.ceil(theorem_1_3_threshold(n) / abs_rho)


def _bound_from_measured_sequence(
    network_factory: Callable[[], DynamicNetwork],
    n: int,
    c: float,
    rng,
    sample_steps: int = 20,
) -> float:
    """Estimate T(G,c) for a stochastic oblivious network from sampled snapshots.

    Measures ``Φ·ρ`` exactly on ``sample_steps`` snapshots (with an empty
    informed set — the bound is a property of the graph sequence) and
    extrapolates the first-passage time of the Theorem 1.1 budget from their
    average.  Exact per-snapshot measurement restricts this helper to small
    ``n``; the extrapolation is accurate because the sequences used here are
    stationary.
    """
    from repro.graphs.metrics import measure_graph

    network = network_factory()
    network.reset(rng)
    threshold = theorem_1_1_threshold(n, c)
    budgets = []
    for step in range(sample_steps):
        graph = network.graph_for_step(step, frozenset())
        metrics = network.known_step_metrics(step)
        if metrics is None:
            metrics = measure_graph(graph)
        budgets.append(metrics.conductance * metrics.diligence)
    average = sum(budgets) / len(budgets)
    if average <= 0:
        return math.inf
    return float(math.ceil(threshold / average))


def run(scale: str = "small", rng: RngLike = 2020, c: float = 1.0) -> ExperimentResult:
    """Run experiment E1 and return its :class:`ExperimentResult`."""
    if scale == "small":
        sizes = [32, 64]
        markov_n = 12
        trials = 5
    else:
        sizes = [64, 128, 256, 512]
        markov_n = 14
        trials = 20

    process = AsynchronousRumorSpreading()
    rows: List[Dict] = []
    seeds = spawn_rngs(rng, 6)

    cases = [
        ("static clique", static_clique_network, 0.5, 1.0, None),
        ("static star", static_star_network, 1.0, 1.0, 1.0),
        ("static cycle", static_cycle_network, None, 1.0, 0.5),
        ("dynamic star (G2)", lambda n: DynamicStarNetwork(n - 1), 1.0, 1.0, 1.0),
        (
            "alternating 3-regular / complete",
            lambda n: alternating_regular_complete_network(n, rng=1),
            0.2,
            1.0,
            None,
        ),
    ]

    for case_index, (name, factory, phi, rho, abs_rho) in enumerate(cases):
        for n in sizes:
            if name == "alternating 3-regular / complete" and (3 * n) % 2 != 0:
                continue
            summary = run_trials(
                process.run,
                lambda n=n, factory=factory: factory(n),
                trials=trials,
                rng=seeds[case_index],
            )
            effective_phi = phi if phi is not None else 1.0 / (n // 2)
            bound_11 = constant_rate_theorem_1_1_bound(effective_phi, rho, n, c)
            effective_abs = abs_rho if abs_rho is not None else 1.0 / (n - 1)
            bound_13 = constant_rate_theorem_1_3_bound(effective_abs, n)
            bound = min(bound_11, bound_13)
            rows.append(
                {
                    "network": name,
                    "n": n,
                    "measured_whp": summary.whp_spread_time,
                    "measured_mean": summary.mean,
                    "bound_T11": bound_11,
                    "bound_Tabs": bound_13,
                    "bound_min": bound,
                    "within_bound": summary.whp_spread_time <= bound,
                }
            )

    # Edge-Markovian evolving graph at a size where exact metrics are feasible.
    markov_factory = lambda: EdgeMarkovianNetwork(
        markov_n, birth_probability=0.3, death_probability=0.3
    )
    summary = run_trials(process.run, markov_factory, trials=max(3, trials // 2), rng=seeds[5])
    bound_estimate = _bound_from_measured_sequence(markov_factory, markov_n, c, seeds[5])
    markov_tabs = constant_rate_theorem_1_3_bound(1.0 / (markov_n - 1), markov_n)
    rows.append(
        {
            "network": "edge-Markovian (p=q=0.3)",
            "n": markov_n,
            "measured_whp": summary.whp_spread_time,
            "measured_mean": summary.mean,
            "bound_T11": bound_estimate,
            "bound_Tabs": markov_tabs,
            "bound_min": min(bound_estimate, markov_tabs),
            "within_bound": summary.whp_spread_time <= min(bound_estimate, markov_tabs),
        }
    )

    passed = all(row["within_bound"] for row in rows)
    violations = sum(1 for row in rows if not row["within_bound"])
    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 1.1: spread time vs conductance-diligence bound T(G, c)",
        claim=(
            "With probability 1 - n^{-c} the asynchronous algorithm finishes by "
            "T(G, c) = min{t : sum_p Phi(G(p)) rho(G(p)) >= C log n}."
        ),
        rows=rows,
        derived={"violations": float(violations), "cases": float(len(rows))},
        passed=passed,
        notes=f"scale={scale}, trials per point={trials}, c={c}",
    )


__all__ = ["run", "constant_rate_theorem_1_1_bound", "constant_rate_theorem_1_3_bound"]
