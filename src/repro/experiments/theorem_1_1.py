"""Experiment E1 — Theorem 1.1 upper bound validation.

Claim: with probability ``1 − n^{-c}`` the asynchronous push–pull algorithm
finishes by ``T(G, c) = min{t : Σ_{p≤t} Φ(G(p)) ρ(G(p)) ≥ C log n}``.

The experiment runs the algorithm on a spread of dynamic networks — static
cliques/stars/cycles viewed as dynamic networks, the alternating regular /
complete sequence, an edge-Markovian evolving graph, and the dynamic star of
Figure 1(b) — and checks that the measured w.h.p. spread time never exceeds
the bound evaluated on the realised snapshot sequence (analytic per-step
metrics where available, measured metrics on small instances otherwise).

The workload is a declarative scenario table (one scenario per network case,
swept over ``n``) executed by the shared :class:`ExperimentPipeline`; the
bound wiring below maps each case's payload to its table row.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.bounds.theorems import (
    theorem_1_1_threshold,
    theorem_1_3_threshold,
)
from repro.checks import Check, evaluate_checks
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario, scenario_seed
from repro.utils.rng import RngLike
from repro.utils.validation import require


def constant_rate_theorem_1_1_bound(phi: float, rho: float, n: int, c: float = 1.0) -> float:
    """``T(G, c)`` when every snapshot contributes the same ``Φ·ρ`` budget."""
    require(phi > 0 and rho > 0, "phi and rho must be positive for a finite bound")
    return math.ceil(theorem_1_1_threshold(n, c) / (phi * rho))


def constant_rate_theorem_1_3_bound(abs_rho: float, n: int) -> float:
    """``T_abs(G)`` when every snapshot is connected with the same ``ρ̄``."""
    require(abs_rho > 0, "absolute diligence must be positive for a finite bound")
    return math.ceil(theorem_1_3_threshold(n) / abs_rho)


#: Per-case analytic bound parameters: label → (Φ, ρ, ρ̄); ``None`` marks a
#: size-dependent value filled in by :func:`_case_bounds`.
_CASE_BOUND_PARAMS = {
    "static clique": (0.5, 1.0, None),
    "static star": (1.0, 1.0, 1.0),
    "static cycle": (None, 1.0, 0.5),
    "dynamic star (G2)": (1.0, 1.0, 1.0),
    "alternating 3-regular / complete": (0.2, 1.0, None),
}

#: Scenario label of the edge-Markovian case (bounded by measurement instead).
_MARKOV_LABEL = "edge-Markovian (p=q=0.3)"

#: Scenario label of the sampled Theorem 1.1 bound for the edge-Markovian case.
_MARKOV_BOUND_LABEL = "edge-Markovian T(G, c) estimate"


def _case_bounds(label: str, n: int, c: float) -> Dict[str, float]:
    """Theorem 1.1 / 1.3 bounds for one analytic case at node count ``n``."""
    phi, rho, abs_rho = _CASE_BOUND_PARAMS[label]
    effective_phi = phi if phi is not None else 1.0 / (n // 2)
    effective_abs = abs_rho if abs_rho is not None else 1.0 / (n - 1)
    bound_11 = constant_rate_theorem_1_1_bound(effective_phi, rho, n, c)
    bound_13 = constant_rate_theorem_1_3_bound(effective_abs, n)
    return {"bound_T11": bound_11, "bound_Tabs": bound_13}


def scenarios(scale: str = "small", rng: RngLike = 2020, c: float = 1.0) -> List[Scenario]:
    """The declarative E1 scenario table (one scenario per network case)."""
    if scale == "small":
        sizes = [32, 64]
        markov_n = 12
        trials = 5
    else:
        sizes = [64, 128, 256, 512]
        markov_n = 14
        trials = 20

    cases = [
        ("static clique", "clique", {}, sizes),
        ("static star", "star", {}, sizes),
        ("static cycle", "cycle", {}, sizes),
        # The dynamic star with n-1 leaves has exactly n nodes.
        ("dynamic star (G2)", "dynamic-star", {}, [n - 1 for n in sizes]),
        (
            "alternating 3-regular / complete",
            "alternating-regular-complete",
            {"degree": 3},
            [n for n in sizes if (3 * n) % 2 == 0],
        ),
    ]
    table = [
        Scenario(
            label=label,
            network=family,
            params=params,
            sweep=tuple(sweep),
            trials=trials,
            seed=scenario_seed(rng, index),
        )
        for index, (label, family, params, sweep) in enumerate(cases)
    ]
    # Edge-Markovian evolving graph at a size where exact metrics are feasible;
    # its Theorem 1.1 budget has no closed form, so a companion scenario
    # estimates T(G, c) from exactly measured sampled snapshots.
    table.append(
        Scenario(
            label=_MARKOV_LABEL,
            network="edge-markovian",
            params={"birth": 0.3, "death": 0.3},
            sweep=(markov_n,),
            trials=max(3, trials // 2),
            seed=scenario_seed(rng, 5),
        )
    )
    table.append(
        Scenario(
            label=_MARKOV_BOUND_LABEL,
            kind="sequence_bound_estimate",
            network="edge-markovian",
            params={"birth": 0.3, "death": 0.3},
            sweep=(markov_n,),
            seed=scenario_seed(rng, 5),
            options={"c": c, "sample_steps": 20},
        )
    )
    return table


def checks(scale: str = "small") -> List[Check]:
    """The declarative E1 check table (the acceptance logic, as data)."""
    return [
        Check(
            label="whp spread time within min(T11, Tabs)",
            kind="upper_bound",
            column="measured_whp",
            against="bound_min",
        ),
    ]


def run(
    scale: str = "small",
    rng: RngLike = 2020,
    c: float = 1.0,
    pipeline: Optional[ExperimentPipeline] = None,
) -> ExperimentResult:
    """Run experiment E1 and return its :class:`ExperimentResult`."""
    pipeline = pipeline if pipeline is not None else ExperimentPipeline()
    results = pipeline.run(scenarios(scale, rng, c))

    markov_bound = {
        point.payload["n"]: point.payload["bound_estimate"]
        for point in results
        if point.label == _MARKOV_BOUND_LABEL
    }
    rows: List[Dict] = []
    for point in results:
        if point.label == _MARKOV_BOUND_LABEL:
            continue
        n = point.payload["n"]
        summary = point.payload["summary"]
        if point.label == _MARKOV_LABEL:
            bounds = {
                "bound_T11": markov_bound[n],
                "bound_Tabs": constant_rate_theorem_1_3_bound(1.0 / (n - 1), n),
            }
        else:
            bounds = _case_bounds(point.label, n, c)
        bound = min(bounds["bound_T11"], bounds["bound_Tabs"])
        rows.append(
            {
                "network": point.label,
                "n": n,
                "measured_whp": summary["whp"],
                "measured_mean": summary["mean"],
                "bound_T11": bounds["bound_T11"],
                "bound_Tabs": bounds["bound_Tabs"],
                "bound_min": bound,
                "within_bound": summary["whp"] <= bound,
            }
        )

    trials = max(1, results[0].scenario.trials) if results else 0
    check_report = evaluate_checks(checks(scale), rows=rows)
    violations = sum(1 for row in rows if not row["within_bound"])
    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 1.1: spread time vs conductance-diligence bound T(G, c)",
        claim=(
            "With probability 1 - n^{-c} the asynchronous algorithm finishes by "
            "T(G, c) = min{t : sum_p Phi(G(p)) rho(G(p)) >= C log n}."
        ),
        rows=rows,
        derived={"violations": float(violations), "cases": float(len(rows))},
        passed=check_report.passed,
        notes=f"scale={scale}, trials per point={trials}, c={c}",
        check_results=list(check_report.results),
    )


__all__ = [
    "checks",
    "run",
    "scenarios",
    "constant_rate_theorem_1_1_bound",
    "constant_rate_theorem_1_3_bound",
]
