"""Combined reporting across all experiments.

``build_report`` runs every distinct experiment once and renders a single
markdown document (claim, regenerated table, derived quantities and verdict
per experiment) — the programmatic way to regenerate the content summarised in
EXPERIMENTS.md.  It is exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.result import ExperimentResult
from repro.utils.validation import require


def distinct_experiment_ids() -> Sequence[str]:
    """Experiment ids with duplicates (shared runners, e.g. E5/E6) removed."""
    seen = set()
    ids = []
    for experiment_id, runner in EXPERIMENTS.items():
        if runner in seen:
            continue
        seen.add(runner)
        ids.append(experiment_id)
    return ids


def render_markdown(results: Dict[str, ExperimentResult]) -> str:
    """Render experiment results as one markdown document."""
    require(len(results) > 0, "no experiment results to render")
    lines = ["# Reproduction report", ""]
    passed = sum(1 for result in results.values() if result.passed)
    checked = sum(1 for result in results.values() if result.passed is not None)
    lines.append(f"Shape checks passed: **{passed} / {checked}**")
    lines.append("")
    for experiment_id in sorted(results):
        result = results[experiment_id]
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        lines.append(f"*Claim.* {result.claim}")
        lines.append("")
        lines.append("```")
        lines.append(result.table().rstrip())
        lines.append("```")
        if result.derived:
            lines.append("")
            derived = ", ".join(
                f"{key} = {value:.4g}" if isinstance(value, float) else f"{key} = {value}"
                for key, value in result.derived.items()
            )
            lines.append(f"*Derived:* {derived}")
        if result.passed is not None:
            lines.append("")
            lines.append(f"*Shape check:* {'PASS' if result.passed else 'FAIL'}")
        if result.notes:
            lines.append("")
            lines.append(f"*Notes:* {result.notes}")
        lines.append("")
    return "\n".join(lines) + "\n"


def build_report(
    scale: str = "small",
    experiment_ids: Optional[Sequence[str]] = None,
    rng_offset: int = 0,
) -> str:
    """Run the requested experiments (all by default) and render the report.

    ``rng_offset`` is added to each experiment's default seed path by passing
    it as the seed, so repeated report builds can be made independent.
    """
    ids = list(experiment_ids) if experiment_ids is not None else list(distinct_experiment_ids())
    require(len(ids) > 0, "no experiments requested")
    results: Dict[str, ExperimentResult] = {}
    for index, experiment_id in enumerate(ids):
        runner = EXPERIMENTS.get(experiment_id.upper())
        require(runner is not None, f"unknown experiment id {experiment_id!r}")
        kwargs = {"scale": scale}
        if rng_offset:
            kwargs["rng"] = 1000 * (index + 1) + rng_offset
        results[experiment_id.upper()] = runner(**kwargs)
    return render_markdown(results)


__all__ = ["build_report", "distinct_experiment_ids", "render_markdown"]
