"""Combined reporting across all experiments.

``build_report`` runs every distinct experiment once through the shared
pipeline and renders a single markdown document (claim, regenerated table,
derived quantities and verdict per experiment) — the programmatic way to
regenerate the content summarised in EXPERIMENTS.md.  ``build_results`` is
the structured variant used by the CLI's ``--json`` output.  Both are exposed
on the CLI as ``python -m repro report``.

Experiment ids are validated **up front** (before any experiment runs), so a
typo in ``--only`` fails immediately with the list of known ids instead of
deep inside a long run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.execution.report import ExecutionReport
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline
from repro.utils.validation import require


def distinct_experiment_ids() -> Sequence[str]:
    """Experiment ids with duplicates (shared runners, e.g. E5/E6) removed."""
    seen = set()
    ids = []
    for experiment_id, runner in EXPERIMENTS.items():
        if runner in seen:
            continue
        seen.add(runner)
        ids.append(experiment_id)
    return ids


def validate_experiment_ids(experiment_ids: Sequence[str]) -> List[str]:
    """Normalise, dedupe and validate ids, raising early with the known-ids message."""
    require(len(experiment_ids) > 0, "no experiments requested")
    normalised = list(dict.fromkeys(
        experiment_id.upper() for experiment_id in experiment_ids
    ))
    for experiment_id in normalised:
        get_experiment(experiment_id)  # raises "unknown experiment id ..." on a miss
    return normalised


def render_markdown(results: Dict[str, ExperimentResult]) -> str:
    """Render experiment results as one markdown document."""
    require(len(results) > 0, "no experiment results to render")
    lines = ["# Reproduction report", ""]
    passed = sum(1 for result in results.values() if result.passed)
    checked = sum(1 for result in results.values() if result.passed is not None)
    lines.append(f"Shape checks passed: **{passed} / {checked}**")
    lines.append("")
    for experiment_id in sorted(results):
        result = results[experiment_id]
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        lines.append(f"*Claim.* {result.claim}")
        lines.append("")
        lines.append("```")
        lines.append(result.table().rstrip())
        lines.append("```")
        if result.derived:
            lines.append("")
            derived = ", ".join(
                f"{key} = {value:.4g}" if isinstance(value, float) else f"{key} = {value}"
                for key, value in result.derived.items()
            )
            lines.append(f"*Derived:* {derived}")
        if result.passed is not None:
            lines.append("")
            lines.append(f"*Shape check:* {'PASS' if result.passed else 'FAIL'}")
        if result.notes:
            lines.append("")
            lines.append(f"*Notes:* {result.notes}")
        lines.append("")
    return "\n".join(lines) + "\n"


def failed_placeholder(
    experiment_id: str, error: BaseException, aborted: bool = False
) -> ExperimentResult:
    """A stand-in :class:`ExperimentResult` for an experiment that failed.

    Keeps the result dictionary total under ``keep_going`` — the combined
    report and the JSON documents render around the failure instead of
    losing the surviving experiments.
    """
    status = "aborted" if aborted else "failed"
    message = f"{type(error).__name__}: {error}" if not aborted else str(error)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"({status})",
        claim="(not evaluated — the experiment did not produce results)",
        rows=[{"status": status, "error": message}],
        passed=False,
        notes=f"{status}: {message}",
    )


def build_results(
    scale: str = "small",
    experiment_ids: Optional[Sequence[str]] = None,
    rng_offset: int = 0,
    pipeline: Optional[ExperimentPipeline] = None,
    keep_going: bool = False,
    max_failures: Optional[int] = None,
    failure_log: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, ExperimentResult]:
    """Run the requested experiments (all by default) and return the results.

    ``rng_offset`` is added to each experiment's default seed path by passing
    it as the seed, so repeated report builds can be made independent.

    With ``keep_going``, an experiment that raises is replaced by a failed
    placeholder result (``passed=False``) and the remaining experiments still
    run; each failure is appended to ``failure_log`` (when given) as
    ``{"experiment", "status", "error"}``.  ``max_failures`` bounds the
    tolerated failures — once exceeded, the remaining experiments are marked
    aborted without running.
    """
    ids = list(experiment_ids) if experiment_ids is not None else list(distinct_experiment_ids())
    ids = validate_experiment_ids(ids)
    results: Dict[str, ExperimentResult] = {}
    failures = 0
    aborted_from: Optional[int] = None
    for index, experiment_id in enumerate(ids):
        if aborted_from is not None:
            error = RuntimeError(
                f"aborted after {failures} failures (max_failures={max_failures})"
            )
            results[experiment_id] = failed_placeholder(experiment_id, error, aborted=True)
            if failure_log is not None:
                failure_log.append(
                    {"experiment": experiment_id, "status": "aborted", "error": str(error)}
                )
            continue
        runner = get_experiment(experiment_id)
        kwargs: Dict[str, Any] = {"scale": scale, "pipeline": pipeline}
        if rng_offset:
            kwargs["rng"] = 1000 * (index + 1) + rng_offset
        if not keep_going:
            results[experiment_id] = runner(**kwargs)
            continue
        try:
            results[experiment_id] = runner(**kwargs)
        except Exception as error:
            failures += 1
            results[experiment_id] = failed_placeholder(experiment_id, error)
            if failure_log is not None:
                failure_log.append(
                    {
                        "experiment": experiment_id,
                        "status": "failed",
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
            if max_failures is not None and failures > max_failures:
                aborted_from = index + 1
    return results


def results_as_dict(results: Dict[str, ExperimentResult]) -> Dict[str, Any]:
    """JSON-ready form of a result set (the ``report --json`` schema)."""
    checked = [result for result in results.values() if result.passed is not None]
    return {
        "passed": sum(1 for result in checked if result.passed),
        "checked": len(checked),
        "results": {
            experiment_id: result.as_dict() for experiment_id, result in results.items()
        },
    }


def build_report(
    scale: str = "small",
    experiment_ids: Optional[Sequence[str]] = None,
    rng_offset: int = 0,
    pipeline: Optional[ExperimentPipeline] = None,
) -> str:
    """Run the requested experiments and render the markdown report."""
    return render_markdown(
        build_results(
            scale=scale,
            experiment_ids=experiment_ids,
            rng_offset=rng_offset,
            pipeline=pipeline,
        )
    )


def all_passed(results: Dict[str, ExperimentResult]) -> bool:
    """True when no experiment failed its checks (descriptive ones count as ok)."""
    return all(result.passed in (True, None) for result in results.values())


def verification_as_dict(
    results: Dict[str, ExperimentResult],
    scale: Optional[str] = None,
    execution: Optional[ExecutionReport] = None,
) -> Dict[str, Any]:
    """JSON-ready verification document (the ``repro verify --json`` schema).

    Counts are **per check** (one experiment contributes one entry per row of
    its declarative check table), so the regression gate reports exactly
    which criterion moved, not just which experiment.  ``execution`` attaches
    the pipeline's :class:`repro.execution.ExecutionReport` counters.
    """
    experiments: Dict[str, Any] = {}
    passed = checked = 0
    for experiment_id in sorted(results):
        result = results[experiment_id]
        passed += sum(1 for check in result.check_results if check.passed)
        checked += len(result.check_results)
        experiments[experiment_id] = {
            "title": result.title,
            "passed": result.passed,
            "checks": [check.as_dict() for check in result.check_results],
        }
    document: Dict[str, Any] = {
        "passed": passed,
        "checked": checked,
        "all_passed": all_passed(results),
        "experiments": experiments,
    }
    if scale is not None:
        document["scale"] = scale
    if execution is not None:
        document["execution"] = execution.as_dict()
    return document


def render_verification(results: Dict[str, ExperimentResult]) -> str:
    """Plain-text verification report: one line per declarative check."""
    from repro.analysis.tables import format_table

    require(len(results) > 0, "no experiment results to render")
    rows: List[Dict[str, Any]] = []
    for experiment_id in sorted(results):
        result = results[experiment_id]
        for check in result.check_results:
            rows.append(
                {
                    "experiment": experiment_id,
                    "check": check.label,
                    "kind": check.kind,
                    "observed": "-" if check.observed is None else check.observed,
                    "margin": "-" if check.margin is None else check.margin,
                    "rows": check.rows,
                    "verdict": "PASS" if check.passed else "FAIL",
                }
            )
        if not result.check_results:
            rows.append(
                {
                    "experiment": experiment_id,
                    "check": "(no declarative checks)",
                    "kind": "-",
                    "observed": "-",
                    "margin": "-",
                    "rows": len(result.rows),
                    "verdict": "-",
                }
            )
    passed = sum(1 for row in rows if row["verdict"] == "PASS")
    checked = sum(1 for row in rows if row["verdict"] != "-")
    title = f"Verification: {passed} / {checked} checks passed"
    return format_table(rows, title=title)


__all__ = [
    "all_passed",
    "build_report",
    "build_results",
    "distinct_experiment_ids",
    "failed_placeholder",
    "render_markdown",
    "render_verification",
    "results_as_dict",
    "validate_experiment_ids",
    "verification_as_dict",
]
