"""Asynchronous gossip averaging on dynamic networks (Boyd et al. [5]).

Every node starts with a value; each node carries a rate-1 exponential clock
and, when it rings, contacts a uniformly random neighbour in the current
snapshot and the pair replaces both values with their average.  The global sum
is conserved, so the values converge to the initial mean; we track the decay
of the sum of squared deviations from the mean over time.

This is the application that originally motivated the asynchronous time model
(Section 1 of the paper cites [5] for introducing it), and it shares all the
dynamic-network plumbing with the rumor process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.dynamics.base import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_positive


@dataclass
class AveragingResult:
    """Outcome of a gossip-averaging run.

    Attributes
    ----------
    final_values:
        Node values at the end of the run.
    target_mean:
        The conserved mean of the initial values.
    variance_trace:
        ``(time, sum of squared deviations)`` samples taken at every contact.
    converged:
        True when the final deviation dropped below the requested tolerance.
    convergence_time:
        First time the deviation dropped below tolerance (``inf`` otherwise).
    contacts:
        Number of pairwise averaging contacts performed.
    """

    final_values: Dict[Hashable, float]
    target_mean: float
    variance_trace: List[Tuple[float, float]]
    converged: bool
    convergence_time: float
    contacts: int

    def final_deviation(self) -> float:
        """Sum of squared deviations from the target mean at the end of the run."""
        return sum((value - self.target_mean) ** 2 for value in self.final_values.values())


def run_gossip_averaging(
    network: DynamicNetwork,
    initial_values: Mapping[Hashable, float],
    max_time: float = 100.0,
    tolerance: float = 1e-3,
    rng: RngLike = None,
) -> AveragingResult:
    """Run asynchronous pairwise-averaging gossip until ``max_time``.

    Parameters
    ----------
    network:
        Dynamic network; it is reset at the start of the run.  The set of
        informed nodes handed to adaptive networks is always empty (averaging
        has no notion of "informed"), so adaptive constructions degrade to
        their initial snapshot — use oblivious networks for averaging studies.
    initial_values:
        Mapping node → starting value; must cover every node.
    tolerance:
        The run is declared converged when the sum of squared deviations from
        the mean drops below this value.
    """
    require(set(initial_values.keys()) == set(network.nodes), "initial_values must cover every node")
    require_positive(max_time, "max_time")
    require_positive(tolerance, "tolerance")
    gen = ensure_rng(rng)
    values: Dict[Hashable, float] = {node: float(value) for node, value in initial_values.items()}
    target_mean = sum(values.values()) / len(values)

    def deviation() -> float:
        return sum((value - target_mean) ** 2 for value in values.values())

    network.reset(gen)
    nodes = list(network.nodes)
    n = len(nodes)
    tau = 0.0
    step = 0
    graph = network.graph_for_step(step, frozenset())
    trace: List[Tuple[float, float]] = [(0.0, deviation())]
    contacts = 0
    convergence_time = math.inf
    if trace[0][1] < tolerance:
        convergence_time = 0.0

    while tau < max_time:
        wait = gen.exponential(1.0 / n)
        if tau + wait >= step + 1:
            tau = float(step + 1)
            if tau >= max_time:
                break
            step += 1
            graph = network.graph_for_step(step, frozenset())
            continue
        tau += wait
        caller = nodes[int(gen.integers(0, n))]
        neighbours = list(graph.neighbors(caller)) if caller in graph else []
        if not neighbours:
            continue
        callee = neighbours[int(gen.integers(0, len(neighbours)))]
        average = (values[caller] + values[callee]) / 2.0
        values[caller] = average
        values[callee] = average
        contacts += 1
        current = deviation()
        trace.append((tau, current))
        if current < tolerance and not math.isfinite(convergence_time):
            convergence_time = tau

    return AveragingResult(
        final_values=values,
        target_mean=target_mean,
        variance_trace=trace,
        converged=math.isfinite(convergence_time),
        convergence_time=convergence_time,
        contacts=contacts,
    )


__all__ = ["AveragingResult", "run_gossip_averaging"]
