"""Resource discovery by set-union gossip on dynamic networks.

Each node starts knowing one (or more) resource names; whenever two nodes are
in contact they merge their known sets.  "Every node knows every resource" is
reached no later than ``n`` independent single-rumor processes, and the
all-to-all exchange is the classical resource-discovery application of
epidemic protocols (Harchol-Balter et al. [18], cited in the paper's
introduction).

The implementation reuses the asynchronous contact model directly: rate-1
clocks, uniform random neighbour in the current snapshot, full set exchange on
contact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.dynamics.base import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_positive


@dataclass
class DiscoveryResult:
    """Outcome of a resource-discovery run.

    Attributes
    ----------
    knowledge:
        Final mapping node → frozenset of known resources.
    full_knowledge_time:
        First time every node knew every resource (``inf`` if not reached).
    completed:
        True when full knowledge was reached before the time limit.
    coverage_trace:
        ``(time, total known pairs)`` samples, one per informative contact.
    contacts:
        Number of contacts that transferred at least one new resource.
    """

    knowledge: Dict[Hashable, FrozenSet]
    full_knowledge_time: float
    completed: bool
    coverage_trace: List[Tuple[float, int]]
    contacts: int


def run_resource_discovery(
    network: DynamicNetwork,
    initial_resources: Optional[Mapping[Hashable, Set]] = None,
    max_time: Optional[float] = None,
    rng: RngLike = None,
) -> DiscoveryResult:
    """Run set-union gossip until every node knows every resource.

    Parameters
    ----------
    initial_resources:
        Mapping node → set of resources it starts with.  Defaults to every
        node holding a single resource named after itself.
    max_time:
        Simulation horizon; defaults to ``4 n² + 1000`` like the rumor
        simulators.
    """
    gen = ensure_rng(rng)
    nodes = list(network.nodes)
    n = len(nodes)
    if initial_resources is None:
        initial_resources = {node: {node} for node in nodes}
    require(
        set(initial_resources.keys()) == set(nodes),
        "initial_resources must cover every node",
    )
    limit = 4.0 * n * n + 1000.0 if max_time is None else max_time
    require_positive(limit, "max_time")

    knowledge: Dict[Hashable, Set] = {node: set(resources) for node, resources in initial_resources.items()}
    universe: Set = set()
    for resources in knowledge.values():
        universe |= resources
    target_pairs = n * len(universe)

    def total_pairs() -> int:
        return sum(len(resources) for resources in knowledge.values())

    def fully_known() -> bool:
        return total_pairs() == target_pairs

    network.reset(gen)
    tau = 0.0
    step = 0
    # Adaptive networks expect the informed set; we pass the set of nodes with
    # complete knowledge, a natural generalisation of "informed".
    def informed_set() -> frozenset:
        return frozenset(node for node, resources in knowledge.items() if len(resources) == len(universe))

    graph = network.graph_for_step(step, informed_set())
    trace: List[Tuple[float, int]] = [(0.0, total_pairs())]
    contacts = 0
    full_time = 0.0 if fully_known() else math.inf

    while not fully_known() and tau < limit:
        wait = gen.exponential(1.0 / n)
        if tau + wait >= step + 1:
            tau = float(step + 1)
            if tau >= limit:
                break
            step += 1
            graph = network.graph_for_step(step, informed_set())
            continue
        tau += wait
        caller = nodes[int(gen.integers(0, n))]
        neighbours = list(graph.neighbors(caller)) if caller in graph else []
        if not neighbours:
            continue
        callee = neighbours[int(gen.integers(0, len(neighbours)))]
        merged = knowledge[caller] | knowledge[callee]
        if len(merged) > len(knowledge[caller]) or len(merged) > len(knowledge[callee]):
            knowledge[caller] = set(merged)
            knowledge[callee] = set(merged)
            contacts += 1
            trace.append((tau, total_pairs()))
            if fully_known():
                full_time = tau

    completed = fully_known()
    return DiscoveryResult(
        knowledge={node: frozenset(resources) for node, resources in knowledge.items()},
        full_knowledge_time=full_time if completed else math.inf,
        completed=completed,
        coverage_trace=trace,
        contacts=contacts,
    )


__all__ = ["DiscoveryResult", "run_resource_discovery"]
