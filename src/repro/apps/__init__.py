"""Downstream applications of the asynchronous gossip machinery.

The paper's introduction motivates rumor spreading with its applications; two
of them are implemented on top of the same dynamic-network substrate so the
library is usable beyond the headline experiments:

* :mod:`repro.apps.averaging` — randomized gossip averaging (Boyd et al.),
  where contacted pairs average their values and the network converges to the
  global mean.
* :mod:`repro.apps.resource_discovery` — set-union gossip (resource
  discovery / name spreading), where contacted pairs merge their known
  resource sets.
"""

from repro.apps.averaging import AveragingResult, run_gossip_averaging
from repro.apps.resource_discovery import DiscoveryResult, run_resource_discovery

__all__ = [
    "AveragingResult",
    "run_gossip_averaging",
    "DiscoveryResult",
    "run_resource_discovery",
]
