"""Replayable, bounded event streams: the buffer behind the SSE feed.

Every run owns one :class:`EventStream`.  The executing worker appends
JSON-ready event dicts (engine observer events via
:class:`repro.api.StructuredObserver`, plus service lifecycle events); any
number of subscribers — late ones included — iterate the stream from the
start and then follow it live until the run closes it.

Semantics:

* every event is stamped with a monotonically increasing ``seq`` number
  (the SSE ``id:`` field), starting at 0;
* the buffer is bounded (``max_events``): once full, the *oldest* events are
  evicted and counted in :attr:`EventStream.dropped`, so a pathological run
  cannot grow service memory without bound.  Subscribers that fall behind
  (or arrive after eviction) resume from the oldest retained event — the
  ``seq`` gap tells them exactly what they missed;
* :meth:`EventStream.close` marks the stream complete; subscribers drain the
  remaining buffer and stop.  Emitting after close raises.

The stream is thread-safe: one writer (the run's worker thread) and any
number of reader threads (SSE request handlers) synchronise on a single
condition variable.
"""

from __future__ import annotations

import threading
from collections import deque
from itertools import islice
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.utils.validation import require

#: Default per-run buffer bound (events retained for replay).
DEFAULT_MAX_EVENTS = 10_000


class EventStream:
    """A bounded, closable, replayable buffer of JSON-ready event dicts."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        require(
            isinstance(max_events, int) and max_events >= 1,
            f"max_events must be a positive integer, got {max_events!r}",
        )
        self._max_events = max_events
        self._events: Deque[Dict[str, Any]] = deque()
        self._next_seq = 0
        self._dropped = 0
        self._closed = False
        self._cond = threading.Condition()

    # -- writer side ---------------------------------------------------------

    def emit(self, event: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp ``event`` with its ``seq`` and publish it; returns the stamped copy."""
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot emit on a closed EventStream")
            stamped = dict(event)
            stamped["seq"] = self._next_seq
            self._next_seq += 1
            self._events.append(stamped)
            if len(self._events) > self._max_events:
                self._events.popleft()
                self._dropped += 1
            self._cond.notify_all()
            return stamped

    def close(self) -> None:
        """Mark the stream complete; subscribers drain and stop (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- introspection -------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once the producing run has finished."""
        with self._cond:
            return self._closed

    @property
    def dropped(self) -> int:
        """Events evicted from the bounded buffer (lost to replay)."""
        with self._cond:
            return self._dropped

    def __len__(self) -> int:
        """Total events ever emitted (including evicted ones)."""
        with self._cond:
            return self._next_seq

    @property
    def first_retained(self) -> int:
        """The ``seq`` of the oldest event still available for replay."""
        with self._cond:
            return self._next_seq - len(self._events)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (a copy)."""
        with self._cond:
            return list(self._events)

    def wait_closed(self, timeout: Optional[float] = None) -> bool:
        """Block until the stream closes; True when it did within ``timeout``."""
        with self._cond:
            return self._cond.wait_for(lambda: self._closed, timeout=timeout)

    # -- reader side ---------------------------------------------------------

    def subscribe(
        self,
        start: int = 0,
        heartbeat: Optional[float] = None,
    ) -> Iterator[Optional[Dict[str, Any]]]:
        """Yield events from ``seq >= start`` (replay), then live, until closed.

        A late subscriber replays everything still retained, then follows the
        live tail; the iterator ends when the stream is closed *and* drained.
        With ``heartbeat`` set, ``None`` is yielded whenever that many seconds
        pass without an event — SSE handlers turn it into a keep-alive comment
        (and get a chance to notice a dead connection).
        """
        next_seq = max(0, int(start))
        while True:
            with self._cond:
                first = self._next_seq - len(self._events)
                if next_seq < first:
                    next_seq = first  # evicted: resume at the oldest retained
                timed_out = False
                while next_seq >= self._next_seq and not self._closed:
                    if not self._cond.wait(timeout=heartbeat):
                        timed_out = True
                        break
                if next_seq >= self._next_seq:
                    if self._closed and not timed_out:
                        return
                    batch: List[Dict[str, Any]] = []
                else:
                    first = self._next_seq - len(self._events)
                    next_seq = max(next_seq, first)
                    batch = list(islice(self._events, next_seq - first, None))
                    next_seq = self._next_seq
            if batch:
                for event in batch:
                    yield event
            else:
                yield None  # heartbeat tick


__all__ = ["DEFAULT_MAX_EVENTS", "EventStream"]
