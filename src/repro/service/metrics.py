"""Service-wide counters and their Prometheus text exposition.

:class:`ServiceMetrics` aggregates two layers of accounting:

* **service counters** — runs submitted/completed/failed, events
  emitted/dropped across all streams, HTTP requests served;
* **execution counters** — the sum of every finished run's
  :class:`repro.execution.ExecutionReport` (retries, timeouts, pool
  respawns, cache hits, ...), so the operational anomalies the executor
  already tracks per run become scrapeable fleet-wide totals.

:func:`render_prometheus` emits the standard text exposition format
(``# HELP`` / ``# TYPE`` preamble, ``name value`` samples, ``_total``
suffix on counters) that the ``GET /metrics`` endpoint serves.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple, Union

from repro.execution.report import ExecutionReport

#: Service counter names and their Prometheus HELP strings.
COUNTER_HELP: Dict[str, str] = {
    "runs_submitted": "Runs accepted via POST /runs.",
    "runs_completed": "Runs that finished with every point ok and all checks passed.",
    "runs_failed": "Runs that finished with an error, failed points or failed checks.",
    "events_emitted": "Events published across all run event streams.",
    "events_dropped": "Events evicted from bounded stream buffers (lost to replay).",
    "http_requests": "HTTP requests handled (any route, any status).",
    "artifacts_stored": "Artifacts accepted via PUT /artifacts/{key} (idempotent no-ops excluded).",
    "workers_registered": "Remote workers registered via POST /workers.",
    "leases_granted": "Point leases granted to remote workers via POST /leases.",
}

#: HELP strings for the aggregated ExecutionReport counters.
EXECUTION_HELP: Dict[str, str] = {
    "items": "Work items handed to the supervised executor (cache hits excluded).",
    "succeeded": "Items that produced a payload, possibly after retries.",
    "failures": "Items whose retry attempts were exhausted.",
    "retries": "Re-submissions scheduled after a failed or interrupted attempt.",
    "timeouts": "Per-item wall-clock deadline expiries.",
    "pool_respawns": "Broken or wedged worker pools torn down and respawned.",
    "serial_fallbacks": "Degradations to the in-process serial fallback.",
    "cache_hits": "Pipeline points served from the artifact store.",
    "cache_corruption": "Cached artifacts rejected on payload checksum mismatch.",
}

#: HELP strings for the point-in-time gauges.
GAUGE_HELP: Dict[str, str] = {
    "queue_depth": "Runs waiting in the worker queue.",
    "runs_running": "Runs currently executing.",
    "worker_threads": "Worker threads in the run-execution pool.",
    "leases_open": "Leaseable point tasks not yet terminal (coordinator mode).",
}


class ServiceMetrics:
    """Thread-safe counter store for one :class:`ExperimentService`."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTER_HELP}
        self._execution = ExecutionReport()

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named service counter."""
        with self._lock:
            if name not in self._counters:
                raise KeyError(f"unknown service counter {name!r}")
            self._counters[name] += amount

    def merge_execution(self, report: ExecutionReport) -> None:
        """Fold one run's :class:`ExecutionReport` into the service total."""
        with self._lock:
            self._execution.merge(report)

    def counters(self) -> Dict[str, int]:
        """A copy of the service counters."""
        with self._lock:
            return dict(self._counters)

    def execution(self) -> ExecutionReport:
        """A copy of the aggregated execution report."""
        with self._lock:
            return self._execution.copy()

    def as_dict(self) -> Dict[str, Union[int, Dict[str, int]]]:
        """JSON-ready snapshot: service counters plus the execution totals."""
        with self._lock:
            document: Dict[str, Union[int, Dict[str, int]]] = dict(self._counters)
            document["execution"] = self._execution.as_dict()
            return document


def render_prometheus(
    counters: Dict[str, int],
    execution: ExecutionReport,
    gauges: Dict[str, Union[int, float]],
) -> str:
    """Render the metrics as Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []

    def sample(name: str, help_text: str, kind: str, value: Union[int, float]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value}")

    ordered: List[Tuple[str, int]] = [
        (name, counters.get(name, 0)) for name in COUNTER_HELP
    ]
    for name, value in ordered:
        sample(f"repro_{name}_total", COUNTER_HELP[name], "counter", value)
    for name, help_text in EXECUTION_HELP.items():
        sample(
            f"repro_execution_{name}_total",
            help_text,
            "counter",
            getattr(execution, name),
        )
    for name, help_text in GAUGE_HELP.items():
        sample(f"repro_{name}", help_text, "gauge", gauges.get(name, 0))
    return "\n".join(lines) + "\n"


__all__ = [
    "COUNTER_HELP",
    "EXECUTION_HELP",
    "GAUGE_HELP",
    "ServiceMetrics",
    "render_prometheus",
]
