"""Point leases: the cross-machine shape of the supervisor's retry semantics.

A coordinator-mode service does not execute scenario points itself; it hands
them out as **leases** to remote workers (``repro worker``).  A lease is one
attempt at one point, bounded by a wall-clock TTL — exactly the shape of
:mod:`repro.execution.supervisor`'s per-item futures, lifted across the wire:

* acquiring a lease charges an **attempt** (the supervisor's per-item attempt
  counter), so a point whose attempts are exhausted goes terminal instead of
  cycling forever;
* a lease that outlives its TTL is **reclaimed**: the point returns to the
  pending pool for re-issue (the supervisor's broken-pool re-lease), counted
  as a timeout, *without* charging a second attempt for the same grant;
* a **stale** completion — the worker finished after its lease was reclaimed
  — is accepted as a completion when the point is still open (artifact writes
  are content-addressed and idempotent, so late results are never wrong) and
  ignored once the point is terminal.

Determinism note: lease *placement* carries no entropy.  Every point derives
its payload purely from the scenario seed policy, so which worker computes a
point — first grant, reclaimed re-issue, or stale overlap — cannot change a
result byte.  The registry only decides *whether* and *how often* a point is
attempted.

All state transitions synchronise on one condition variable; the coordinator
blocks in :meth:`LeaseRegistry.wait_run` while workers mutate tasks from HTTP
handler threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.utils.validation import require

#: Task lifecycle states.  ``pending`` and ``leased`` are open; the rest are
#: terminal at the task level (``completed`` may still be re-marked from a
#: stale lease, which is a no-op).
TASK_STATES = ("pending", "leased", "completed", "failed", "aborted")

#: States in which a task will receive no further leases.
TERMINAL_TASK_STATES = ("completed", "failed", "aborted")

#: Default seconds a lease may run before it is reclaimed.
DEFAULT_LEASE_TTL = 60.0

#: Default attempt budget per point (matches RetryPolicy.max_attempts).
DEFAULT_LEASE_ATTEMPTS = 3


@dataclass
class PointTask:
    """One leaseable scenario point of a coordinated run.

    ``spec`` is the wire form a worker needs to reconstruct the point exactly
    (the scenario's ``to_dict()`` plus the point's sweep value and index);
    ``key`` is the point's content-addressed cache key, so workers and the
    coordinator agree on where the artifact lives without re-deriving it.
    """

    run_id: str
    task_id: str
    spec: Dict[str, Any]
    key: str
    state: str = "pending"
    attempts: int = 0
    reclaims: int = 0
    error: Optional[str] = None
    worker: Optional[str] = None
    lease_id: Optional[str] = None
    lease_expires: Optional[float] = None
    completed_by: Optional[str] = None
    cached: bool = False

    @property
    def open(self) -> bool:
        return self.state not in TERMINAL_TASK_STATES

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready task status (the ``GET /leases`` listing entry)."""
        return {
            "run": self.run_id,
            "task": self.task_id,
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "reclaims": self.reclaims,
            "error": self.error,
            "worker": self.worker,
            "lease": self.lease_id,
            "completed_by": self.completed_by,
        }


@dataclass(frozen=True)
class Lease:
    """One granted attempt at one point, as handed to a worker."""

    lease_id: str
    worker: str
    task: PointTask = field(repr=False)
    attempt: int = 1
    ttl: float = DEFAULT_LEASE_TTL

    def as_dict(self) -> Dict[str, Any]:
        """The wire form of a grant (everything a worker needs to execute)."""
        return {
            "lease": self.lease_id,
            "worker": self.worker,
            "run": self.task.run_id,
            "task": self.task.task_id,
            "key": self.task.key,
            "attempt": self.attempt,
            "ttl": self.ttl,
            "point": self.task.spec,
        }


class LeaseRegistry:
    """Thread-safe pool of leaseable points with TTL reclamation.

    Parameters
    ----------
    ttl:
        Seconds a lease may run before an expiry sweep reclaims it.
    max_attempts:
        Attempt budget per point (grants, including reclaimed re-issues).
        Once exhausted, the point goes terminal ``failed``.
    clock:
        Monotonic time source (injectable for deterministic expiry tests).
    """

    def __init__(
        self,
        ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_LEASE_ATTEMPTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        require(ttl > 0, f"lease ttl must be positive, got {ttl!r}")
        require(isinstance(max_attempts, int) and max_attempts >= 1,
                f"max_attempts must be a positive integer, got {max_attempts!r}")
        self.ttl = float(ttl)
        self.max_attempts = max_attempts
        self._clock = clock
        self._cond = threading.Condition()
        self._tasks: Dict[str, PointTask] = {}
        self._order: List[str] = []
        self._workers: Dict[str, Dict[str, Any]] = {}
        # Every lease ever granted, so stale reports (reclaimed leases)
        # still resolve to their task.  Bounded by points × max_attempts.
        self._leases: Dict[str, PointTask] = {}
        self._task_counter = 0
        self._lease_counter = 0
        self._worker_counter = 0
        #: Reclamations performed (expired leases returned to the pool).
        self.reclaimed = 0

    # -- run side (coordinator) ---------------------------------------------

    def add_point(self, run_id: str, spec: Dict[str, Any], key: str) -> PointTask:
        """Enqueue one leaseable point for ``run_id``; returns its task."""
        with self._cond:
            self._task_counter += 1
            task = PointTask(
                run_id=run_id,
                task_id=f"task-{self._task_counter:06d}",
                spec=spec,
                key=key,
            )
            self._tasks[task.task_id] = task
            self._order.append(task.task_id)
            self._cond.notify_all()
            return task

    def run_tasks(self, run_id: str) -> List[PointTask]:
        """The run's tasks, in submission (= scenario point) order."""
        with self._cond:
            return [self._tasks[task_id] for task_id in self._order
                    if self._tasks[task_id].run_id == run_id]

    def run_finished(self, run_id: str) -> bool:
        with self._cond:
            return all(not task.open for task in self._tasks.values()
                       if task.run_id == run_id)

    def wait_run(self, run_id: str, timeout: Optional[float] = None,
                 poll: float = 0.25) -> bool:
        """Block until every task of ``run_id`` is terminal.

        Wakes at least every ``poll`` seconds to sweep expired leases, so a
        dead worker's points are re-issued even while no other worker is
        actively asking for leases.  Returns False on overall ``timeout``.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                self._reclaim_expired_locked()
                if all(not task.open for task in self._tasks.values()
                       if task.run_id == run_id):
                    return True
                if deadline is not None and self._clock() >= deadline:
                    return False
                wait = poll
                if deadline is not None:
                    wait = min(wait, max(0.0, deadline - self._clock()))
                self._cond.wait(timeout=wait)

    def abort_open(self, run_id: Optional[str] = None, error: str = "aborted") -> int:
        """Force every open task (of ``run_id``, or all runs) terminal."""
        with self._cond:
            aborted = 0
            for task in self._tasks.values():
                if task.open and (run_id is None or task.run_id == run_id):
                    task.state = "aborted"
                    task.error = error
                    aborted += 1
            if aborted:
                self._cond.notify_all()
            return aborted

    # -- worker side ---------------------------------------------------------

    def register_worker(self, name: Optional[str] = None) -> str:
        """Register a worker; returns its stable id."""
        with self._cond:
            self._worker_counter += 1
            worker_id = f"worker-{self._worker_counter:06d}"
            self._workers[worker_id] = {
                "id": worker_id,
                "name": name or worker_id,
                "registered_at": time.time(),
                "leases_granted": 0,
                "completions": 0,
            }
            return worker_id

    def workers(self) -> List[Dict[str, Any]]:
        """Registered workers (registration order)."""
        with self._cond:
            return [dict(entry) for entry in self._workers.values()]

    def acquire(self, worker: str, max_points: int = 1) -> List[Lease]:
        """Grant up to ``max_points`` leases to ``worker`` (oldest first).

        Sweeps expired leases first, so a reclaimed point is immediately
        re-issuable.  Each grant charges one attempt.
        """
        require(isinstance(max_points, int) and max_points >= 1,
                f"max_points must be a positive integer, got {max_points!r}")
        with self._cond:
            self._reclaim_expired_locked()
            grants: List[Lease] = []
            for task_id in self._order:
                if len(grants) >= max_points:
                    break
                task = self._tasks[task_id]
                if task.state != "pending":
                    continue
                self._lease_counter += 1
                lease_id = f"lease-{self._lease_counter:06d}"
                self._leases[lease_id] = task
                task.state = "leased"
                task.attempts += 1
                task.worker = worker
                task.lease_id = lease_id
                task.lease_expires = self._clock() + self.ttl
                if worker in self._workers:
                    self._workers[worker]["leases_granted"] += 1
                grants.append(Lease(
                    lease_id=lease_id, worker=worker, task=task,
                    attempt=task.attempts, ttl=self.ttl,
                ))
            return grants

    def open_work(self) -> bool:
        """True while any task could still receive (or holds) a lease."""
        with self._cond:
            return any(task.open for task in self._tasks.values())

    def open_count(self) -> int:
        """How many tasks are not yet terminal (a ``/metrics`` gauge)."""
        with self._cond:
            return sum(1 for task in self._tasks.values() if task.open)

    def complete(self, lease_id: str, worker: str,
                 cached: bool = False) -> Tuple[Optional[PointTask], bool]:
        """Record a successful attempt; returns ``(task, accepted)``.

        A completion is accepted while its point is open — even when the
        reporting lease was reclaimed (the artifact is content-addressed, so
        a late result is identical to a fresh one).  Completions against a
        terminal point are ignored; no path charges an extra attempt.
        """
        with self._cond:
            task = self._task_for_lease(lease_id)
            if task is None:
                return None, False
            if not task.open:
                return task, False
            task.state = "completed"
            task.error = None
            task.cached = bool(cached)
            task.completed_by = worker
            task.worker = None
            task.lease_id = None
            task.lease_expires = None
            if worker in self._workers:
                self._workers[worker]["completions"] += 1
            self._cond.notify_all()
            return task, True

    def fail(self, lease_id: str, worker: str, error: str) -> Tuple[Optional[PointTask], bool]:
        """Record a failed attempt; re-pends or exhausts the point's budget.

        The attempt was charged at grant time, so failing charges nothing
        extra.  Stale failures (reclaimed or terminal point) are ignored —
        the reclamation already handled the attempt.
        """
        with self._cond:
            task = self._task_for_lease(lease_id)
            if task is None or not task.open or task.lease_id != lease_id:
                return task, False
            task.worker = None
            task.lease_id = None
            task.lease_expires = None
            if task.attempts >= self.max_attempts:
                task.state = "failed"
                task.error = error
            else:
                task.state = "pending"
                task.error = error
            self._cond.notify_all()
            return task, True

    # -- expiry --------------------------------------------------------------

    def reclaim_expired(self) -> int:
        """Sweep expired leases back to the pool; returns how many."""
        with self._cond:
            return self._reclaim_expired_locked()

    def _reclaim_expired_locked(self) -> int:
        now = self._clock()
        reclaimed = 0
        for task in self._tasks.values():
            if task.state != "leased" or task.lease_expires is None:
                continue
            if now < task.lease_expires:
                continue
            error = (f"lease {task.lease_id} expired after {self.ttl:g}s "
                     f"on {task.worker}")
            task.worker = None
            task.lease_id = None
            task.lease_expires = None
            task.reclaims += 1
            # The expired grant's attempt is already charged; re-pending
            # does not charge another (the next grant will).
            if task.attempts >= self.max_attempts:
                task.state = "failed"
                task.error = f"{error}; attempt budget ({self.max_attempts}) exhausted"
            else:
                task.state = "pending"
                task.error = error
            reclaimed += 1
        if reclaimed:
            self.reclaimed += reclaimed
            self._cond.notify_all()
        return reclaimed

    def _task_for_lease(self, lease_id: str) -> Optional[PointTask]:
        return self._leases.get(lease_id)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready listing of every task (the ``GET /leases`` body)."""
        with self._cond:
            return {
                "ttl": self.ttl,
                "max_attempts": self.max_attempts,
                "reclaimed": self.reclaimed,
                "tasks": [self._tasks[task_id].as_dict() for task_id in self._order],
                "workers": [dict(entry) for entry in self._workers.values()],
            }


__all__ = [
    "DEFAULT_LEASE_ATTEMPTS",
    "DEFAULT_LEASE_TTL",
    "Lease",
    "LeaseRegistry",
    "PointTask",
    "TASK_STATES",
    "TERMINAL_TASK_STATES",
]
