"""The HTTP transport for :class:`repro.service.ExperimentService`.

A deliberately dependency-free adapter: ``http.server.ThreadingHTTPServer``
plus hand-rolled routing.  Every response body is strict RFC-8259 JSON
(via :func:`repro.utils.jsonio.dumps_strict`) except ``GET /metrics``
(Prometheus text format) and the Server-Sent-Events feed.

Routes
------

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
POST   ``/runs``                    submit a scenario batch → 202 + summary
GET    ``/runs``                    list all runs (oldest first)
GET    ``/runs/{id}``               one run's status + result document
GET    ``/runs/{id}/events``        live SSE feed (replays from the start;
                                    ``?from=N`` resumes at sequence ``N``)
GET    ``/artifacts``               keys stored in the artifact sink
GET    ``/artifacts/{key}``         one cached artifact by content hash;
                                    ``?raw=1`` serves the store-fidelity
                                    encoding (``Infinity``/``NaN`` literals)
PUT    ``/artifacts/{key}``         idempotent checksum-verified write
POST   ``/workers``                 register a remote worker (coordinator)
POST   ``/leases``                  request point leases (coordinator)
POST   ``/leases/{id}``             report a leased attempt's outcome
GET    ``/leases``                  every task's lease state (coordinator)
GET    ``/metrics``                 Prometheus text exposition
GET    ``/healthz``                 liveness probe
GET    ``/version``                 library version
====== ============================ ==========================================

The coordinator routes (``/workers``, ``/leases``) answer 409 unless the
service was started in coordinator mode (``repro serve --coordinator``).
Lease grants and raw artifacts are sent as Python-extended JSON (non-finite
floats as literals) because their consumers are ``repro`` processes that
need byte-level payload fidelity; everything else stays strict RFC 8259.

SSE framing: each event is ``id: <seq>`` / ``event: <kind>`` / ``data:
<json>`` and the stream ends when the run does; ``: keep-alive`` comment
lines flow during quiet periods so dead clients are detected.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import repro
from repro.service.app import ExperimentService, ServiceClosed, parse_scenarios
from repro.utils.jsonio import dumps_strict

#: Seconds of event silence between ``: keep-alive`` comments on an SSE feed.
SSE_HEARTBEAT_SECONDS = 15.0

#: Refuse request bodies beyond this size (a scenario batch is small).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: ExperimentService,
                 quiet: bool = True):
        super().__init__(address, RequestHandler)
        self.service = service
        self.quiet = quiet


def create_server(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind a server for ``service``; ``port=0`` picks an ephemeral port."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


class RequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the bound :class:`ExperimentService`."""

    # Keep-alive + Content-Length framing for JSON; SSE opts out per-response.
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    @property
    def service(self) -> ExperimentService:
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    # -- response helpers ----------------------------------------------------

    def _send_json(self, status: int, document: Any) -> None:
        body = dumps_strict(document, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json_raw(self, status: int, document: Any) -> None:
        """Python-extended JSON (``Infinity``/``NaN`` literals survive).

        The store-fidelity encoding for artifact payloads and lease grants:
        byte-compatible with what the sinks persist, parseable by any Python
        ``json.loads``.  Non-Python consumers should use the strict routes.
        """
        body = json.dumps(document, allow_nan=True, indent=2).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message, "status": status})

    # -- request plumbing ----------------------------------------------------

    def _read_body_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.service.metrics.increment("http_requests")
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"status": "ok"})
            elif parts == ["version"]:
                self._send_json(200, {"service": "repro", "version": repro.__version__})
            elif parts == ["metrics"]:
                self._send_text(
                    200, self.service.render_metrics(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts == ["runs"]:
                records = self.service.registry.list()
                self._send_json(200, {"runs": [record.summary() for record in records]})
            elif len(parts) == 2 and parts[0] == "runs":
                record = self.service.registry.get(parts[1])
                if record is None:
                    self._send_error_json(404, f"unknown run {parts[1]!r}")
                else:
                    self._send_json(200, record.detail())
            elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "events":
                record = self.service.registry.get(parts[1])
                if record is None:
                    self._send_error_json(404, f"unknown run {parts[1]!r}")
                else:
                    self._stream_events(record, url.query)
            elif parts == ["artifacts"]:
                self._send_json(200, {"keys": self.service.sink.keys()})
            elif len(parts) == 2 and parts[0] == "artifacts":
                artifact = self.service.sink.artifact(parts[1])
                if artifact is None:
                    self._send_error_json(404, f"unknown artifact {parts[1]!r}")
                elif parse_qs(url.query).get("raw", ["0"])[0] in ("1", "true"):
                    self._send_json_raw(200, artifact)
                else:
                    self._send_json(200, artifact)
            elif parts == ["leases"]:
                if self.service.leases is None:
                    self._send_error_json(409, "service is not in coordinator mode")
                else:
                    self._send_json(200, self.service.leases.as_dict())
            else:
                self._send_error_json(404, f"no such resource: {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.service.metrics.increment("http_requests")
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["runs"]:
                self._handle_submit()
            elif parts == ["workers"]:
                self._handle_register_worker()
            elif parts == ["leases"]:
                self._handle_acquire_leases()
            elif len(parts) == 2 and parts[0] == "leases":
                self._handle_report_lease(parts[1])
            else:
                self._send_error_json(404, f"no such resource: {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def _handle_submit(self) -> None:
        try:
            scenarios = parse_scenarios(self._read_body_json())
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        try:
            record = self.service.submit(scenarios)
        except ServiceClosed as error:
            self._send_error_json(503, str(error))
            return
        self._send_json(202, record.summary())

    # -- coordinator routes ----------------------------------------------------

    def _coordinator(self):
        """The lease registry, or None after answering 409."""
        registry = self.service.leases
        if registry is None:
            self._send_error_json(409, "service is not in coordinator mode")
        return registry

    def _handle_register_worker(self) -> None:
        registry = self._coordinator()
        if registry is None:
            return
        try:
            document = self._read_body_json()
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        name = document.get("name") if isinstance(document, dict) else None
        worker_id = registry.register_worker(name)
        self.service.metrics.increment("workers_registered")
        self._send_json(201, {"worker": worker_id})

    def _handle_acquire_leases(self) -> None:
        registry = self._coordinator()
        if registry is None:
            return
        try:
            document = self._read_body_json()
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        worker = document.get("worker") if isinstance(document, dict) else None
        if not isinstance(worker, str) or not worker:
            self._send_error_json(400, "'worker' (a registered worker id) is required")
            return
        max_points = document.get("max_points", 1)
        try:
            grants = registry.acquire(worker, max_points=max_points)
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        if grants:
            state = "granted"
            self.service.metrics.increment("leases_granted", len(grants))
        elif registry.open_work():
            state = "busy"  # open points exist but are leased elsewhere
        elif self.service.closed:
            state = "closed"  # shutting down and drained: workers can exit
        else:
            state = "idle"  # nothing to do right now; more runs may arrive
        # Raw encoding: lease specs carry scenario payloads that must
        # round-trip byte-exactly through the worker.
        self._send_json_raw(200, {
            "state": state,
            "leases": [grant.as_dict() for grant in grants],
        })

    def _handle_report_lease(self, lease_id: str) -> None:
        registry = self._coordinator()
        if registry is None:
            return
        try:
            document = self._read_body_json()
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        if not isinstance(document, dict):
            self._send_error_json(400, "lease report must be a JSON object")
            return
        worker = document.get("worker") or ""
        status = document.get("status")
        if status == "ok":
            task, accepted = registry.complete(
                lease_id, worker, cached=bool(document.get("cached", False))
            )
        elif status == "failed":
            error = str(document.get("error") or "worker reported failure")
            task, accepted = registry.fail(lease_id, worker, error)
        else:
            self._send_error_json(400, "'status' must be 'ok' or 'failed'")
            return
        if task is None:
            self._send_error_json(404, f"unknown lease {lease_id!r}")
            return
        self._send_json(200, {
            "task": task.task_id,
            "state": task.state,
            "accepted": accepted,
        })

    # -- artifact writes -------------------------------------------------------

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self.service.metrics.increment("http_requests")
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        if len(parts) != 2 or parts[0] != "artifacts":
            self._send_error_json(404, f"no such resource: {url.path}")
            return
        try:
            document = self._read_body_json()
            outcome = self.service.store_artifact(parts[1], document)
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        self._send_json(200 if outcome["existed"] else 201, outcome)

    def _method_not_allowed(self) -> None:
        self.service.metrics.increment("http_requests")
        self._send_error_json(405, f"method {self.command} not allowed")

    do_DELETE = _method_not_allowed
    do_PATCH = _method_not_allowed

    # -- SSE -----------------------------------------------------------------

    def _stream_events(self, record, query: str) -> None:
        start = 0
        params = parse_qs(query)
        if "from" in params:
            try:
                start = int(params["from"][0])
            except (TypeError, ValueError):
                self._send_error_json(400, "'from' must be an integer sequence number")
                return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        # No Content-Length: the body length is unknowable, so this response
        # must be the connection's last (HTTP/1.1 framing).
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            for event in record.stream.subscribe(start=start,
                                                 heartbeat=SSE_HEARTBEAT_SECONDS):
                if event is None:
                    self.wfile.write(b": keep-alive\n\n")
                else:
                    data = dumps_strict(event)
                    frame = (
                        f"id: {event['seq']}\n"
                        f"event: {event.get('kind', 'message')}\n"
                        f"data: {data}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # subscriber disconnected; the stream itself is unaffected


__all__ = [
    "MAX_BODY_BYTES",
    "RequestHandler",
    "SSE_HEARTBEAT_SECONDS",
    "ServiceHTTPServer",
    "create_server",
]
