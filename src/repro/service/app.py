"""The experiment service core: queue, worker pool, execution, accounting.

:class:`ExperimentService` is the transport-independent heart of ``repro
serve``.  It accepts Scenario batches (:func:`parse_scenarios` mirrors the
CLI's accepted JSON shapes), queues them, and executes each run on a small
pool of worker threads through the existing
:class:`repro.scenarios.ExperimentPipeline` — so queued runs get the same
supervised retry/timeout/chaos semantics, artifact caching and
:class:`repro.execution.ExecutionReport` accounting as ``repro scenarios
run``.  Runs execute with ``keep_going`` semantics by default: failed points
are recorded, not fatal.

While a run executes, a :class:`repro.api.StructuredObserver` forwards every
engine hook into the run's :class:`repro.service.events.EventStream`, where
SSE subscribers (and in-process tests) replay it.  Service lifecycle events
(``kind="state"``, ``kind="result"``) share the stream but use kinds disjoint
from the engine's, so consumers can split them without heuristics.

The HTTP layer (:mod:`repro.service.http`) is a thin adapter over this class;
everything here is directly usable — and tested — without sockets.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.observers import StructuredObserver
from repro.api.sinks import LocalDirSink, MemorySink, ResultSink, payload_checksum
from repro.checks import evaluate_checks
from repro.execution.chaos import ChaosMonkey
from repro.execution.policy import RetryPolicy
from repro.execution.report import ExecutionReport
from repro.scenarios.pipeline import ExperimentPipeline, PointResult, _normalise
from repro.scenarios.scenario import Scenario
from repro.service.events import DEFAULT_MAX_EVENTS, EventStream
from repro.service.leases import (
    DEFAULT_LEASE_ATTEMPTS,
    DEFAULT_LEASE_TTL,
    LeaseRegistry,
)
from repro.service.metrics import ServiceMetrics, render_prometheus
from repro.service.runs import RunRecord, RunRegistry
from repro.utils.validation import require


class ServiceClosed(RuntimeError):
    """Raised when a run is submitted to a service that is shutting down."""


def parse_scenarios(document: Any) -> List[Scenario]:
    """Parse a request body into scenarios (the CLI's accepted JSON shapes).

    Accepts a single scenario object, a list of scenario objects, or a
    ``{"scenarios": [...]}`` wrapper document.  Raises ``ValueError`` (with a
    client-presentable message) on anything else, including an empty batch.
    """
    if isinstance(document, dict) and "scenarios" in document:
        raw_scenarios = document["scenarios"]
    elif isinstance(document, dict):
        raw_scenarios = [document]
    else:
        raw_scenarios = document
    if not isinstance(raw_scenarios, list):
        raise ValueError(
            "expected a scenario object, a list of scenarios, "
            'or a {"scenarios": [...]} document'
        )
    try:
        scenarios = [Scenario.from_dict(raw) for raw in raw_scenarios]
    except (TypeError, ValueError, KeyError) as error:
        raise ValueError(f"invalid scenario: {error}") from error
    if not scenarios:
        raise ValueError("no scenarios in request")
    return scenarios


@dataclass
class ServiceConfig:
    """Tunables for an :class:`ExperimentService`.

    ``jobs`` is the per-run point parallelism handed to the pipeline; the
    default of 1 keeps point execution in the worker thread's process so the
    streaming observer sees live engine events (``jobs > 1`` still works, but
    engine hooks then fire inside forked workers, invisible to subscribers —
    only lifecycle and result events stream).  ``workers`` is how many runs
    execute concurrently.

    ``coordinator=True`` switches run execution to the distributed mode: the
    service computes nothing itself, it exposes each submitted run's missing
    points as TTL-bounded leases (:mod:`repro.service.leases`) for external
    ``repro worker`` processes, and assembles results from the shared sink.
    ``lease_ttl`` / ``lease_attempts`` bound each point's wall-clock grant
    and total attempt budget.
    """

    workers: int = 2
    jobs: int = 1
    sink: Optional[ResultSink] = None
    cache_dir: Union[None, str, Path] = None
    keep_going: bool = True
    max_failures: Optional[int] = None
    max_events: int = DEFAULT_MAX_EVENTS
    policy: Optional[RetryPolicy] = None
    chaos: Optional[ChaosMonkey] = None
    coordinator: bool = False
    lease_ttl: float = DEFAULT_LEASE_TTL
    lease_attempts: int = DEFAULT_LEASE_ATTEMPTS


@dataclass
class _QueueItem:
    record: RunRecord = field(repr=False)


class ExperimentService:
    """Queued execution of scenario runs with streaming and metrics.

    The service owns one shared artifact sink (``config.sink``, or a
    :class:`repro.api.LocalDirSink` when ``cache_dir`` is set, or an
    in-process :class:`repro.api.MemorySink` otherwise), so resubmitting an
    identical scenario is served from cache, and ``GET /artifacts/{key}``
    can retrieve any stored payload by content hash.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        require(
            isinstance(self.config.workers, int) and self.config.workers >= 1,
            f"workers must be a positive integer, got {self.config.workers!r}",
        )
        if self.config.sink is not None:
            require(self.config.cache_dir is None, "pass cache_dir or sink, not both")
            self.sink = self.config.sink
        elif self.config.cache_dir is not None:
            self.sink = LocalDirSink(self.config.cache_dir)
        else:
            self.sink = MemorySink()
        self.leases: Optional[LeaseRegistry] = None
        if self.config.coordinator:
            self.leases = LeaseRegistry(
                ttl=self.config.lease_ttl,
                max_attempts=self.config.lease_attempts,
            )
        self.registry = RunRegistry()
        self.metrics = ServiceMetrics()
        self._queue: "queue.Queue[Optional[_QueueItem]]" = queue.Queue()
        self._closed = False
        self._abort = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(self, scenarios: Union[Scenario, Sequence[Scenario]]) -> RunRecord:
        """Queue a run; returns its record immediately (202 semantics)."""
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        require(len(scenarios) > 0, "submit needs at least one scenario")
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down; not accepting runs")
            stream = EventStream(max_events=self.config.max_events)
            record = self.registry.create(scenarios, stream)
            self.metrics.increment("runs_submitted")
            self._emit(record, {"kind": "state", "run": record.id, "state": "queued"})
            self._queue.put(_QueueItem(record))
            return record

    def queue_depth(self) -> int:
        """Runs accepted but not yet picked up by a worker."""
        return self.registry.count_in_state("queued")

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                if self._abort:
                    self._finish_aborted(item.record)
                else:
                    self._execute(item.record)
            finally:
                self._queue.task_done()

    def _finish_aborted(self, record: RunRecord) -> None:
        error = "aborted: service shutdown before execution"
        record.mark_failed(error)
        self.metrics.increment("runs_failed")
        self._emit(
            record,
            {"kind": "state", "run": record.id, "state": "failed", "error": error},
        )
        record.stream.close()

    def _execute(self, record: RunRecord) -> None:
        record.mark_running()
        self._emit(record, {"kind": "state", "run": record.id, "state": "running"})
        report = ExecutionReport()
        error: Optional[str] = None
        result: Optional[Dict[str, Any]] = None
        try:
            if self.leases is not None:
                results = self._run_coordinated(record, report)
            else:
                pipeline = ExperimentPipeline(
                    jobs=self.config.jobs,
                    sink=self.sink,
                    keep_going=self.config.keep_going,
                    max_failures=self.config.max_failures,
                    policy=self.config.policy,
                    chaos=self.config.chaos,
                )
                observer = StructuredObserver(lambda event: self._emit(record, event))
                try:
                    results = pipeline.run(record.scenarios, observer=observer)
                finally:
                    # Partial counters still count when the run raises.
                    report.merge(pipeline.report)
            result = self._result_document(record, results, report)
            if not result["all_passed"]:
                failed = [
                    point["label"] for point in result["points"]
                    if point["status"] != "ok"
                ]
                if failed:
                    error = f"{len(failed)} point(s) failed: {', '.join(sorted(set(failed)))}"
                else:
                    error = "checks failed"
        except Exception as exc:  # noqa: BLE001 - runs must never kill a worker
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self.metrics.merge_execution(report)
        if error is None:
            record.mark_completed(result)
            self.metrics.increment("runs_completed")
            state = "completed"
        else:
            record.mark_failed(error, result)
            self.metrics.increment("runs_failed")
            state = "failed"
        if result is not None:
            self._emit(record, {"kind": "result", "run": record.id, "result": result})
        self._emit(
            record,
            {"kind": "state", "run": record.id, "state": state, "error": error},
        )
        record.stream.close()

    def _run_coordinated(
        self, record: RunRecord, report: ExecutionReport
    ) -> List[PointResult]:
        """Expose the run's missing points as leases and await the fleet.

        The coordinator resolves cache hits itself (a fully cached run needs
        no workers at all — that is the resume contract), enqueues every
        missing point in the lease registry, then blocks until each task is
        terminal — completed by some worker, failed on an exhausted attempt
        budget, or aborted by shutdown.  Payloads are read back from the
        shared sink, so the assembled results are bit-identical to what a
        single-machine pipeline run would return.
        """
        points = [point for scenario in record.scenarios for point in scenario.points()]
        entries = []  # (point, key, task | None, cached payload | None)
        corruption_before = getattr(self.sink, "corruption_detected", 0)
        for position, point in enumerate(points):
            key = point.cache_key()
            payload = self.sink.load(key, _normalise(point.spec()))
            if payload is not None:
                entries.append((point, key, None, payload))
                continue
            spec = {
                "scenario": point.scenario.to_dict(),
                "value": point.value,
                "index": point.index,
                # The point's position in the run: the chaos schedule index,
                # so REPRO_CHAOS on workers replays like the local supervisor.
                "chaos_index": position,
            }
            task = self.leases.add_point(record.id, spec, key)
            entries.append((point, key, task, None))
            self._emit(record, {
                "kind": "lease", "run": record.id, "task": task.task_id,
                "key": key, "state": "pending",
            })
        report.cache_hits += sum(1 for entry in entries if entry[2] is None)
        report.cache_corruption += (
            getattr(self.sink, "corruption_detected", 0) - corruption_before
        )

        while not self.leases.wait_run(record.id, timeout=0.5):
            if self._abort:
                self.leases.abort_open(record.id, error="aborted: service shutdown")

        results: List[PointResult] = []
        for point, key, task, payload in entries:
            if task is None:
                results.append(PointResult(
                    scenario=point.scenario, value=point.value, index=point.index,
                    key=key, payload=payload, cached=True,
                ))
                continue
            report.items += 1
            report.retries += max(0, task.attempts - 1)
            report.timeouts += task.reclaims
            if task.state == "completed":
                payload = self.sink.load(key, _normalise(point.spec()))
            if task.state == "completed" and payload is not None:
                report.succeeded += 1
                results.append(PointResult(
                    scenario=point.scenario, value=point.value, index=point.index,
                    key=key, payload=payload, cached=task.cached,
                    attempts=task.attempts,
                ))
            else:
                report.failures += 1
                if task.state == "completed":
                    status, error = "failed", (
                        "worker reported completion but the artifact is "
                        "missing from the shared sink"
                    )
                elif task.state == "aborted":
                    status, error = "aborted", task.error
                else:
                    status, error = "failed", task.error
                results.append(PointResult(
                    scenario=point.scenario, value=point.value, index=point.index,
                    key=key, payload=None, cached=False, status=status,
                    error=error, attempts=task.attempts,
                ))
            self._emit(record, {
                "kind": "lease", "run": record.id, "task": task.task_id,
                "key": key, "state": task.state, "attempts": task.attempts,
                "reclaims": task.reclaims, "worker": task.completed_by,
            })
        return results

    # -- artifacts (PUT /artifacts/{key}) -------------------------------------

    def store_artifact(self, key: str, document: Any) -> Dict[str, Any]:
        """Validate and store one artifact pushed by a remote worker.

        Writes are content-addressed and idempotent: a key that already
        exists is left untouched (two workers racing to store the same point
        carry the same canonical payload, so dropping the second write is
        lossless).  A ``checksum`` claim in the document is verified against
        the payload before anything is stored; a mismatch is rejected so a
        corrupted upload can never poison the shared store.
        """
        if not isinstance(document, dict):
            raise ValueError("artifact body must be a JSON object")
        spec = document.get("spec")
        payload = document.get("payload")
        kind = document.get("kind")
        if not isinstance(spec, dict) or not isinstance(payload, dict) \
                or not isinstance(kind, str):
            raise ValueError(
                "artifact document needs 'spec' (object), 'payload' (object) "
                "and 'kind' (string)"
            )
        checksum = document.get("checksum")
        actual = payload_checksum(payload)
        if checksum is not None and checksum != actual:
            raise ValueError(
                f"payload checksum mismatch: request claims {checksum}, "
                f"payload hashes to {actual}"
            )
        if self.sink.artifact(key) is not None:
            return {"key": key, "stored": False, "existed": True}
        self.sink.store(key, spec, kind, payload)
        self.metrics.increment("artifacts_stored")
        return {"key": key, "stored": True, "existed": False}

    def _result_document(
        self,
        record: RunRecord,
        results,
        report: ExecutionReport,
    ) -> Dict[str, Any]:
        """The run's JSON result: points, check reports, execution counters."""
        points = [
            {
                "label": point.label,
                "value": point.value,
                "index": point.index,
                "key": point.key,
                "cached": point.cached,
                "status": point.status,
                "error": point.error,
                "attempts": point.attempts,
                "checksum": (
                    payload_checksum(point.payload) if point.payload is not None else None
                ),
                "summary": (point.payload or {}).get("summary"),
            }
            for point in results
        ]
        checks: Dict[str, Any] = {}
        checks_passed = True
        for index, scenario in enumerate(record.scenarios):
            if not scenario.checks:
                continue
            scenario_points = [p for p in results if p.scenario is scenario]
            report = evaluate_checks(scenario.checks, scenario_points)
            key = scenario.label
            if key in checks:
                key = f"{scenario.label} #{index}"
            checks[key] = report.as_dict()
            checks_passed = checks_passed and report.passed
        all_ok = all(point["status"] == "ok" for point in points)
        return {
            "run": record.id,
            "points": points,
            "checks": checks,
            "all_passed": all_ok and checks_passed,
            "execution": report.as_dict(),
        }

    def _emit(self, record: RunRecord, event: Dict[str, Any]) -> None:
        dropped_before = record.stream.dropped
        record.stream.emit(event)
        self.metrics.increment("events_emitted")
        delta = record.stream.dropped - dropped_before
        if delta:
            self.metrics.increment("events_dropped", delta)

    # -- metrics -------------------------------------------------------------

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition format)."""
        gauges = {
            "queue_depth": self.queue_depth(),
            "runs_running": self.registry.count_in_state("running"),
            "worker_threads": len(self._workers),
            "leases_open": self.leases.open_count() if self.leases is not None else 0,
        }
        return render_prometheus(self.metrics.counters(), self.metrics.execution(), gauges)

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting runs and stop the workers.

        With ``drain=True`` (default) every already-queued run still executes
        before the workers exit; with ``drain=False`` queued runs are marked
        failed without executing.  Idempotent; safe to call from any thread.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            if not drain:
                self._abort = True
        if not drain and self.leases is not None:
            # Wake coordinated runs immediately instead of waiting for their
            # next abort poll; open leases go terminal "aborted".
            self.leases.abort_open(error="aborted: service shutdown")
        if not already_closed:
            # Sentinels queue FIFO behind every accepted run, so each worker
            # exits only after the backlog is handled (executed or aborted).
            for _ in self._workers:
                self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout)


__all__ = ["ExperimentService", "ServiceClosed", "ServiceConfig", "parse_scenarios"]
