"""The experiment service core: queue, worker pool, execution, accounting.

:class:`ExperimentService` is the transport-independent heart of ``repro
serve``.  It accepts Scenario batches (:func:`parse_scenarios` mirrors the
CLI's accepted JSON shapes), queues them, and executes each run on a small
pool of worker threads through the existing
:class:`repro.scenarios.ExperimentPipeline` — so queued runs get the same
supervised retry/timeout/chaos semantics, artifact caching and
:class:`repro.execution.ExecutionReport` accounting as ``repro scenarios
run``.  Runs execute with ``keep_going`` semantics by default: failed points
are recorded, not fatal.

While a run executes, a :class:`repro.api.StructuredObserver` forwards every
engine hook into the run's :class:`repro.service.events.EventStream`, where
SSE subscribers (and in-process tests) replay it.  Service lifecycle events
(``kind="state"``, ``kind="result"``) share the stream but use kinds disjoint
from the engine's, so consumers can split them without heuristics.

The HTTP layer (:mod:`repro.service.http`) is a thin adapter over this class;
everything here is directly usable — and tested — without sockets.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.observers import StructuredObserver
from repro.api.sinks import LocalDirSink, MemorySink, ResultSink, payload_checksum
from repro.checks import evaluate_checks
from repro.execution.chaos import ChaosMonkey
from repro.execution.policy import RetryPolicy
from repro.scenarios.pipeline import ExperimentPipeline
from repro.scenarios.scenario import Scenario
from repro.service.events import DEFAULT_MAX_EVENTS, EventStream
from repro.service.metrics import ServiceMetrics, render_prometheus
from repro.service.runs import RunRecord, RunRegistry
from repro.utils.validation import require


class ServiceClosed(RuntimeError):
    """Raised when a run is submitted to a service that is shutting down."""


def parse_scenarios(document: Any) -> List[Scenario]:
    """Parse a request body into scenarios (the CLI's accepted JSON shapes).

    Accepts a single scenario object, a list of scenario objects, or a
    ``{"scenarios": [...]}`` wrapper document.  Raises ``ValueError`` (with a
    client-presentable message) on anything else, including an empty batch.
    """
    if isinstance(document, dict) and "scenarios" in document:
        raw_scenarios = document["scenarios"]
    elif isinstance(document, dict):
        raw_scenarios = [document]
    else:
        raw_scenarios = document
    if not isinstance(raw_scenarios, list):
        raise ValueError(
            "expected a scenario object, a list of scenarios, "
            'or a {"scenarios": [...]} document'
        )
    try:
        scenarios = [Scenario.from_dict(raw) for raw in raw_scenarios]
    except (TypeError, ValueError, KeyError) as error:
        raise ValueError(f"invalid scenario: {error}") from error
    if not scenarios:
        raise ValueError("no scenarios in request")
    return scenarios


@dataclass
class ServiceConfig:
    """Tunables for an :class:`ExperimentService`.

    ``jobs`` is the per-run point parallelism handed to the pipeline; the
    default of 1 keeps point execution in the worker thread's process so the
    streaming observer sees live engine events (``jobs > 1`` still works, but
    engine hooks then fire inside forked workers, invisible to subscribers —
    only lifecycle and result events stream).  ``workers`` is how many runs
    execute concurrently.
    """

    workers: int = 2
    jobs: int = 1
    sink: Optional[ResultSink] = None
    cache_dir: Union[None, str, Path] = None
    keep_going: bool = True
    max_failures: Optional[int] = None
    max_events: int = DEFAULT_MAX_EVENTS
    policy: Optional[RetryPolicy] = None
    chaos: Optional[ChaosMonkey] = None


@dataclass
class _QueueItem:
    record: RunRecord = field(repr=False)


class ExperimentService:
    """Queued execution of scenario runs with streaming and metrics.

    The service owns one shared artifact sink (``config.sink``, or a
    :class:`repro.api.LocalDirSink` when ``cache_dir`` is set, or an
    in-process :class:`repro.api.MemorySink` otherwise), so resubmitting an
    identical scenario is served from cache, and ``GET /artifacts/{key}``
    can retrieve any stored payload by content hash.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        require(
            isinstance(self.config.workers, int) and self.config.workers >= 1,
            f"workers must be a positive integer, got {self.config.workers!r}",
        )
        if self.config.sink is not None:
            require(self.config.cache_dir is None, "pass cache_dir or sink, not both")
            self.sink = self.config.sink
        elif self.config.cache_dir is not None:
            self.sink = LocalDirSink(self.config.cache_dir)
        else:
            self.sink = MemorySink()
        self.registry = RunRegistry()
        self.metrics = ServiceMetrics()
        self._queue: "queue.Queue[Optional[_QueueItem]]" = queue.Queue()
        self._closed = False
        self._abort = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(self, scenarios: Union[Scenario, Sequence[Scenario]]) -> RunRecord:
        """Queue a run; returns its record immediately (202 semantics)."""
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        require(len(scenarios) > 0, "submit needs at least one scenario")
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down; not accepting runs")
            stream = EventStream(max_events=self.config.max_events)
            record = self.registry.create(scenarios, stream)
            self.metrics.increment("runs_submitted")
            self._emit(record, {"kind": "state", "run": record.id, "state": "queued"})
            self._queue.put(_QueueItem(record))
            return record

    def queue_depth(self) -> int:
        """Runs accepted but not yet picked up by a worker."""
        return self.registry.count_in_state("queued")

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                if self._abort:
                    self._finish_aborted(item.record)
                else:
                    self._execute(item.record)
            finally:
                self._queue.task_done()

    def _finish_aborted(self, record: RunRecord) -> None:
        error = "aborted: service shutdown before execution"
        record.mark_failed(error)
        self.metrics.increment("runs_failed")
        self._emit(
            record,
            {"kind": "state", "run": record.id, "state": "failed", "error": error},
        )
        record.stream.close()

    def _execute(self, record: RunRecord) -> None:
        record.mark_running()
        self._emit(record, {"kind": "state", "run": record.id, "state": "running"})
        pipeline = ExperimentPipeline(
            jobs=self.config.jobs,
            sink=self.sink,
            keep_going=self.config.keep_going,
            max_failures=self.config.max_failures,
            policy=self.config.policy,
            chaos=self.config.chaos,
        )
        observer = StructuredObserver(lambda event: self._emit(record, event))
        error: Optional[str] = None
        result: Optional[Dict[str, Any]] = None
        try:
            results = pipeline.run(record.scenarios, observer=observer)
            result = self._result_document(record, results, pipeline)
            if not result["all_passed"]:
                failed = [
                    point["label"] for point in result["points"]
                    if point["status"] != "ok"
                ]
                if failed:
                    error = f"{len(failed)} point(s) failed: {', '.join(sorted(set(failed)))}"
                else:
                    error = "checks failed"
        except Exception as exc:  # noqa: BLE001 - runs must never kill a worker
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self.metrics.merge_execution(pipeline.report)
        if error is None:
            record.mark_completed(result)
            self.metrics.increment("runs_completed")
            state = "completed"
        else:
            record.mark_failed(error, result)
            self.metrics.increment("runs_failed")
            state = "failed"
        if result is not None:
            self._emit(record, {"kind": "result", "run": record.id, "result": result})
        self._emit(
            record,
            {"kind": "state", "run": record.id, "state": state, "error": error},
        )
        record.stream.close()

    def _result_document(
        self,
        record: RunRecord,
        results,
        pipeline: ExperimentPipeline,
    ) -> Dict[str, Any]:
        """The run's JSON result: points, check reports, execution counters."""
        points = [
            {
                "label": point.label,
                "value": point.value,
                "index": point.index,
                "key": point.key,
                "cached": point.cached,
                "status": point.status,
                "error": point.error,
                "attempts": point.attempts,
                "checksum": (
                    payload_checksum(point.payload) if point.payload is not None else None
                ),
                "summary": (point.payload or {}).get("summary"),
            }
            for point in results
        ]
        checks: Dict[str, Any] = {}
        checks_passed = True
        for index, scenario in enumerate(record.scenarios):
            if not scenario.checks:
                continue
            scenario_points = [p for p in results if p.scenario is scenario]
            report = evaluate_checks(scenario.checks, scenario_points)
            key = scenario.label
            if key in checks:
                key = f"{scenario.label} #{index}"
            checks[key] = report.as_dict()
            checks_passed = checks_passed and report.passed
        all_ok = all(point["status"] == "ok" for point in points)
        return {
            "run": record.id,
            "points": points,
            "checks": checks,
            "all_passed": all_ok and checks_passed,
            "execution": pipeline.report.as_dict(),
        }

    def _emit(self, record: RunRecord, event: Dict[str, Any]) -> None:
        dropped_before = record.stream.dropped
        record.stream.emit(event)
        self.metrics.increment("events_emitted")
        delta = record.stream.dropped - dropped_before
        if delta:
            self.metrics.increment("events_dropped", delta)

    # -- metrics -------------------------------------------------------------

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition format)."""
        gauges = {
            "queue_depth": self.queue_depth(),
            "runs_running": self.registry.count_in_state("running"),
            "worker_threads": len(self._workers),
        }
        return render_prometheus(self.metrics.counters(), self.metrics.execution(), gauges)

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting runs and stop the workers.

        With ``drain=True`` (default) every already-queued run still executes
        before the workers exit; with ``drain=False`` queued runs are marked
        failed without executing.  Idempotent; safe to call from any thread.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            if not drain:
                self._abort = True
        if not already_closed:
            # Sentinels queue FIFO behind every accepted run, so each worker
            # exits only after the backlog is handled (executed or aborted).
            for _ in self._workers:
                self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout)


__all__ = ["ExperimentService", "ServiceClosed", "ServiceConfig", "parse_scenarios"]
