"""Run bookkeeping: records, lifecycle states, and the thread-safe registry.

A *run* is one submitted batch of scenarios travelling through the service:

    queued ──▶ running ──▶ completed
                      └──▶ failed

Each :class:`RunRecord` owns the run's :class:`repro.service.events.EventStream`
(the SSE feed) and, once finished, the JSON result document.  The
:class:`RunRegistry` hands out stable ids (``run-000001``, ...) and answers
the ``GET /runs`` listing; both are safe to touch from HTTP handler threads
and worker threads concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.scenarios.scenario import Scenario
from repro.service.events import EventStream

#: The legal lifecycle states, in order of appearance.
RUN_STATES = ("queued", "running", "completed", "failed")

#: States in which a run will make no further progress.
TERMINAL_STATES = ("completed", "failed")


class RunRecord:
    """One submitted run: scenarios, lifecycle state, event stream, result."""

    def __init__(
        self,
        run_id: str,
        scenarios: Sequence[Scenario],
        stream: EventStream,
    ):
        self.id = run_id
        self.scenarios = list(scenarios)
        self.stream = stream
        self._lock = threading.Lock()
        self._state = "queued"
        self._error: Optional[str] = None
        self._result: Optional[Dict[str, Any]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- state transitions (called by the owning worker) ---------------------

    def mark_running(self) -> None:
        with self._lock:
            self._state = "running"
            self.started_at = time.time()

    def mark_completed(self, result: Dict[str, Any]) -> None:
        with self._lock:
            self._state = "completed"
            self._result = result
            self.finished_at = time.time()

    def mark_failed(self, error: str, result: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self._state = "failed"
            self._error = error
            self._result = result
            self.finished_at = time.time()

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def error(self) -> Optional[str]:
        with self._lock:
            return self._error

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._result

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run reaches a terminal state (stream closed)."""
        return self.stream.wait_closed(timeout=timeout)

    def summary(self) -> Dict[str, Any]:
        """The ``GET /runs`` listing entry."""
        with self._lock:
            return {
                "id": self.id,
                "state": self._state,
                "scenarios": [scenario.label for scenario in self.scenarios],
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self._error,
                "events": len(self.stream),
            }

    def detail(self) -> Dict[str, Any]:
        """The ``GET /runs/{id}`` document: summary plus the result payload."""
        document = self.summary()
        with self._lock:
            document["result"] = self._result
        document["events_dropped"] = self.stream.dropped
        return document


class RunRegistry:
    """Thread-safe, insertion-ordered store of every run the service has seen."""

    def __init__(self):
        self._lock = threading.Lock()
        self._runs: Dict[str, RunRecord] = {}
        self._counter = 0

    def create(self, scenarios: Sequence[Scenario], stream: EventStream) -> RunRecord:
        with self._lock:
            self._counter += 1
            run_id = f"run-{self._counter:06d}"
            record = RunRecord(run_id, scenarios, stream)
            self._runs[run_id] = record
            return record

    def get(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            return self._runs.get(run_id)

    def list(self) -> List[RunRecord]:
        """All runs, oldest first."""
        with self._lock:
            return list(self._runs.values())

    def count_in_state(self, state: str) -> int:
        with self._lock:
            return sum(1 for record in self._runs.values() if record.state == state)

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)


__all__ = ["RUN_STATES", "RunRecord", "RunRegistry", "TERMINAL_STATES"]
