"""``repro.service`` — the experiment service behind ``repro serve``.

A stdlib-only HTTP service that queues scenario runs, executes them through
the supervised :class:`repro.scenarios.ExperimentPipeline`, streams live
engine events over Server-Sent-Events, serves cached artifacts by content
hash, and exposes Prometheus metrics.  Layers:

* :mod:`repro.service.events` — bounded, replayable per-run event streams;
* :mod:`repro.service.runs` — run records, lifecycle states, the registry;
* :mod:`repro.service.metrics` — service counters + Prometheus rendering;
* :mod:`repro.service.leases` — TTL-bounded point leases for the distributed
  coordinator mode (``repro serve --coordinator`` + ``repro worker``);
* :mod:`repro.service.app` — :class:`ExperimentService`: queue, worker pool,
  execution, result documents (transport-independent, fully testable);
* :mod:`repro.service.http` — the ``http.server`` adapter and SSE framing.

In-process quickstart (no sockets)::

    from repro.service import ExperimentService, ServiceConfig

    service = ExperimentService(ServiceConfig(workers=1))
    record = service.submit(scenarios)
    record.wait(timeout=60)
    print(record.state, record.result["all_passed"])
    service.shutdown()

Over HTTP, ``repro serve`` (or :func:`create_server`) exposes the same
service on a port — see the README's "Experiment service" section.
"""

from repro.service.app import (
    ExperimentService,
    ServiceClosed,
    ServiceConfig,
    parse_scenarios,
)
from repro.service.events import DEFAULT_MAX_EVENTS, EventStream
from repro.service.http import ServiceHTTPServer, create_server
from repro.service.leases import (
    DEFAULT_LEASE_ATTEMPTS,
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseRegistry,
    PointTask,
)
from repro.service.metrics import ServiceMetrics, render_prometheus
from repro.service.runs import RUN_STATES, RunRecord, RunRegistry, TERMINAL_STATES

__all__ = [
    "DEFAULT_LEASE_ATTEMPTS",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_EVENTS",
    "EventStream",
    "ExperimentService",
    "Lease",
    "LeaseRegistry",
    "PointTask",
    "RUN_STATES",
    "RunRecord",
    "RunRegistry",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "TERMINAL_STATES",
    "create_server",
    "parse_scenarios",
    "render_prometheus",
]
