"""Command-line interface for the reproduction.

Three subcommands:

``python -m repro list``
    List the available experiments (E1..E9) with their titles.

``python -m repro experiment E2 --scale small``
    Run one experiment and print its full report (claim, regenerated table,
    derived quantities, shape-check verdict).

``python -m repro simulate --network clique --n 100 --trials 10``
    Run the asynchronous (or synchronous) algorithm on one of the built-in
    dynamic networks and print spread-time statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.tables import format_table
from repro.analysis.trials import run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading
from repro.core.variants import Variant
from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.dynamics.base import DynamicNetwork
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.diligent import DiligentDynamicNetwork
from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.dynamics.mobile_agents import MobileAgentsNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, random_regular_expander, star


def _network_factories(args: argparse.Namespace) -> Dict[str, Callable[[], DynamicNetwork]]:
    """Built-in network constructors keyed by the ``--network`` choice."""
    n = args.n
    rho = args.rho
    return {
        "clique": lambda: StaticDynamicNetwork(clique(range(n))),
        "star": lambda: StaticDynamicNetwork(star(0, range(1, n))),
        "cycle": lambda: StaticDynamicNetwork(cycle(range(n))),
        "expander": lambda: StaticDynamicNetwork(
            random_regular_expander(4, range(n), rng=args.seed)
        ),
        "dynamic-star": lambda: DynamicStarNetwork(n),
        "clique-bridge": lambda: CliqueBridgeNetwork(n),
        "diligent": lambda: DiligentDynamicNetwork(n, rho, rng=args.seed),
        "absolute-diligent": lambda: AbsolutelyDiligentNetwork(n, rho, rng=args.seed),
        "edge-markovian": lambda: EdgeMarkovianNetwork(n, args.birth, args.death, rng=args.seed),
        "mobile-agents": lambda: MobileAgentsNetwork(n, side=args.side, radius=1, rng=args.seed),
    }


NETWORK_CHOICES = (
    "clique",
    "star",
    "cycle",
    "expander",
    "dynamic-star",
    "clique-bridge",
    "diligent",
    "absolute-diligent",
    "edge-markovian",
    "mobile-agents",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tight Analysis of Asynchronous Rumor Spreading "
        "in Dynamic Networks' (Pourmiri & Mans, PODC 2020)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    experiment_parser = subparsers.add_parser("experiment", help="run one experiment (E1..E9)")
    experiment_parser.add_argument("experiment_id", help="experiment id, e.g. E2")
    experiment_parser.add_argument("--scale", choices=("small", "full"), default="small")
    experiment_parser.add_argument("--seed", type=int, default=None)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the rumor spreading algorithm on a built-in network"
    )
    simulate_parser.add_argument("--network", choices=NETWORK_CHOICES, default="clique")
    simulate_parser.add_argument("--n", type=int, default=100, help="number of nodes")
    simulate_parser.add_argument("--rho", type=float, default=0.25, help="diligence parameter")
    simulate_parser.add_argument("--birth", type=float, default=0.3, help="edge birth probability")
    simulate_parser.add_argument("--death", type=float, default=0.3, help="edge death probability")
    simulate_parser.add_argument("--side", type=int, default=10, help="grid side (mobile agents)")
    simulate_parser.add_argument("--trials", type=int, default=10)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.add_argument(
        "--algorithm", choices=("async", "sync"), default="async",
        help="asynchronous (continuous time) or synchronous (rounds)",
    )
    simulate_parser.add_argument(
        "--variant", choices=[variant.value for variant in Variant], default="push-pull",
        help="contact variant for the asynchronous algorithm",
    )
    simulate_parser.add_argument(
        "--engine", choices=("boundary", "naive"), default="boundary",
        help="asynchronous engine: exact cut-race (boundary) or clock-tick reference (naive)",
    )
    simulate_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the trial runner (1 = serial)",
    )

    report_parser = subparsers.add_parser(
        "report", help="run every experiment and print a combined markdown report"
    )
    report_parser.add_argument("--scale", choices=("small", "full"), default="small")
    report_parser.add_argument(
        "--only", nargs="+", default=None, metavar="ID", help="restrict to specific experiment ids"
    )
    return parser


def _command_list(out) -> int:
    from repro.experiments.registry import EXPERIMENTS

    rows = []
    for experiment_id, runner in EXPERIMENTS.items():
        module = sys.modules[runner.__module__]
        title = (module.__doc__ or "").strip().splitlines()[0].rstrip(".")
        rows.append({"id": experiment_id, "module": runner.__module__, "title": title})
    print(format_table(rows, title="Available experiments (see DESIGN.md section 4)"), file=out)
    return 0


def _command_experiment(args, out) -> int:
    from repro.experiments.registry import run_experiment

    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["rng"] = args.seed
    result = run_experiment(args.experiment_id.upper(), **kwargs)
    print(result.report(), file=out)
    return 0 if result.passed in (True, None) else 1


def _command_simulate(args, out) -> int:
    factories = _network_factories(args)
    factory = factories[args.network]
    if args.algorithm == "sync":
        runner = SynchronousRumorSpreading().run
    else:
        runner = AsynchronousRumorSpreading(
            variant=Variant(args.variant), engine=args.engine
        ).run
    summary = run_trials(
        runner, factory, trials=args.trials, rng=args.seed, workers=args.workers
    )
    probe = factory()
    rows = [dict({"network": args.network, "nodes": probe.n}, **summary.as_dict())]
    unit = "rounds" if args.algorithm == "sync" else "time"
    print(
        format_table(rows, title=f"{args.algorithm} spread {unit} over {args.trials} trials"),
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = sys.stdout if out is None else out
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list(out)
    if args.command == "experiment":
        return _command_experiment(args, out)
    if args.command == "simulate":
        return _command_simulate(args, out)
    if args.command == "report":
        from repro.experiments.reporting import build_report

        print(build_report(scale=args.scale, experiment_ids=args.only), file=out)
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


__all__ = ["build_parser", "main", "NETWORK_CHOICES"]
