"""Command-line interface for the reproduction.

Subcommands:

``python -m repro list``
    List the available experiments (E1..E9) with their titles.

``python -m repro experiment E2 --scale small [--jobs 4] [--json]``
    Run one experiment through the scenario pipeline and print its report
    (claim, regenerated table, derived quantities, shape-check verdict) or a
    JSON document.  Point payloads are cached as JSON artifacts (under
    ``.repro-cache`` by default) so re-runs resume instead of recomputing.

``python -m repro simulate --network clique --n 100 --trials 10``
    Run the asynchronous (or synchronous) algorithm on one of the registered
    network families and print spread-time statistics.  Flags that do not
    apply to the chosen algorithm or family are rejected.

``python -m repro report [--only E1 E2] [--jobs 4] [--json]``
    Run every experiment and print a combined markdown (or JSON) report.
    Experiment ids are validated before anything runs.  Exits non-zero when
    any experiment fails its checks, so CI can gate on the exit code.

``python -m repro verify [--scale small] [--only E1] [--json]``
    Run every experiment's declarative check table through the shared
    pipeline (same cache as ``report``) and print one line per check —
    observed value, margin against the bound, verdict.  Exits non-zero when
    any check fails: the regression gate.

``python -m repro scenarios list`` / ``python -m repro scenarios run FILE``
    Inspect the network registry and per-experiment scenario tables, or
    execute a scenario file (a JSON scenario object, list, or
    ``{"scenarios": [...]}`` document) through the pipeline.

``python -m repro serve [--coordinator]`` / ``python -m repro worker``
    Run the HTTP experiment service — optionally as a distributed
    coordinator handing out point leases — and the worker loop that
    executes leased points against it.  Every pipeline command accepts
    ``--sink URL`` (``file://``, ``memory://``, ``http://host:port``) to
    choose the artifact store; ``http://`` shares a running service's store
    across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro import api
from repro.analysis.tables import format_table
from repro.core.variants import Variant
from repro.execution import chaos_from_env
from repro.scenarios import (
    ExperimentPipeline,
    Scenario,
    default_cache_dir,
    failed_points,
    get_network_family,
    network_families,
)
from repro.utils.jsonio import finite_json

#: Network families offered by ``simulate`` (the whole registry).
NETWORK_CHOICES = network_families()

#: simulate flags that map to network-family parameters.
_NETWORK_PARAM_FLAGS = (
    ("--rho", "rho"),
    ("--birth", "birth"),
    ("--death", "death"),
    ("--side", "side"),
    ("--p", "p"),
    ("--degree", "degree"),
)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tight Analysis of Asynchronous Rumor Spreading "
        "in Dynamic Networks' (Pourmiri & Mans, PODC 2020)",
        # Abbreviated flags would bypass the explicit-flag validation of
        # `simulate` (e.g. `--varia` expanding to --variant unseen).
        allow_abbrev=False,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments", allow_abbrev=False)

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
        return value

    def add_pipeline_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--jobs", type=positive_int, default=1,
            help="worker processes for scenario-point parallelism (1 = serial)",
        )
        sub.add_argument(
            "--sink", default=None, metavar="URL",
            help="artifact store URL: file://DIR (or a plain directory path), "
            "memory://, null://, or http://HOST:PORT for the shared store of "
            f"a running 'repro serve' (default: {default_cache_dir()!r})",
        )
        sub.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="deprecated alias for --sink file://DIR",
        )
        sub.add_argument(
            "--no-cache", action="store_true",
            help="disable the JSON artifact cache for this run",
        )
        sub.add_argument(
            "--keep-going", action="store_true",
            help="finish the run around failures instead of aborting on the "
            "first one (failed units are reported and the exit code is "
            "non-zero)",
        )
        sub.add_argument(
            "--max-failures", type=int, default=None, metavar="N",
            help="with --keep-going (implied), abort once more than N "
            "failures accumulated",
        )

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one experiment (E1..E9)", allow_abbrev=False
    )
    experiment_parser.add_argument("experiment_id", help="experiment id, e.g. E2")
    experiment_parser.add_argument("--scale", choices=("small", "full"), default="small")
    experiment_parser.add_argument("--seed", type=int, default=None)
    experiment_parser.add_argument(
        "--json", action="store_true", help="emit the result as JSON instead of text"
    )
    add_pipeline_flags(experiment_parser)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the rumor spreading algorithm on a registered network",
        allow_abbrev=False,
    )
    simulate_parser.add_argument("--network", choices=NETWORK_CHOICES, default="clique")
    simulate_parser.add_argument("--n", type=int, default=100, help="number of nodes")
    simulate_parser.add_argument("--rho", type=float, default=0.25, help="diligence parameter")
    simulate_parser.add_argument("--birth", type=float, default=0.3, help="edge birth probability")
    simulate_parser.add_argument("--death", type=float, default=0.3, help="edge death probability")
    simulate_parser.add_argument("--side", type=int, default=10, help="grid side (mobile agents)")
    simulate_parser.add_argument("--p", type=float, default=0.05, help="edge probability (Erdős–Rényi)")
    simulate_parser.add_argument("--degree", type=int, default=None, help="regular degree (expander / alternating)")
    simulate_parser.add_argument("--trials", type=int, default=10)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.add_argument(
        "--algorithm", choices=("async", "sync"), default="async",
        help="asynchronous (continuous time) or synchronous (rounds)",
    )
    simulate_parser.add_argument(
        "--variant", choices=[variant.value for variant in Variant], default="push-pull",
        help="contact variant for the asynchronous algorithm",
    )
    simulate_parser.add_argument(
        "--engine", choices=("boundary", "naive", "jit", "batched", "auto"),
        default="boundary",
        help="asynchronous engine: exact cut-race (boundary), clock-tick "
        "reference (naive), optional-numba kernel (jit), trial-batched "
        "vectorised sweep (batched; static networks only), or automatic "
        "selection (auto)",
    )
    simulate_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the trial runner (1 = serial)",
    )
    simulate_parser.add_argument(
        "--profile", action="store_true",
        help="profile the run with cProfile and print the top cumulative-time entries",
    )
    simulate_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of a table"
    )

    report_parser = subparsers.add_parser(
        "report", help="run every experiment and print a combined markdown report",
        allow_abbrev=False,
    )
    report_parser.add_argument("--scale", choices=("small", "full"), default="small")
    report_parser.add_argument(
        "--only", nargs="+", default=None, metavar="ID", help="restrict to specific experiment ids"
    )
    report_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON instead of markdown"
    )
    add_pipeline_flags(report_parser)

    verify_parser = subparsers.add_parser(
        "verify",
        help="run the declarative experiment checks as a regression gate",
        allow_abbrev=False,
    )
    verify_parser.add_argument("--scale", choices=("small", "full"), default="small")
    verify_parser.add_argument(
        "--only", nargs="+", default=None, metavar="ID", help="restrict to specific experiment ids"
    )
    verify_parser.add_argument(
        "--json", action="store_true", help="emit the verification document as JSON"
    )
    add_pipeline_flags(verify_parser)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="inspect or run declarative scenarios", allow_abbrev=False
    )
    scenarios_sub = scenarios_parser.add_subparsers(dest="scenarios_command", required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list", help="list network families and per-experiment scenario tables",
        allow_abbrev=False,
    )
    scenarios_list.add_argument("--scale", choices=("small", "full"), default="small")
    scenarios_list.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )
    scenarios_run = scenarios_sub.add_parser(
        "run", help="run a JSON scenario file through the pipeline", allow_abbrev=False
    )
    scenarios_run.add_argument("file", help="path to a scenario JSON file")
    scenarios_run.add_argument(
        "--json", action="store_true", help="emit full point payloads as JSON"
    )
    add_pipeline_flags(scenarios_run)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the HTTP experiment service (REST + SSE + Prometheus metrics)",
        allow_abbrev=False,
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks an ephemeral port, announced on stdout)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing queued runs concurrently",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1,
        help="per-run point parallelism (1 keeps engine events streamable)",
    )
    serve_parser.add_argument(
        "--sink", default=None, metavar="URL",
        help="artifact store URL (file://DIR, memory://, ...; default: the "
        "pipeline's default cache dir)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="deprecated alias for --sink file://DIR",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="keep artifacts in memory only (still served via /artifacts)",
    )
    serve_parser.add_argument(
        "--max-events", type=int, default=10000,
        help="per-run event buffer bound (older events are evicted)",
    )
    serve_parser.add_argument(
        "--coordinator", action="store_true",
        help="coordinator mode: execute nothing locally, expose submitted "
        "runs as point leases for 'repro worker' processes",
    )
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="SECONDS",
        help="coordinator mode: reclaim a worker's lease after this many "
        "seconds without a report",
    )
    serve_parser.add_argument(
        "--lease-attempts", type=positive_int, default=3, metavar="N",
        help="coordinator mode: attempt budget per point before it is "
        "marked failed",
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="execute leased scenario points for a 'repro serve --coordinator'",
        allow_abbrev=False,
    )
    worker_parser.add_argument(
        "--coordinator", required=True, metavar="URL",
        help="base URL of the coordinator service, e.g. http://127.0.0.1:8765",
    )
    worker_parser.add_argument(
        "--name", default=None, help="worker name shown in the lease listing"
    )
    worker_parser.add_argument(
        "--max-points", type=positive_int, default=1, metavar="N",
        help="points to lease per request",
    )
    worker_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="delay between lease requests while no work is available",
    )
    worker_parser.add_argument(
        "--exit-when-idle", action="store_true",
        help="exit once the coordinator has no open work (default: keep "
        "polling for future runs)",
    )
    worker_parser.add_argument(
        "--json", action="store_true",
        help="emit the worker's final statistics as JSON",
    )
    return parser


# Non-finite floats become "Infinity"/"-Infinity"/"NaN" strings so every
# --json document is valid RFC-8259 JSON (single source shared with the
# HTTP service's response bodies).
_finite_json = finite_json


def _dump_json(document: Any, out) -> None:
    """Emit a CLI ``--json`` document (strictly valid JSON, trailing newline)."""
    json.dump(_finite_json(document), out, indent=2, allow_nan=False)
    print(file=out)


def _failure_flags(args: argparse.Namespace) -> tuple:
    """``(keep_going, max_failures)`` — ``--max-failures`` implies keep-going."""
    max_failures = getattr(args, "max_failures", None)
    keep_going = bool(getattr(args, "keep_going", False)) or max_failures is not None
    return keep_going, max_failures


def _sink_url_from_args(args: argparse.Namespace) -> Optional[str]:
    """The artifact-store URL the flags ask for (``None`` = caching off).

    ``--sink URL`` is the one way to choose a store; ``--cache-dir DIR`` is
    its deprecated spelling (a plain path is a valid ``--sink`` value), kept
    as a shim that warns once per process like the ``run_trials`` adapter.
    """
    url = getattr(args, "sink", None)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        from repro.api._deprecation import warn_once

        warn_once(
            "cli-cache-dir",
            "--cache-dir is deprecated; use --sink file://DIR "
            "(or --sink DIR) instead",
        )
        if url is None:
            url = cache_dir
    if getattr(args, "no_cache", False):
        return None
    return url if url is not None else default_cache_dir()


def _make_pipeline(
    args: argparse.Namespace, point_keep_going: bool = False
) -> ExperimentPipeline:
    """Build the pipeline an experiment/report/scenarios command asked for.

    ``point_keep_going`` applies the ``--keep-going`` / ``--max-failures``
    flags at point granularity (``scenarios run``); the experiment commands
    instead keep the pipeline strict and catch failures per experiment, so a
    broken experiment cannot leave half-interpreted points behind.
    """
    url = _sink_url_from_args(args)
    sink = api.sink_from_url(url) if url is not None else None
    keep_going, max_failures = _failure_flags(args) if point_keep_going else (False, None)
    return ExperimentPipeline(
        jobs=args.jobs, sink=sink,
        keep_going=keep_going, max_failures=max_failures,
    )


def _emit_failure_table(rows: List[Dict[str, Any]], title: str) -> None:
    """Print a per-failure table to stderr (and the CI step summary, if any)."""
    if not rows:
        return
    table = format_table(rows, title=title)
    print(table, file=sys.stderr)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(f"### {title}\n\n```\n{table}\n```\n\n")
        except OSError:
            pass  # the run itself must not fail on a summary write


def _explicit_flags(argv: Sequence[str]) -> set:
    """Option strings the user actually typed (``--flag`` and ``--flag=x``)."""
    return {token.split("=", 1)[0] for token in argv if token.startswith("--")}


def _validate_simulate_flags(args: argparse.Namespace, explicit: set) -> Optional[str]:
    """Reject flag combinations that would otherwise be silently ignored.

    Returns an error message, or ``None`` when the combination is valid.
    """
    if args.algorithm == "sync":
        inapplicable = sorted({"--variant", "--engine"} & explicit)
        if inapplicable:
            verb = "applies" if len(inapplicable) == 1 else "apply"
            return (
                f"{', '.join(inapplicable)} {verb} only to --algorithm async; "
                "the synchronous process is round-based push-pull with no engine choice"
            )
    family = get_network_family(args.network)
    for flag, param in _NETWORK_PARAM_FLAGS:
        if flag in explicit and param not in family.defaults:
            return (
                f"{flag} does not apply to --network {args.network}; "
                f"parameters of {args.network!r}: {list(family.defaults)}"
            )
    return None


def _simulate_params(args: argparse.Namespace) -> Dict[str, Any]:
    """Family parameters for ``simulate`` (defaults for flags not given)."""
    family = get_network_family(args.network)
    params: Dict[str, Any] = {"n": args.n}
    for _flag, param in _NETWORK_PARAM_FLAGS:
        value = getattr(args, param)
        if param in family.defaults and value is not None:
            params[param] = value
    return params


def _command_list(out) -> int:
    from repro.experiments.registry import EXPERIMENTS

    rows = []
    for experiment_id, runner in EXPERIMENTS.items():
        module = sys.modules[runner.__module__]
        title = (module.__doc__ or "").strip().splitlines()[0].rstrip(".")
        rows.append({"id": experiment_id, "module": runner.__module__, "title": title})
    print(format_table(rows, title="Available experiments (see DESIGN.md section 4)"), file=out)
    return 0


def _command_experiment(args, out) -> int:
    from repro.experiments.registry import run_experiment
    from repro.experiments.reporting import failed_placeholder

    keep_going, _max_failures = _failure_flags(args)
    pipeline = _make_pipeline(args)
    kwargs = {"scale": args.scale, "pipeline": pipeline}
    if args.seed is not None:
        kwargs["rng"] = args.seed
    experiment_id = args.experiment_id.upper()
    failure_rows: List[Dict[str, Any]] = []
    try:
        result = run_experiment(experiment_id, **kwargs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:
        if not keep_going:
            raise
        result = failed_placeholder(experiment_id, error)
        failure_rows.append(
            {
                "experiment": experiment_id,
                "status": "failed",
                "error": f"{type(error).__name__}: {error}",
            }
        )
    if args.json:
        document = result.as_dict()
        document["execution"] = pipeline.report.as_dict()
        _dump_json(document, out)
    else:
        print(result.report(), file=out)
    _emit_failure_table(failure_rows, f"{experiment_id}: failures")
    return 0 if result.passed in (True, None) else 1


def _command_simulate(args, out) -> int:
    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            code = _run_simulate(args, out)
        finally:
            profiler.disable()
            try:
                # Name the engine that actually executed (engine="auto"
                # resolves per workload), so profiles of batched/jit runs are
                # attributed to the right hot path.
                resolved = _simulate_builder(args).resolved_engine()
            except ValueError:
                resolved = "unresolved (invalid configuration)"
            print(f"profiled engine: {resolved}", file=sys.stderr)
            buffer = io.StringIO()
            pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(25)
            # stderr keeps --json output parseable and pipes clean.
            print(buffer.getvalue().rstrip(), file=sys.stderr)
        return code
    return _run_simulate(args, out)


def _simulate_builder(args):
    return (
        api.run(
            network=args.network,
            params=_simulate_params(args),
            algorithm=args.algorithm,
            variant=args.variant,
            engine=args.engine,
            seed=args.seed,
            network_seed=args.seed,
        )
        .trials(args.trials)
        .workers(args.workers)
    )


def _run_simulate(args, out) -> int:
    try:
        trial_set = _simulate_builder(args).collect()
    except ValueError as error:
        # Up-front engine/combination validation (e.g. batched on a dynamic
        # network) surfaces here; report it like the other commands do.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        _dump_json(trial_set.as_dict(), out)
        return 0
    row = dict(
        {"network": args.network, "nodes": trial_set.nodes},
        **trial_set.summary().as_dict(),
    )
    unit = trial_set.spec.unit
    print(
        format_table([row], title=f"{args.algorithm} spread {unit} over {args.trials} trials"),
        file=out,
    )
    return 0


def _command_report(args, out) -> int:
    from repro.experiments.reporting import (
        all_passed,
        build_results,
        render_markdown,
        results_as_dict,
        validate_experiment_ids,
    )

    if args.only is not None:
        try:
            validate_experiment_ids(args.only)  # fail fast, before any run
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    keep_going, max_failures = _failure_flags(args)
    failure_log: List[Dict[str, Any]] = []
    results = build_results(
        scale=args.scale, experiment_ids=args.only, pipeline=_make_pipeline(args),
        keep_going=keep_going, max_failures=max_failures, failure_log=failure_log,
    )
    if args.json:
        _dump_json(results_as_dict(results), out)
    else:
        print(render_markdown(results), file=out)
    _emit_failure_table(failure_log, "report: failed experiments")
    # Non-zero on any failed shape check so CI can gate on the exit code
    # instead of re-parsing the JSON document.
    return 0 if all_passed(results) else 1


def _command_verify(args, out) -> int:
    from repro.experiments.reporting import (
        all_passed,
        build_results,
        render_verification,
        validate_experiment_ids,
        verification_as_dict,
    )

    if args.only is not None:
        try:
            validate_experiment_ids(args.only)  # fail fast, before any run
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    keep_going, max_failures = _failure_flags(args)
    failure_log: List[Dict[str, Any]] = []
    pipeline = _make_pipeline(args)
    results = build_results(
        scale=args.scale, experiment_ids=args.only, pipeline=pipeline,
        keep_going=keep_going, max_failures=max_failures, failure_log=failure_log,
    )
    if args.json:
        _dump_json(
            verification_as_dict(results, scale=args.scale, execution=pipeline.report),
            out,
        )
    else:
        print(render_verification(results), file=out)
    _emit_failure_table(failure_log, "verify: failed experiments")
    return 0 if all_passed(results) else 1


def _scenario_tables(scale: str) -> Dict[str, List[Scenario]]:
    """Distinct experiment id → declarative scenario table at ``scale``."""
    from repro.experiments.registry import get_scenario_table
    from repro.experiments.reporting import distinct_experiment_ids

    return {
        experiment_id: get_scenario_table(experiment_id)(scale=scale)
        for experiment_id in distinct_experiment_ids()
    }


def _command_scenarios_list(args, out) -> int:
    from repro.scenarios.networks import REQUIRED

    tables = _scenario_tables(args.scale)
    if args.json:
        document = {
            "networks": {
                name: {
                    "description": get_network_family(name).description,
                    # REQUIRED parameters serialise as null (no default).
                    "params": {
                        key: (None if value is REQUIRED else value)
                        for key, value in get_network_family(name).defaults.items()
                    },
                }
                for name in network_families()
            },
            "experiments": {
                experiment_id: [scenario.to_dict() for scenario in scenarios]
                for experiment_id, scenarios in tables.items()
            },
        }
        _dump_json(document, out)
        return 0
    family_rows = []
    for name in network_families():
        family = get_network_family(name)
        params = ", ".join(
            key if value is REQUIRED else f"{key}={value}"
            for key, value in family.defaults.items()
        )
        family_rows.append(
            {"family": name, "params": params, "description": family.description}
        )
    print(format_table(family_rows, title="Registered network families"), file=out)
    print(file=out)
    scenario_rows = []
    for experiment_id, scenarios in tables.items():
        for scenario in scenarios:
            scenario_rows.append(
                {
                    "experiment": experiment_id,
                    "label": scenario.label,
                    "kind": scenario.kind,
                    "network": scenario.network or "-",
                    "sweep": (
                        f"{scenario.sweep_name}={list(scenario.sweep)}"
                        if scenario.sweep
                        else ", ".join(f"{k}={v}" for k, v in scenario.params.items()) or "-"
                    ),
                    "trials": scenario.trials,
                }
            )
    print(
        format_table(scenario_rows, title=f"Experiment scenario tables (scale={args.scale})"),
        file=out,
    )
    return 0


def _command_scenarios_run(args, out) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if isinstance(document, dict) and "scenarios" in document:
            raw_scenarios = document["scenarios"]
        elif isinstance(document, dict):
            raw_scenarios = [document]
        else:
            raw_scenarios = document
        scenarios = [Scenario.from_dict(raw) for raw in raw_scenarios]
    except (OSError, ValueError, TypeError) as error:
        print(f"error: {args.file}: {error}", file=sys.stderr)
        return 2
    if not scenarios:
        print(f"error: {args.file}: no scenarios in file", file=sys.stderr)
        return 2
    pipeline = _make_pipeline(args, point_keep_going=True)
    results = pipeline.run(scenarios)
    failures = failed_points(results)
    failure_rows = [
        {
            "label": point.label,
            "value": point.value,
            "status": point.status,
            "attempts": point.attempts,
            "error": point.error or "-",
        }
        for point in failures
    ]
    check_reports = _scenario_check_reports(scenarios, results)
    checks_passed = all(report.passed for report in check_reports.values())
    run_ok = checks_passed and not failures
    point_documents = [
        {
            "label": point.label,
            "value": point.value,
            "index": point.index,
            "key": point.key,
            "cached": point.cached,
            "status": point.status,
            "error": point.error,
            "attempts": point.attempts,
            "payload": point.payload,
        }
        for point in results
    ]
    if args.json:
        if check_reports or failures:
            document: Dict[str, Any] = {"points": point_documents}
            if check_reports:
                document["checks"] = {label: report.as_dict()
                                      for label, report in check_reports.items()}
            if failures:
                document["failures"] = failure_rows
            document["all_passed"] = run_ok
            document["execution"] = pipeline.report.as_dict()
            _dump_json(document, out)
        else:
            # Historical schema: a bare list of points when nothing is checked.
            _dump_json(point_documents, out)
        _emit_failure_table(failure_rows, "scenarios run: failed points")
        return 0 if run_ok else 1
    rows = []
    for point in results:
        row = {
            "label": point.label,
            point.scenario.sweep_name: point.value,
            "cached": point.cached,
        }
        if failures:
            row["status"] = point.status
        summary = point.payload.get("summary") if point.payload else None
        if summary:
            row.update(
                {key: summary[key] for key in ("trials", "mean", "whp", "completion_rate")}
            )
        rows.append(row)
    print(format_table(rows, title=f"{len(scenarios)} scenario(s), {len(rows)} point(s)"), file=out)
    for label, report in check_reports.items():
        passed, checked = report.counts
        check_rows = [
            {
                "check": result.label,
                "kind": result.kind,
                "observed": "-" if result.observed is None else result.observed,
                "margin": "-" if result.margin is None else result.margin,
                "verdict": "PASS" if result.passed else "FAIL",
            }
            for result in report
        ]
        print(file=out)
        print(
            format_table(check_rows, title=f"checks for {label!r}: {passed} / {checked} passed"),
            file=out,
        )
    _emit_failure_table(failure_rows, "scenarios run: failed points")
    return 0 if run_ok else 1


def _scenario_check_reports(scenarios: List[Scenario], results):
    """Evaluate each scenario's attached check table over its own points.

    Keys are scenario labels, disambiguated with ``#index`` on collision so
    a duplicated label can never overwrite (and thereby mask) another
    scenario's failing report.
    """
    from repro.checks import evaluate_checks

    reports = {}
    for index, scenario in enumerate(scenarios):
        if not scenario.checks:
            continue
        points = [point for point in results if point.scenario is scenario]
        key = scenario.label
        if key in reports:
            key = f"{scenario.label} #{index}"
        reports[key] = evaluate_checks(scenario.checks, points)
    return reports


def _command_serve(args, out) -> int:
    # Imported lazily: the service package is only needed by this command.
    from repro.service import ExperimentService, ServiceConfig, create_server

    url = _sink_url_from_args(args)
    try:
        sink = api.sink_from_url(url) if url is not None else api.MemorySink()
        service = ExperimentService(ServiceConfig(
            workers=args.workers,
            jobs=args.jobs,
            sink=sink,
            max_events=args.max_events,
            coordinator=args.coordinator,
            lease_ttl=args.lease_ttl,
            lease_attempts=args.lease_attempts,
        ))
        server = create_server(service, host=args.host, port=args.port)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    mode = ", coordinator=on" if args.coordinator else ""
    # The announce line is a machine-readable contract: scripts starting the
    # service on port 0 read the actual port from it (see ci service-smoke).
    print(f"repro serve: listening on http://{host}:{port} "
          f"(workers={args.workers}, jobs={args.jobs}{mode})", file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("repro serve: shutting down (draining queued runs)", file=out, flush=True)
        server.shutdown()
        server.server_close()
        service.shutdown(drain=True)
    return 0


def _command_worker(args, out) -> int:
    # Imported lazily: the distributed package is only needed by this command.
    from repro.distributed import run_worker

    stats = run_worker(
        args.coordinator,
        name=args.name,
        max_points=args.max_points,
        poll=args.poll,
        exit_when_idle=args.exit_when_idle,
        kill_exits_process=True,  # a chaos "kill" really kills this process
    )
    if args.json:
        _dump_json(stats.as_dict(), out)
    else:
        print(
            f"repro worker {stats.worker_id or '(unregistered)'}: "
            f"{stats.completed} completed ({stats.cached} cached), "
            f"{stats.failed} failed, stopped: {stats.stopped}",
            file=out,
        )
    if stats.stopped.startswith("unreachable"):
        return 2
    if stats.stopped.startswith("coordinator lost"):
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = sys.stdout if out is None else out
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Validate any REPRO_CHAOS spec up front so a typo is a clean CLI
        # error instead of a traceback from deep inside a pipeline build.
        chaos_from_env()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if getattr(args, "sink", None) is not None:
        try:
            # Validate the URL up front (constructing a sink does no I/O) so
            # a bad scheme is a clean CLI error, not a pipeline traceback.
            api.sink_from_url(args.sink)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "list":
        return _command_list(out)
    if args.command == "experiment":
        return _command_experiment(args, out)
    if args.command == "simulate":
        error = _validate_simulate_flags(args, _explicit_flags(argv))
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return _command_simulate(args, out)
    if args.command == "report":
        return _command_report(args, out)
    if args.command == "verify":
        return _command_verify(args, out)
    if args.command == "scenarios":
        if args.scenarios_command == "list":
            return _command_scenarios_list(args, out)
        return _command_scenarios_run(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    if args.command == "worker":
        return _command_worker(args, out)
    parser.error(f"unknown command {args.command!r}")
    return 2


__all__ = ["build_parser", "main", "NETWORK_CHOICES"]
