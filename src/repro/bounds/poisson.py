"""Poisson-process machinery used by the paper's analysis.

Three ingredients of Sections 2–3 are implemented so that they can be tested
and reused by the experiments:

* :class:`NonHomogeneousPoissonProcess` — a process with a piecewise-constant
  rate function ``λ(τ)``; Theorem 2.1 says the number of arrivals in
  ``[a, b]`` is Poisson with mean ``∫_a^b λ``.  Sampling is done by
  superposition over the constant pieces.
* :func:`poisson_lower_tail_bound` — Lemma 2.2:
  ``Pr[X ≤ r/2] ≤ e^{r(1/e + 1/2 − 1)}`` for a Poisson(r) variable ``X``.
* :func:`exponential_race_winner` — the order-statistics fact the simulator
  relies on: the minimum of independent exponentials is exponential with the
  summed rate, and the winner is chosen proportionally to its rate.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_non_negative

#: The constant ``c₀ = 1/2 − 1/e`` of Theorem 1.1 (written ``1 − 1/2 − 1/e``
#: in Lemma 3.1; the two expressions are the same number).
LEMMA_2_2_EXPONENT = 1.0 / math.e + 0.5 - 1.0


def poisson_lower_tail_bound(rate: float) -> float:
    """Return the Lemma 2.2 bound on ``Pr[Poisson(rate) ≤ rate/2]``."""
    require_non_negative(rate, "rate")
    return math.exp(rate * LEMMA_2_2_EXPONENT)


def exponential_race_winner(
    rates: Mapping[Hashable, float], rng: RngLike = None
) -> Tuple[Hashable, float]:
    """Sample the winner and finishing time of an exponential race.

    Given independent exponential clocks with the given rates, returns
    ``(winner, time)`` where ``time ~ Exp(Σ rates)`` and the winner is chosen
    with probability proportional to its rate — the order-statistics fact
    used to derive Equation (1) of the paper.
    """
    items = [(key, rate) for key, rate in rates.items() if rate > 0]
    require(len(items) > 0, "exponential_race_winner needs at least one positive rate")
    gen = ensure_rng(rng)
    total = sum(rate for _, rate in items)
    time = gen.exponential(1.0 / total)
    threshold = gen.random() * total
    cumulative = 0.0
    for key, rate in items:
        cumulative += rate
        if cumulative >= threshold:
            return key, time
    return items[-1][0], time


class NonHomogeneousPoissonProcess:
    """A Poisson process with a piecewise-constant rate.

    The rate is ``rates[t]`` on the interval ``[t, t+1)`` (matching how the
    dynamic network exposes one snapshot per unit interval); beyond the last
    given interval the final rate is held.
    """

    def __init__(self, rates: Sequence[float]):
        rates = [float(rate) for rate in rates]
        require(len(rates) >= 1, "need at least one rate interval")
        for rate in rates:
            require_non_negative(rate, "rate")
        self._rates = rates

    def rate_at(self, tau: float) -> float:
        """Return ``λ(τ)``."""
        require_non_negative(tau, "tau")
        index = min(int(math.floor(tau)), len(self._rates) - 1)
        return self._rates[index]

    def mean_count(self, a: float, b: float) -> float:
        """Return ``Λ = ∫_a^b λ(τ) dτ`` (Theorem 2.1's Poisson mean)."""
        require(0 <= a <= b, "need 0 <= a <= b")
        total = 0.0
        tau = a
        while tau < b:
            next_boundary = math.floor(tau) + 1.0
            segment_end = min(next_boundary, b)
            total += self.rate_at(tau) * (segment_end - tau)
            tau = segment_end
        return total

    def sample_count(self, a: float, b: float, rng: RngLike = None) -> int:
        """Sample ``N(b) − N(a)``, Poisson with mean :meth:`mean_count`."""
        gen = ensure_rng(rng)
        return int(gen.poisson(self.mean_count(a, b)))

    def sample_arrivals(self, a: float, b: float, rng: RngLike = None) -> List[float]:
        """Sample the arrival times in ``[a, b]`` (sorted).

        Uses the standard fact that, conditioned on the count in a constant-
        rate segment, arrivals are i.i.d. uniform over the segment.
        """
        gen = ensure_rng(rng)
        arrivals: List[float] = []
        tau = a
        while tau < b:
            next_boundary = math.floor(tau) + 1.0
            segment_end = min(next_boundary, b)
            rate = self.rate_at(tau)
            length = segment_end - tau
            if rate > 0 and length > 0:
                count = int(gen.poisson(rate * length))
                arrivals.extend(tau + gen.random(count) * length)
            tau = segment_end
        return sorted(arrivals)

    def first_time_mean_reaches(self, threshold: float) -> float:
        """Return the earliest ``b`` with ``∫_0^b λ ≥ threshold`` (``inf`` if never).

        This is the continuous analogue of the ``T(G, c)`` / ``T_abs``
        stopping times: the paper's bounds are exactly "the first time the
        accumulated rate budget reaches a target".
        """
        require_non_negative(threshold, "threshold")
        if threshold == 0:
            return 0.0
        accumulated = 0.0
        for index, rate in enumerate(self._rates):
            if accumulated + rate >= threshold:
                if rate == 0:
                    continue
                return index + (threshold - accumulated) / rate
            accumulated += rate
        final_rate = self._rates[-1]
        if final_rate <= 0:
            return math.inf
        remaining = threshold - accumulated
        return len(self._rates) + remaining / final_rate


__all__ = [
    "LEMMA_2_2_EXPONENT",
    "NonHomogeneousPoissonProcess",
    "exponential_race_winner",
    "poisson_lower_tail_bound",
]
