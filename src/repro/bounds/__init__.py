"""Theoretical bounds on the spread time.

* :mod:`repro.bounds.poisson` — non-homogeneous Poisson process utilities
  (Theorem 2.1), the Poisson lower-tail bound of Lemma 2.2, and exponential
  order-statistics helpers.
* :mod:`repro.bounds.theorems` — the paper's bounds: ``T(G, c)`` of
  Theorem 1.1, ``T_abs(G)`` of Theorem 1.3, the Corollary 1.6 combination,
  the static-network conductance bound of Chierichetti et al. [6], and the
  lower-bound predictions of Theorems 1.2 / 1.5.
* :mod:`repro.bounds.giakkoupis` — the degree-variation bound of Giakkoupis,
  Sauerwald and Stauffer [17] for the synchronous algorithm, used by the
  Section 1.2 comparison experiment.
"""

from repro.bounds.poisson import (
    NonHomogeneousPoissonProcess,
    exponential_race_winner,
    poisson_lower_tail_bound,
)
from repro.bounds.theorems import (
    C_CONSTANT_FACTOR,
    SPREAD_CONSTANT_C0,
    absolute_diligence_bound,
    combined_bound,
    conductance_diligence_bound,
    static_conductance_bound,
    theorem_1_1_threshold,
    theorem_1_3_threshold,
)
from repro.bounds.giakkoupis import giakkoupis_bound

__all__ = [
    "NonHomogeneousPoissonProcess",
    "exponential_race_winner",
    "poisson_lower_tail_bound",
    "C_CONSTANT_FACTOR",
    "SPREAD_CONSTANT_C0",
    "absolute_diligence_bound",
    "combined_bound",
    "conductance_diligence_bound",
    "static_conductance_bound",
    "theorem_1_1_threshold",
    "theorem_1_3_threshold",
    "giakkoupis_bound",
]
