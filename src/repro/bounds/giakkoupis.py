"""The synchronous dynamic-network bound of Giakkoupis, Sauerwald and Stauffer.

Section 1.2 of the paper compares Theorem 1.1 against the earlier result [17]
for the *synchronous* push–pull algorithm on dynamic evolving networks: with
high probability the spread time is at most

    ``min{ t : Σ_{p=0}^{t} Φ(G(p)) = Ω(M(G) · log n) }``

where ``M(G) = max_u Δ_u/δ_u`` is the largest ratio between a node's maximum
and minimum degree over the time steps considered.  The paper's point is that
``M(G)`` can be Θ(n) even when the degree skew is irrelevant to the process —
e.g. a sequence alternating a 3-regular graph with the complete graph — while
the diligence-based Theorem 1.1 stays within polylogarithmic factors.  The
related-work experiment regenerates exactly that comparison.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence

from repro.bounds.theorems import BoundEvaluation, _first_threshold_step
from repro.graphs.metrics import degree_variation_ratio
from repro.utils.validation import require, require_node_count, require_positive


def giakkoupis_threshold(n: int, degree_variation: float, constant: float = 1.0) -> float:
    """Return the [17] budget target ``constant · M(G) · log n``."""
    require_node_count(n, minimum=2)
    require_positive(degree_variation, "degree_variation")
    return constant * degree_variation * math.log(n)


def giakkoupis_bound(
    conductances: Sequence[float],
    degree_history: Mapping,
    n: int,
    constant: float = 1.0,
) -> BoundEvaluation:
    """Evaluate the [17] bound on a realised snapshot sequence.

    Parameters
    ----------
    conductances:
        Per-step conductances ``Φ(G(p))``.
    degree_history:
        Mapping node → sequence of its degrees over the steps considered (as
        collected by :class:`repro.dynamics.base.SnapshotRecorder`).
    constant:
        The hidden constant of the Ω(·); 1 by default so comparisons against
        Theorem 1.1 are at matching constants.
    """
    m_ratio = degree_variation_ratio(degree_history)
    threshold = giakkoupis_threshold(n, m_ratio, constant)
    per_step = [float(phi) for phi in conductances]
    for value in per_step:
        require(value >= 0, "conductances must be non-negative")
    return BoundEvaluation(
        bound=_first_threshold_step(per_step, threshold),
        threshold=threshold,
        accumulated=sum(per_step),
        per_step=per_step,
    )


__all__ = ["giakkoupis_bound", "giakkoupis_threshold"]
