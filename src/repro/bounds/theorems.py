"""The paper's spread-time bounds, evaluated on realised snapshot sequences.

All bounds are "first time ``t`` such that an accumulated per-step budget
exceeds a threshold":

* **Theorem 1.1**: ``T(G, c) = min{ t : Σ_{p=0}^{t} Φ(G(p)) ρ(G(p)) ≥ C log n }``
  with ``C = (10c + 20)/c₀`` and ``c₀ = 1/2 − 1/e``.
* **Theorem 1.3**: ``T_abs(G) = min{ t : Σ_{p=0}^{t} ⌈Φ(G(p))⌉ ρ̄(G(p)) ≥ 2n }``
  where ``⌈Φ⌉`` is 1 for connected snapshots and 0 otherwise.
* **Corollary 1.6**: the spread time is at most ``min{T(G,c), T_abs(G)}``.
* For static networks the classical bound of Chierichetti et al. [6]
  ``O(log n / Φ)`` is provided for comparison.

The per-step series are usually produced by a
:class:`repro.dynamics.base.SnapshotRecorder` attached to a simulation run, or
synthesised analytically for the paper's constructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.dynamics.base import SnapshotRecorder
from repro.utils.validation import require, require_node_count, require_positive

#: ``c₀ = 1/2 − 1/e`` from Theorem 1.1 / Lemma 3.1.
SPREAD_CONSTANT_C0 = 0.5 - 1.0 / math.e


def C_CONSTANT_FACTOR(c: float = 1.0) -> float:
    """Return ``C = (10c + 20)/c₀`` from Theorem 1.1 for confidence parameter ``c``."""
    require_positive(c, "c")
    return (10.0 * c + 20.0) / SPREAD_CONSTANT_C0


@dataclass(frozen=True)
class BoundEvaluation:
    """Result of evaluating a budget-threshold bound on a snapshot series.

    Attributes
    ----------
    bound:
        The first step index at which the accumulated budget reached the
        threshold (``inf`` when the provided series never reaches it).
    threshold:
        The budget target.
    accumulated:
        The total budget accumulated over the provided series.
    per_step:
        The per-step budget contributions actually used.
    """

    bound: float
    threshold: float
    accumulated: float
    per_step: List[float]

    @property
    def reached(self) -> bool:
        """True when the series reached the threshold."""
        return math.isfinite(self.bound)


def _first_threshold_step(per_step: Sequence[float], threshold: float) -> float:
    accumulated = 0.0
    for index, value in enumerate(per_step):
        require(value >= 0, f"per-step budget must be non-negative, got {value} at step {index}")
        accumulated += value
        if accumulated >= threshold:
            return float(index)
    return math.inf


def theorem_1_1_threshold(n: int, c: float = 1.0) -> float:
    """Return the Theorem 1.1 budget target ``C log n`` (natural logarithm)."""
    require_node_count(n, minimum=2)
    return C_CONSTANT_FACTOR(c) * math.log(n)


def conductance_diligence_bound(
    conductances: Sequence[float],
    diligences: Sequence[float],
    n: int,
    c: float = 1.0,
) -> BoundEvaluation:
    """Evaluate ``T(G, c)`` of Theorem 1.1 on a realised snapshot sequence.

    ``conductances[p]`` and ``diligences[p]`` are ``Φ(G(p))`` and ``ρ(G(p))``.
    When the sequence is shorter than the bound, the result's ``bound`` is
    ``inf`` and ``reached`` is False — extend the series (the constructions
    are infinite; a recorder only sees the steps a run actually used).
    """
    require(len(conductances) == len(diligences), "series must have equal length")
    per_step = [phi * rho for phi, rho in zip(conductances, diligences)]
    threshold = theorem_1_1_threshold(n, c)
    return BoundEvaluation(
        bound=_first_threshold_step(per_step, threshold),
        threshold=threshold,
        accumulated=sum(per_step),
        per_step=per_step,
    )


def theorem_1_3_threshold(n: int) -> float:
    """Return the Theorem 1.3 budget target ``2n``."""
    require_node_count(n, minimum=2)
    return 2.0 * n


def absolute_diligence_bound(
    connectivity_indicators: Sequence[int],
    absolute_diligences: Sequence[float],
    n: int,
) -> BoundEvaluation:
    """Evaluate ``T_abs(G)`` of Theorem 1.3 on a realised snapshot sequence.

    ``connectivity_indicators[p]`` is ``⌈Φ(G(p))⌉`` (1 when snapshot ``p`` is
    connected, 0 otherwise) and ``absolute_diligences[p]`` is ``ρ̄(G(p))``.
    """
    require(
        len(connectivity_indicators) == len(absolute_diligences),
        "series must have equal length",
    )
    per_step = []
    for indicator, rho in zip(connectivity_indicators, absolute_diligences):
        require(indicator in (0, 1), f"connectivity indicator must be 0 or 1, got {indicator}")
        per_step.append(float(indicator) * rho)
    threshold = theorem_1_3_threshold(n)
    return BoundEvaluation(
        bound=_first_threshold_step(per_step, threshold),
        threshold=threshold,
        accumulated=sum(per_step),
        per_step=per_step,
    )


def combined_bound(
    conductances: Sequence[float],
    diligences: Sequence[float],
    connectivity_indicators: Sequence[int],
    absolute_diligences: Sequence[float],
    n: int,
    c: float = 1.0,
) -> float:
    """Corollary 1.6: ``min{T(G, c), T_abs(G)}`` on a realised sequence."""
    first = conductance_diligence_bound(conductances, diligences, n, c)
    second = absolute_diligence_bound(connectivity_indicators, absolute_diligences, n)
    return min(first.bound, second.bound)


def bounds_from_recorder(
    recorder: SnapshotRecorder, n: int, c: float = 1.0
) -> dict:
    """Evaluate both bounds directly from a :class:`SnapshotRecorder`.

    Returns a dict with keys ``"theorem_1_1"``, ``"theorem_1_3"`` and
    ``"corollary_1_6"``.
    """
    first = conductance_diligence_bound(
        recorder.conductance_series(), recorder.diligence_series(), n, c
    )
    second = absolute_diligence_bound(
        recorder.connectivity_series(), recorder.absolute_diligence_series(), n
    )
    return {
        "theorem_1_1": first,
        "theorem_1_3": second,
        "corollary_1_6": min(first.bound, second.bound),
    }


def static_conductance_bound(n: int, conductance: float, constant: float = 1.0) -> float:
    """The classical static bound ``O(log n / Φ)`` of Chierichetti et al. [6]."""
    require_node_count(n, minimum=2)
    require_positive(conductance, "conductance")
    return constant * math.log(n) / conductance


def universal_quadratic_bound(n: int) -> float:
    """Remark 1.4: connected dynamic networks finish in at most ``2n(n−1)`` time.

    Every connected snapshot is absolutely ``1/(n−1)``-diligent, so the
    Theorem 1.3 budget of ``2n`` is met after ``2n(n−1)`` steps.
    """
    require_node_count(n, minimum=2)
    return 2.0 * n * (n - 1.0)


__all__ = [
    "BoundEvaluation",
    "C_CONSTANT_FACTOR",
    "SPREAD_CONSTANT_C0",
    "absolute_diligence_bound",
    "bounds_from_recorder",
    "combined_bound",
    "conductance_diligence_bound",
    "static_conductance_bound",
    "theorem_1_1_threshold",
    "theorem_1_3_threshold",
    "universal_quadratic_bound",
]
