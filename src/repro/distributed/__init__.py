"""``repro.distributed`` — shared artifact store + worker fleet over HTTP.

The last scaling lever from the ROADMAP: shard a sweep's points across
machines without changing a single result byte.  Three pieces:

* :class:`HttpSink` (:mod:`repro.distributed.http_sink`) — a full
  :class:`repro.api.ResultSink` implementation against the service's
  ``/artifacts`` endpoints: checksum-verified reads, idempotent
  content-addressed writes.  Any :class:`repro.scenarios.ExperimentPipeline`
  pointed at it (``--sink http://host:port``) resumes from whatever any
  worker already computed.
* the **coordinator** — ``repro serve --coordinator`` exposes submitted runs
  as point leases (:mod:`repro.service.leases`): TTL-bounded, attempt-
  budgeted grants that are reclaimed and re-issued when a worker dies
  mid-point (the cross-machine shape of the PR 8 supervisor).
* :func:`run_worker` (:mod:`repro.distributed.worker`) — the ``repro worker``
  loop: register, lease points, execute them through the existing
  measurement path, push artifacts to the shared sink, report back.

Determinism contract: every point's payload is a pure function of its
scenario seed policy, so *where* a point executes — which worker, which
attempt, after how many reclamations — cannot change results.  The
cross-worker agreement tests assert sweeps sharded over a fleet are
byte-identical to a single-machine serial run, chaos included.
"""

from repro.distributed.http_sink import HttpSink, HttpSinkError
from repro.distributed.worker import WorkerStats, execute_lease, run_worker

__all__ = [
    "HttpSink",
    "HttpSinkError",
    "WorkerStats",
    "execute_lease",
    "run_worker",
]
