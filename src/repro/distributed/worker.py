"""The ``repro worker`` loop: lease points, execute, push artifacts, report.

A worker is stateless and interchangeable: it registers with a coordinator
(``repro serve --coordinator``), repeatedly asks for point leases, executes
each leased point through the *existing* measurement path
(:func:`repro.scenarios.measurements.measure_point` + the pipeline's JSON
normalisation), pushes the payload to the shared artifact store
(:class:`repro.distributed.HttpSink`) and reports the attempt's outcome.
Because every payload is a pure function of the point's scenario seed policy,
any number of workers — joining late, dying mid-lease, overlapping after a
reclamation — produce exactly the bytes a single-machine serial run would.

Chaos: the ``REPRO_CHAOS`` schedule is applied at lease granularity, indexed
by the point's position in its run and the lease's attempt number — the same
``(index, attempt)`` pure-function contract as the in-process supervisor, so
a kill/slow schedule replays identically across the wire.  A ``kill``
decision terminates the worker process abruptly (``os._exit(86)``) when the
loop runs as its own process (the CLI); in-process callers get it degraded to
a raised :class:`repro.execution.chaos.ChaosKill` so chaos can never take
down a test runner or a supervising parent.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.api.client import ServiceClient, ServiceError
from repro.api.sinks import ResultSink
from repro.distributed.http_sink import HttpSink
from repro.execution.chaos import ChaosKill, ChaosMonkey, chaos_from_env
from repro.scenarios.measurements import measure_point
from repro.scenarios.pipeline import _normalise
from repro.scenarios.scenario import Scenario, ScenarioPoint

#: Seconds between lease requests while the coordinator reports ``busy``.
DEFAULT_POLL_SECONDS = 0.5


@dataclass
class WorkerStats:
    """What one worker loop did (returned by :func:`run_worker`)."""

    worker_id: str = ""
    leases: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    stopped: str = "closed"
    notes: list = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "leases": self.leases,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "stopped": self.stopped,
        }


def point_from_lease(lease: Dict[str, Any]) -> ScenarioPoint:
    """Rebuild the exact :class:`ScenarioPoint` a lease describes."""
    spec = lease["point"]
    scenario = Scenario.from_dict(spec["scenario"])
    return ScenarioPoint(scenario=scenario, value=spec["value"], index=spec["index"])


def execute_lease(
    sink: ResultSink,
    lease: Dict[str, Any],
    chaos: Optional[ChaosMonkey] = None,
    kill_exits_process: bool = False,
) -> Dict[str, Any]:
    """Execute one leased point against ``sink``; returns ``{"cached": bool}``.

    Resumes from the shared store when the artifact already exists (another
    worker got there first, or a stale lease completed after reclamation);
    otherwise measures the point and pushes the normalised payload.  The
    lease's ``key`` is cross-checked against the locally derived cache key so
    a coordinator/worker version skew fails loudly instead of storing a
    payload under a key other consumers would never look up.
    """
    point = point_from_lease(lease)
    key = lease["key"]
    derived = point.cache_key()
    if derived != key:
        raise RuntimeError(
            f"lease key {key[:12]}… does not match locally derived key "
            f"{derived[:12]}… (coordinator/worker version skew?)"
        )
    if chaos is not None:
        fault = chaos.decision(int(lease["point"].get("chaos_index", 0)),
                               int(lease["attempt"]))
        if fault == "kill":
            if kill_exits_process:
                os._exit(86)  # abrupt worker death: the lease must expire
            raise ChaosKill(
                f"chaos kill for lease {lease['lease']} "
                "(degraded to a raise in-process)"
            )
        if fault == "raise":
            raise RuntimeError(f"chaos raise for lease {lease['lease']}")
        if fault == "slow":
            time.sleep(chaos.slow_seconds)
    spec = _normalise(point.spec())
    if sink.load(key, spec) is not None:
        return {"cached": True}
    payload = _normalise(measure_point(point))
    sink.store(key, spec, point.scenario.kind, payload)
    return {"cached": False}


def run_worker(
    coordinator: str,
    name: Optional[str] = None,
    max_points: int = 1,
    poll: float = DEFAULT_POLL_SECONDS,
    exit_when_idle: bool = False,
    chaos: Optional[ChaosMonkey] = None,
    kill_exits_process: bool = False,
    sink: Optional[ResultSink] = None,
    max_leases: Optional[int] = None,
) -> WorkerStats:
    """Register with ``coordinator`` and work leases until done.

    The loop ends when the coordinator reports ``closed`` (service shutting
    down), when ``exit_when_idle`` is set and no open work remains, or after
    ``max_leases`` grants (a test/chaos bound).  ``chaos`` defaults to the
    ``REPRO_CHAOS`` environment schedule.
    """
    client = ServiceClient(coordinator)
    if sink is None:
        sink = HttpSink(coordinator)
    if chaos is None:
        chaos = chaos_from_env()
    stats = WorkerStats()
    try:
        stats.worker_id = client.register_worker(name)
    except (ServiceError, OSError) as error:
        stats.stopped = f"unreachable: {error}"
        return stats
    while True:
        if max_leases is not None and stats.leases >= max_leases:
            stats.stopped = "max_leases"
            break
        try:
            response = client.acquire_leases(stats.worker_id, max_points=max_points)
        except (ServiceError, OSError) as error:
            stats.stopped = f"coordinator lost: {error}"
            break
        state = response.get("state")
        if state == "closed":
            stats.stopped = "closed"
            break
        if state == "granted":
            for lease in response["leases"]:
                stats.leases += 1
                try:
                    outcome = execute_lease(
                        sink, lease, chaos=chaos,
                        kill_exits_process=kill_exits_process,
                    )
                    client.report_lease(lease["lease"], stats.worker_id, ok=True,
                                        cached=outcome["cached"])
                    stats.completed += 1
                    stats.cached += 1 if outcome["cached"] else 0
                except (ServiceError, OSError) as error:
                    # Transport loss mid-report: the lease will expire and be
                    # re-issued; any stored artifact makes the re-run a hit.
                    stats.stopped = f"coordinator lost: {error}"
                    return stats
                except Exception as error:  # noqa: BLE001 - report, keep leasing
                    stats.failed += 1
                    client.report_lease(
                        lease["lease"], stats.worker_id, ok=False,
                        error=f"{type(error).__name__}: {error}",
                    )
            continue
        if state == "idle" and exit_when_idle:
            stats.stopped = "idle"
            break
        time.sleep(poll)
    return stats


__all__ = [
    "DEFAULT_POLL_SECONDS",
    "WorkerStats",
    "execute_lease",
    "point_from_lease",
    "run_worker",
]
