"""A remote :class:`repro.api.ResultSink` over the service's artifact API.

``HttpSink`` implements the full sink contract — ``store`` / ``load`` /
``keys`` / ``artifact`` / ``__contains__`` — against a running experiment
service (``repro serve``), so any pipeline pointed at
``--sink http://host:port`` shares one artifact store across machines:

* **reads are checksum-verified end to end**: the artifact travels with its
  ``"sha256:<hex>"`` payload checksum and is rejected as a miss (counted in
  ``corruption_detected``, like the local sinks) when the received payload
  does not hash to it — a flipped bit on the server's disk or on the wire
  reads as a cache miss, never as a wrong result;
* **writes are idempotent and content-addressed**: ``PUT /artifacts/{key}``
  verifies the checksum server-side and no-ops when the key already exists,
  so two workers racing to store the same point (same key ⇒ same canonical
  payload, by the deterministic seed policy) cannot conflict;
* **wire fidelity**: transfers use the raw (Python-extended) JSON encoding in
  which ``inf``/``nan`` spread times survive as literals, byte-compatible
  with what :class:`repro.api.LocalDirSink` writes to disk.

Transport failures (connection refused, 5xx) raise :class:`HttpSinkError`
rather than masquerading as cache misses: a pipeline that silently recomputes
everything because the store is down would defeat the cross-machine agreement
the sink exists to provide.  A plain 404 is an honest miss.
"""

from __future__ import annotations

import urllib.error
import warnings
from typing import Any, Dict, List, Optional

from repro.api.client import DEFAULT_TIMEOUT, ServiceClient, ServiceError
from repro.api.sinks import ResultSink, payload_checksum


class HttpSinkError(RuntimeError):
    """The artifact service could not be reached or refused the operation."""


class HttpSink(ResultSink):
    """Artifact store backed by a remote experiment service."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT):
        self.client = ServiceClient(base_url, timeout=timeout)
        self.corruption_detected = 0

    def __repr__(self) -> str:
        return f"HttpSink({self.client.base_url!r})"

    # -- plumbing ------------------------------------------------------------

    def _fetch(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            return self.client.artifact(key, raw=True)
        except ServiceError as error:
            raise HttpSinkError(
                f"artifact service rejected GET {key!r}: {error}"
            ) from error
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise HttpSinkError(
                f"artifact service unreachable at {self.client.base_url}: {error}"
            ) from error

    # -- ResultSink contract -------------------------------------------------

    def load(self, key, spec):
        artifact = self._fetch(key)
        if artifact is None or artifact.get("spec") != spec:
            return None  # miss, hash collision or stale format: recompute
        payload = artifact.get("payload")
        recorded = artifact.get("checksum")
        if recorded is not None and recorded != payload_checksum(payload):
            self.corruption_detected += 1
            warnings.warn(
                f"remote artifact {key} failed checksum verification; "
                "treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return payload

    def store(self, key, spec, kind, payload):
        try:
            self.client.store_artifact(key, spec, kind, payload)
        except ServiceError as error:
            raise HttpSinkError(
                f"artifact service rejected PUT {key!r}: {error}"
            ) from error
        except (urllib.error.URLError, OSError) as error:
            raise HttpSinkError(
                f"artifact service unreachable at {self.client.base_url}: {error}"
            ) from error

    def keys(self) -> List[str]:
        try:
            return self.client.artifact_keys()
        except (ServiceError, urllib.error.URLError, OSError) as error:
            raise HttpSinkError(
                f"artifact service unreachable at {self.client.base_url}: {error}"
            ) from error

    def __contains__(self, key):
        return self._fetch(key) is not None

    def artifact(self, key):
        return self._fetch(key)


__all__ = ["HttpSink", "HttpSinkError"]
