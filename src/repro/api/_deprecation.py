"""Warn-exactly-once plumbing for the pre-``repro.api`` entry points.

The old entry points (``run_trials``, ``sweep``) keep working as thin
adapters over :mod:`repro.api`, but emit a :class:`DeprecationWarning` the
first time each is used in a process.  A module-level registry (rather than
Python's per-call-site ``__warningregistry__``) guarantees *exactly one*
warning per shim regardless of how many call sites exist, which is what the
CI deprecation check asserts.
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` is seen."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_warnings() -> None:
    """Forget which shims have warned (test helper)."""
    _WARNED.clear()


__all__ = ["reset_warnings", "warn_once"]
