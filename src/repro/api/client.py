"""A typed HTTP client for the experiment service (``repro serve``).

:class:`ServiceClient` wraps every endpoint the service exposes — submit,
status, Server-Sent-Events, artifacts, metrics, and the coordinator's lease
surface — behind one small, dependency-free (urllib) object, so programs,
examples and tests stop hand-rolling ``urllib.request`` calls against string
paths.  Error responses raise :class:`ServiceError` carrying the HTTP status
and the service's JSON error message.

Quickstart::

    from repro.api import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    run = client.submit({"label": "demo", "kind": "trials",
                         "network": "clique", "params": {"n": 32},
                         "trials": 3, "seed": 0})
    for event in client.events(run["id"]):       # live SSE, replay included
        print(event["kind"], event.get("state"))
    detail = client.run(run["id"])               # terminal state + result
    artifact = client.artifact(detail["result"]["points"][0]["key"])

Artifact fidelity: by default :meth:`artifact` asks the service for the raw
(Python-extended) JSON encoding, in which non-finite floats survive as
``Infinity``/``NaN`` literals exactly as the sinks store them — the encoding
:class:`repro.distributed.HttpSink` needs for checksum verification.  Pass
``raw=False`` for the strict RFC-8259 body (non-finite floats as strings),
the form non-Python consumers see.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

#: Socket timeout (seconds) for one request/read when none is given.
DEFAULT_TIMEOUT = 30.0

#: Socket timeout for SSE reads; must exceed the server's heartbeat interval.
DEFAULT_STREAM_TIMEOUT = 120.0


class ServiceError(RuntimeError):
    """An HTTP error response from the service, with its JSON message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _scenario_dicts(scenarios: Any) -> List[Dict[str, Any]]:
    """Coerce Scenario objects / dicts / sequences into request dicts."""
    if hasattr(scenarios, "to_dict"):
        return [scenarios.to_dict()]
    if isinstance(scenarios, dict):
        return [dict(scenarios)]
    out = []
    for scenario in scenarios:
        out.append(scenario.to_dict() if hasattr(scenario, "to_dict") else dict(scenario))
    return out


class ServiceClient:
    """Typed access to one experiment service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r})"

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        document: Any = None,
        timeout: Optional[float] = None,
    ):
        """One request; returns the open response (caller reads/closes)."""
        data = None
        headers = {}
        if document is not None:
            # allow_nan: artifact payloads legitimately carry inf/nan spread
            # times; the service parses Python-extended JSON bodies.
            data = json.dumps(document, allow_nan=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                message = json.loads(body)["error"]
            except (ValueError, KeyError, TypeError):
                message = body.decode("utf-8", "replace") or error.reason
            raise ServiceError(error.code, message) from error

    def _json(self, method: str, path: str, document: Any = None,
              timeout: Optional[float] = None) -> Any:
        with self._request(method, path, document, timeout=timeout) as response:
            return json.loads(response.read())

    # -- service surface -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def version(self) -> Dict[str, Any]:
        """``GET /version``."""
        return self._json("GET", "/version")

    def metrics(self) -> str:
        """``GET /metrics`` (Prometheus text exposition, unparsed)."""
        with self._request("GET", "/metrics") as response:
            return response.read().decode("utf-8")

    def submit(self, scenarios: Any) -> Dict[str, Any]:
        """``POST /runs``: submit scenarios; returns the accepted run summary.

        Accepts a :class:`repro.scenarios.Scenario`, a scenario dict, or a
        sequence of either.
        """
        return self._json("POST", "/runs", {"scenarios": _scenario_dicts(scenarios)})

    def runs(self) -> List[Dict[str, Any]]:
        """``GET /runs``: every run summary, oldest first."""
        return self._json("GET", "/runs")["runs"]

    def run(self, run_id: str) -> Dict[str, Any]:
        """``GET /runs/{id}``: one run's status + result document."""
        return self._json("GET", f"/runs/{run_id}")

    def events(
        self,
        run_id: str,
        start: int = 0,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """``GET /runs/{id}/events``: iterate the SSE feed as parsed dicts.

        Replays from the start (or from sequence number ``start``), then
        follows live until the run closes its stream.  ``timeout`` bounds a
        single socket read; the server's keep-alive heartbeats keep a healthy
        but quiet stream under it.
        """
        path = f"/runs/{run_id}/events"
        if start:
            path += f"?from={int(start)}"
        response = self._request(
            "GET", path,
            timeout=DEFAULT_STREAM_TIMEOUT if timeout is None else timeout,
        )
        with response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("data: "):
                    yield json.loads(line[len("data: "):])

    def wait(self, run_id: str, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Follow the run's event feed to completion, return its final detail."""
        for _ in self.events(run_id, timeout=timeout):
            pass
        return self.run(run_id)

    # -- artifacts -----------------------------------------------------------

    def artifact_keys(self) -> List[str]:
        """``GET /artifacts``: content-hash keys in the shared sink (sorted)."""
        return self._json("GET", "/artifacts")["keys"]

    def artifact(self, key: str, raw: bool = True) -> Optional[Dict[str, Any]]:
        """``GET /artifacts/{key}``: one stored artifact, or None when absent.

        ``raw=True`` (default) requests the store-fidelity encoding (non-
        finite floats as JSON literals, exactly as sinks persist them);
        ``raw=False`` returns the strict RFC-8259 body.
        """
        path = f"/artifacts/{key}" + ("?raw=1" if raw else "")
        try:
            return self._json("GET", path)
        except ServiceError as error:
            if error.status == 404:
                return None
            raise

    def store_artifact(
        self,
        key: str,
        spec: Dict[str, Any],
        kind: str,
        payload: Dict[str, Any],
        checksum: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``PUT /artifacts/{key}``: idempotent content-addressed write.

        The service verifies ``checksum`` (computed here when omitted)
        against the payload before storing; a key that already exists is a
        no-op (``{"stored": false, "existed": true}``).
        """
        from repro.api.sinks import payload_checksum

        artifact = {
            "key": key,
            "kind": kind,
            "spec": spec,
            "payload": payload,
            "checksum": checksum if checksum is not None else payload_checksum(payload),
        }
        return self._json("PUT", f"/artifacts/{key}", artifact)

    # -- coordinator surface (repro worker) ----------------------------------

    def register_worker(self, name: Optional[str] = None) -> str:
        """``POST /workers``: register with the coordinator; returns a worker id."""
        document: Dict[str, Any] = {} if name is None else {"name": name}
        return self._json("POST", "/workers", document)["worker"]

    def acquire_leases(self, worker: str, max_points: int = 1) -> Dict[str, Any]:
        """``POST /leases``: request up to ``max_points`` point leases.

        Returns ``{"state": "granted"|"busy"|"idle"|"closed",
        "leases": [...]}`` — ``busy`` means open points are leased elsewhere
        (poll again), ``idle`` means no open work exists right now.
        """
        return self._json("POST", "/leases",
                          {"worker": worker, "max_points": max_points})

    def report_lease(
        self,
        lease_id: str,
        worker: str,
        ok: bool,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> Dict[str, Any]:
        """``POST /leases/{id}``: report the leased attempt's outcome.

        ``cached`` marks a success served from the shared sink (the artifact
        already existed) rather than freshly computed.
        """
        document: Dict[str, Any] = {"worker": worker, "status": "ok" if ok else "failed"}
        if cached:
            document["cached"] = True
        if error is not None:
            document["error"] = error
        return self._json("POST", f"/leases/{lease_id}", document)

    def leases(self) -> Dict[str, Any]:
        """``GET /leases``: every task's lease state (coordinator listing)."""
        return self._json("GET", "/leases")


__all__ = [
    "DEFAULT_STREAM_TIMEOUT",
    "DEFAULT_TIMEOUT",
    "ServiceClient",
    "ServiceError",
]
