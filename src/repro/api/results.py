"""Typed results of the public API: ``RunResult``, ``TrialSet``, ``SweepFrame``.

These replace the loose dict payloads that used to travel between the trial
runner, the sweep helper and the CLI.  Each knows how to render itself as the
corresponding ``--json`` document (``as_dict``), and ``TrialSet`` /
``SweepFrame`` keep their numeric columns as numpy arrays so downstream
analysis (slope fits, plotting) works without re-parsing tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.state import SpreadResult
from repro.execution.report import ExecutionReport
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - type-only import (builder imports us)
    from repro.analysis.sweep import SweepResult
    from repro.analysis.trials import TrialSummary
    from repro.api.builder import RunSpec


def _spec_header(spec: "RunSpec", nodes: Any, trials: Any) -> Dict[str, Any]:
    """The shared ``--json`` document header (key order is part of the schema)."""
    document: Dict[str, Any] = {
        "network": spec.network if isinstance(spec.network, str) else None,
        "params": dict(spec.params),
        "algorithm": spec.algorithm,
        "unit": spec.unit,
        "nodes": nodes,
        "trials": trials,
        "seed": spec.seed if isinstance(spec.seed, int) else None,
    }
    return document


@dataclass(frozen=True)
class RunResult:
    """One run of the selected process, with the spec that produced it.

    ``spread`` is the engine-level :class:`repro.core.state.SpreadResult`;
    the headline fields are mirrored as properties so callers rarely need to
    reach through.
    """

    spec: "RunSpec" = field(repr=False)
    spread: SpreadResult

    @property
    def spread_time(self) -> float:
        """Spread time of the run (``inf`` when it hit its horizon)."""
        return self.spread.spread_time

    @property
    def completed(self) -> bool:
        """True when every surviving node was informed in time."""
        return self.spread.completed

    @property
    def n(self) -> int:
        """Number of nodes in the network."""
        return self.spread.n

    @property
    def unit(self) -> str:
        """``"rounds"`` for synchronous runs, ``"time"`` otherwise."""
        return self.spec.unit

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready document describing the run."""
        document = _spec_header(self.spec, self.spread.n, 1)
        del document["trials"]
        if self.spec.algorithm == "async":
            document["variant"] = self.spec.variant
            document["engine"] = self.spec.engine
        document.update(
            {
                "source": self.spread.source,
                "spread_time": self.spread.spread_time,
                "completed": self.spread.completed,
                "steps_used": self.spread.steps_used,
                "events": self.spread.events,
            }
        )
        return document


@dataclass(frozen=True)
class TrialSet:
    """The outcome of repeated independent trials, column-first.

    ``spread_times`` is a float64 array (``inf`` marks timed-out trials).
    ``summary()`` exposes the classic :class:`repro.analysis.trials.TrialSummary`
    statistics object computed over the same values, so every historical
    statistic (mean, median, w.h.p. quantile, confidence intervals) is one
    attribute away and numerically identical to the pre-API code paths.
    """

    spec: "RunSpec" = field(repr=False)
    spread_times: np.ndarray
    results: Tuple[SpreadResult, ...] = ()
    nodes: int = 0
    #: Recovery accounting from a supervised (``.retry(...)``) fan-out.
    execution: Optional[ExecutionReport] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        times = np.asarray(self.spread_times, dtype=np.float64)
        require(times.ndim == 1 and times.size >= 1, "TrialSet needs at least one trial")
        object.__setattr__(self, "spread_times", times)

    def __len__(self) -> int:
        return int(self.spread_times.size)

    @property
    def trials(self) -> int:
        """Number of trials that actually ran (adaptive runs may stop early)."""
        return int(self.spread_times.size)

    @property
    def completed_mask(self) -> np.ndarray:
        """Boolean mask of the trials that finished before their horizon."""
        return np.isfinite(self.spread_times)

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that completed."""
        return float(np.count_nonzero(self.completed_mask)) / self.trials

    @cached_property
    def _summary(self) -> "TrialSummary":
        from repro.analysis.trials import TrialSummary

        return TrialSummary(
            spread_times=[float(value) for value in self.spread_times],
            results=list(self.results),
            whp_quantile=self.spec.whp_quantile,
        )

    def summary(self) -> "TrialSummary":
        """The classic statistics object over these spread times."""
        return self._summary

    @property
    def mean(self) -> float:
        """Mean spread time over completed trials."""
        return self._summary.mean

    @property
    def whp_spread_time(self) -> float:
        """Upper-quantile stand-in for the w.h.p. spread time."""
        return self._summary.whp_spread_time

    def quantile(self, q: float) -> float:
        """Empirical spread-time quantile (numpy-consistent interpolation)."""
        return self._summary.quantile(q)

    def ci_width(self, z: float = 1.96) -> float:
        """Width of the mean's normal-approximation confidence interval."""
        low, high = self._summary.mean_confidence_interval(z)
        return high - low if math.isfinite(low) else math.inf

    def as_dict(self) -> Dict[str, Any]:
        """The ``repro simulate --json`` document for this trial set."""
        document = _spec_header(self.spec, self.nodes, self.trials)
        document["summary"] = self._summary.as_dict()
        if self.spec.algorithm == "async":
            document["variant"] = self.spec.variant
            document["engine"] = self.spec.engine
        if self.execution is not None and not self.execution.clean:
            # Only non-clean runs grow the key, so fault-free documents stay
            # byte-identical to the historical schema.
            document["execution"] = self.execution.as_dict()
        return document


@dataclass(frozen=True)
class SweepFrame:
    """A one-dimensional sweep as aligned columns.

    One :class:`TrialSet` per swept value, plus optional per-point extra
    columns (derived bounds etc.).  ``column(name)`` returns any summary
    statistic or extra as a float64 array aligned with :attr:`values`;
    ``rows()`` flattens to the historical table-row dicts.
    """

    parameter_name: str
    values: Tuple[Any, ...]
    points: Tuple[TrialSet, ...]
    extras: Tuple[Dict[str, float], ...] = ()

    def __post_init__(self):
        require(len(self.values) == len(self.points), "one TrialSet per swept value")
        if not self.extras:
            object.__setattr__(self, "extras", tuple({} for _ in self.values))
        require(len(self.extras) == len(self.values), "one extras dict per swept value")

    def __len__(self) -> int:
        return len(self.values)

    def rows(self) -> List[Dict[str, Any]]:
        """Flat row dicts (parameter value, summary statistics, extras)."""
        rows = []
        for value, point, extra in zip(self.values, self.points, self.extras):
            row: Dict[str, Any] = {self.parameter_name: value}
            row.update(point.summary().as_dict())
            row.update(extra)
            rows.append(row)
        return rows

    def column(self, name: str) -> np.ndarray:
        """One numeric column across the sweep as a float64 array."""
        rows = self.rows()
        require(all(name in row for row in rows), f"unknown column {name!r}")
        return np.asarray([row[name] for row in rows], dtype=np.float64)

    def columns(self) -> Dict[str, np.ndarray]:
        """Every column shared by all rows, keyed by name."""
        rows = self.rows()
        shared = [key for key in rows[0] if all(key in row for row in rows)]
        return {
            key: np.asarray([row[key] for row in rows])
            for key in shared
            if key != self.parameter_name
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready document: the swept parameter and the flat rows."""
        return {"parameter": self.parameter_name, "rows": self.rows()}

    def to_sweep_result(self) -> "SweepResult":
        """Adapt to the legacy :class:`repro.analysis.sweep.SweepResult`."""
        from repro.analysis.sweep import SweepPoint, SweepResult

        return SweepResult(
            parameter_name=self.parameter_name,
            points=[
                SweepPoint(value=value, summary=point.summary(), extras=dict(extra))
                for value, point, extra in zip(self.values, self.points, self.extras)
            ],
        )


__all__ = ["RunResult", "SweepFrame", "TrialSet"]
