"""``repro.api`` — the one fluent, typed public surface of the library.

Everything that executes the rumor-spreading engines goes through here: the
fluent builder for programs, the scenario bindings for data-driven workloads,
the streaming observer protocol for anything that watches a run, and the
result-sink abstraction behind the pipeline's artifact cache.

Quickstart::

    from repro import api

    # one run
    result = api.run(network="clique", n=200, seed=0).once()

    # parallel trials with adaptive early stopping
    trials = (
        api.run(network="edge-markovian", n=128, birth=0.4, death=0.2, seed=7)
        .trials(until_ci_width=2.0, max_trials=200)
        .workers(4)
        .collect()
    )

    # a sweep, as aligned columns
    frame = api.run(network="clique", seed=3).trials(20).sweep([64, 128, 256])
    frame.column("mean")

The legacy entry points (``AsynchronousRumorSpreading(...).run`` for direct
engine access, and the deprecated ``run_trials`` / ``sweep`` helpers) remain
available, but new code — and every internal consumer: the CLI, the
experiments E1–E9, the scenario measurements — speaks this API.
"""

from repro.api.builder import (
    NetworkLike,
    RunBuilder,
    RunSpec,
    bind_point,
    run,
    sweep_scenario,
)
from repro.api.client import (
    DEFAULT_STREAM_TIMEOUT,
    DEFAULT_TIMEOUT,
    ServiceClient,
    ServiceError,
)
from repro.api.observers import (
    CIWidthRule,
    EventLog,
    ObserverChain,
    RunObserver,
    StructuredObserver,
    event_to_dict,
)
from repro.api.results import RunResult, SweepFrame, TrialSet
from repro.api.sinks import (
    LocalDirSink,
    MemorySink,
    NullSink,
    ResultSink,
    payload_checksum,
    sink_from_url,
)
from repro.checks import Check, CheckReport, CheckResult, evaluate_checks
from repro.execution import ChaosMonkey, ExecutionReport, RetryPolicy

__all__ = [
    "CIWidthRule",
    "ChaosMonkey",
    "Check",
    "CheckReport",
    "CheckResult",
    "EventLog",
    "ExecutionReport",
    "LocalDirSink",
    "MemorySink",
    "NetworkLike",
    "NullSink",
    "ObserverChain",
    "ResultSink",
    "RetryPolicy",
    "RunBuilder",
    "RunObserver",
    "RunResult",
    "RunSpec",
    "ServiceClient",
    "ServiceError",
    "StructuredObserver",
    "SweepFrame",
    "TrialSet",
    "bind_point",
    "evaluate_checks",
    "event_to_dict",
    "payload_checksum",
    "run",
    "sink_from_url",
    "sweep_scenario",
]
