"""Result sinks: pluggable artifact stores for computed payloads.

The experiment pipeline used to hard-code its JSON artifact cache; the
content-addressed keys make that store a clean interface instead.  A
:class:`ResultSink` maps ``(key, spec)`` to a JSON payload:

* ``load(key, spec)`` returns the stored payload, or ``None`` on a miss —
  including when something *is* stored under ``key`` but its recorded spec
  differs (hash collision or stale format);
* ``store(key, spec, kind, payload)`` persists a freshly computed payload.

Built-in sinks: :class:`LocalDirSink` (one JSON file per key in a directory —
the pipeline's historical cache, byte-for-byte), :class:`MemorySink` (a dict,
for tests and composition) and :class:`NullSink` (never stores anything).
A shared artifact store for cross-machine reuse (see ROADMAP) is another
``ResultSink`` implementation away.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Dict, Optional, Union


class ResultSink(ABC):
    """Abstract payload store keyed by content hash + canonical spec."""

    @abstractmethod
    def load(self, key: str, spec: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Return the payload stored under ``key`` (``None`` on any miss)."""

    @abstractmethod
    def store(self, key: str, spec: Dict[str, Any], kind: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` with its identifying ``spec``."""


class NullSink(ResultSink):
    """A sink that stores nothing (caching disabled)."""

    def load(self, key, spec):
        return None

    def store(self, key, spec, kind, payload):
        return None


class MemorySink(ResultSink):
    """An in-process dict-backed sink (tests, composition, future tiering)."""

    def __init__(self):
        self._artifacts: Dict[str, Dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._artifacts)

    def load(self, key, spec):
        artifact = self._artifacts.get(key)
        if artifact is None or artifact.get("spec") != spec:
            return None
        return artifact.get("payload")

    def store(self, key, spec, kind, payload):
        self._artifacts[key] = {"key": key, "kind": kind, "spec": spec, "payload": payload}


class LocalDirSink(ResultSink):
    """One JSON artifact per key in a local directory.

    The artifact format is exactly the pipeline's historical cache format
    (``{"key", "kind", "spec", "payload"}``, sorted keys), so existing cache
    directories keep working.  Writes go through write-then-rename so
    concurrent runs never observe a torn artifact; unreadable or corrupt
    artifacts read as misses and are recomputed.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key, spec):
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError):
            return None  # unreadable/corrupt artifact: recompute
        if artifact.get("spec") != spec:
            return None  # hash collision or stale format: recompute
        return artifact.get("payload")

    def store(self, key, spec, kind, payload):
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {"key": key, "kind": kind, "spec": spec, "payload": payload}
        # Write-then-rename so concurrent runs never observe a torn artifact.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise


__all__ = ["LocalDirSink", "MemorySink", "NullSink", "ResultSink"]
