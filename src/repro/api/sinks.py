"""Result sinks: pluggable artifact stores for computed payloads.

The experiment pipeline used to hard-code its JSON artifact cache; the
content-addressed keys make that store a clean interface instead.  A
:class:`ResultSink` maps ``(key, spec)`` to a JSON payload:

* ``load(key, spec)`` returns the stored payload, or ``None`` on a miss —
  including when something *is* stored under ``key`` but its recorded spec
  differs (hash collision or stale format), or when the stored payload fails
  its sha256 checksum (silent bit-rot);
* ``store(key, spec, kind, payload)`` persists a freshly computed payload.

Built-in sinks: :class:`LocalDirSink` (one JSON file per key in a directory —
the pipeline's historical cache, plus a ``checksum`` field), :class:`MemorySink`
(a dict, for tests and composition), :class:`NullSink` (never stores
anything) and :class:`repro.distributed.HttpSink` (a shared store served by
a remote ``repro serve`` process).  :func:`sink_from_url` constructs any of
them from one ``scheme://`` string — the form the CLI's ``--sink`` flag
takes.

Checksum format: ``"sha256:<hex>"`` over the canonical JSON encoding of the
payload (``json.dumps(payload, sort_keys=True, allow_nan=True)``).  Artifacts
written before the checksum existed load fine (no field, nothing to verify);
a *mismatching* checksum reads as a miss, emits a warning and increments the
sink's ``corruption_detected`` counter so the pipeline's
:class:`repro.execution.ExecutionReport` can surface it.
"""

from __future__ import annotations

import copy
import json
import hashlib
import os
import tempfile
import warnings
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


def payload_checksum(payload: Dict[str, Any]) -> str:
    """``"sha256:<hex>"`` over the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, allow_nan=True)
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultSink(ABC):
    """Abstract payload store keyed by content hash + canonical spec."""

    #: Artifacts rejected because their stored checksum did not verify.
    corruption_detected: int = 0

    @abstractmethod
    def load(self, key: str, spec: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Return the payload stored under ``key`` (``None`` on any miss)."""

    @abstractmethod
    def store(self, key: str, spec: Dict[str, Any], kind: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` with its identifying ``spec``."""

    @abstractmethod
    def keys(self) -> List[str]:
        """The content-hash keys currently stored, in sorted order."""

    def __contains__(self, key: str) -> bool:
        """True when an artifact is stored under ``key`` (spec unverified)."""
        return key in self.keys()

    def artifact(self, key: str) -> Optional[Dict[str, Any]]:
        """The full stored artifact (``key``/``kind``/``spec``/``payload``/
        ``checksum``) for ``key``, or ``None`` when the sink holds nothing
        servable under it.

        Unlike :meth:`load` this does not require the caller to know the
        spec — it is the retrieval path for consumers addressing artifacts
        purely by content hash (``GET /artifacts/{key}``); the embedded
        checksum lets them verify the payload end to end.  The base
        implementation serves nothing.
        """
        return None


class NullSink(ResultSink):
    """A sink that stores nothing (caching disabled)."""

    def load(self, key, spec):
        return None

    def store(self, key, spec, kind, payload):
        return None

    def keys(self):
        return []

    def __contains__(self, key):
        return False


class MemorySink(ResultSink):
    """An in-process dict-backed sink (tests, composition, future tiering).

    Payloads are deep-copied on both store and load so callers mutating a
    payload dict — before or after the sink sees it — can never corrupt what
    later loads observe.
    """

    def __init__(self):
        self._artifacts: Dict[str, Dict[str, Any]] = {}
        self.corruption_detected = 0

    def __len__(self) -> int:
        return len(self._artifacts)

    def load(self, key, spec):
        artifact = self._artifacts.get(key)
        if artifact is None or artifact.get("spec") != spec:
            return None
        payload = artifact.get("payload")
        recorded = artifact.get("checksum")
        if recorded is not None and recorded != payload_checksum(payload):
            self.corruption_detected += 1
            warnings.warn(
                f"artifact {key} failed checksum verification; treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return copy.deepcopy(payload)

    def store(self, key, spec, kind, payload):
        payload = copy.deepcopy(payload)
        self._artifacts[key] = {
            "key": key,
            "kind": kind,
            "spec": copy.deepcopy(spec),
            "payload": payload,
            "checksum": payload_checksum(payload),
        }

    def keys(self):
        return sorted(self._artifacts)

    def __contains__(self, key):
        return key in self._artifacts

    def artifact(self, key):
        artifact = self._artifacts.get(key)
        return copy.deepcopy(artifact) if artifact is not None else None


class LocalDirSink(ResultSink):
    """One JSON artifact per key in a local directory.

    The artifact format is the pipeline's historical cache format
    (``{"key", "kind", "spec", "payload"}``, sorted keys) plus a
    ``checksum`` field over the payload, so existing cache directories keep
    working (legacy artifacts simply carry no checksum to verify).  Writes go
    through write-then-rename so concurrent runs never observe a torn
    artifact; unreadable, corrupt or checksum-mismatching artifacts read as
    misses and are recomputed.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.corruption_detected = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key, spec):
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError):
            return None  # unreadable/corrupt artifact: recompute
        if artifact.get("spec") != spec:
            return None  # hash collision or stale format: recompute
        payload = artifact.get("payload")
        recorded = artifact.get("checksum")
        if recorded is not None and recorded != payload_checksum(payload):
            self.corruption_detected += 1
            warnings.warn(
                f"artifact {path} failed checksum verification; treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return payload

    def keys(self):
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def __contains__(self, key):
        return self._path(key).is_file()

    def artifact(self, key):
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None  # absent, unreadable or torn: nothing servable

    def store(self, key, spec, kind, payload):
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "key": key,
            "kind": kind,
            "spec": spec,
            "payload": payload,
            "checksum": payload_checksum(payload),
        }
        # Write-then-rename so concurrent runs never observe a torn artifact.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise


def sink_from_url(url: Union[str, Path]) -> ResultSink:
    """Construct a sink from a URL — the CLI's ``--sink`` flag semantics.

    ============================  ===========================================
    URL                           Sink
    ============================  ===========================================
    ``file:///var/cache/repro``   :class:`LocalDirSink` on that directory
    ``memory://``                 a fresh in-process :class:`MemorySink`
    ``null://``                   :class:`NullSink` (caching disabled)
    ``http://host:1234``          :class:`repro.distributed.HttpSink` against
                                  that service (``https://`` likewise)
    ``some/plain/path``           :class:`LocalDirSink` (no scheme = a
                                  directory path, matching ``--cache-dir``)
    ============================  ===========================================

    Anything else raises ``ValueError``.
    """
    if isinstance(url, Path):
        return LocalDirSink(url)
    text = str(url)
    if "://" not in text:
        return LocalDirSink(text)
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme == "memory":
        return MemorySink()
    if scheme == "null":
        return NullSink()
    if scheme == "file":
        if not rest:
            raise ValueError("file:// sink URL needs a directory path")
        return LocalDirSink(rest)
    if scheme in ("http", "https"):
        # Imported lazily: repro.distributed sits above repro.api in the
        # layering, so the base sink module cannot import it at load time.
        from repro.distributed.http_sink import HttpSink

        return HttpSink(text)
    raise ValueError(
        f"unknown sink URL scheme {scheme!r} in {text!r} "
        "(expected file://, memory://, null://, http:// or https://)"
    )


__all__ = [
    "LocalDirSink",
    "MemorySink",
    "NullSink",
    "ResultSink",
    "payload_checksum",
    "sink_from_url",
]
