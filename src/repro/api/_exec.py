"""The one trial-execution path behind :mod:`repro.api`.

Everything that runs repeated trials — the fluent builder, the deprecated
:func:`repro.analysis.trials.run_trials` / :func:`repro.analysis.sweep.sweep`
shims, the scenario measurements and the CLI — funnels through
:func:`execute_trials`.  Its contract is exactly the historical trial runner's:

* per-trial generators are spawned from the master seed up front, so trial
  ``i`` consumes the same generator regardless of ``workers`` or of how many
  trials end up running (adaptive early stopping consumes a prefix);
* ``workers > 1`` fans trials over the shared forked process pool
  (:func:`repro.utils.parallel.fork_map`), falling back to the serial loop on
  platforms without ``fork``; for a fixed master seed the parallel path
  returns the same spread times in the same order;
* an optional :class:`repro.api.observers.RunObserver` receives engine-level
  hooks (serial execution only — forked children cannot report back) and an
  ``on_trial`` call per finished trial;
* an optional stop rule (e.g. :class:`repro.api.observers.CIWidthRule`) is
  consulted after every completed trial (serial) or batch of ``workers``
  trials (parallel) and ends the run early.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import SpreadResult
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.execution.policy import RetryPolicy
from repro.execution.report import ExecutionReport
from repro.utils.parallel import fork_map
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import require, require_node_count


def _prewarm_static(network: object) -> None:
    """Materialise a static network's CSR snapshot before forking workers.

    The conversion cache is identity-keyed on the network object, so doing it
    once in the parent lets every forked child inherit the adapter through
    copy-on-write memory instead of re-converting per sub-batch.
    """
    if isinstance(network, StaticDynamicNetwork):
        network.materialise()


def _run_batch(
    runner: Callable[..., SpreadResult],
    factory: Callable[[], object],
    generators: Sequence[np.random.Generator],
    source: Optional[Hashable],
    workers: int,
    run_kwargs: Dict,
    policy: Optional[RetryPolicy] = None,
    report: Optional[ExecutionReport] = None,
) -> Optional[List[SpreadResult]]:
    """Fan one batch of trials over a process pool; ``None`` without fork.

    The closure (runner, factory, generators) reaches the workers through the
    inherited memory of :func:`repro.utils.parallel.fork_map`, so arbitrary
    lambdas and bound methods work without being picklable.  Trials are pure
    functions of their spawned generator, so an optional supervised
    ``policy`` can retry a killed or failed trial bit-identically.
    """

    def one_trial(index: int) -> SpreadResult:
        network = factory()
        return runner(network, source=source, rng=generators[index], **run_kwargs)

    return fork_map(one_trial, range(len(generators)), workers,
                    policy=policy, report=report)


def execute_trials(
    runner: Callable[..., SpreadResult],
    factory: Callable[[], object],
    trials: int,
    rng: RngLike = None,
    source: Optional[Hashable] = None,
    workers: int = 1,
    run_kwargs: Optional[Dict] = None,
    observer=None,
    stop_rule=None,
    keep_results: bool = False,
    policy: Optional[RetryPolicy] = None,
    report: Optional[ExecutionReport] = None,
) -> Tuple[List[float], List[SpreadResult], Optional[int]]:
    """Run up to ``trials`` independent trials and return their outcomes.

    Returns ``(spread_times, kept_results, n)`` where ``kept_results`` is
    empty unless ``keep_results`` and ``n`` is the node count observed on the
    first trial (``None`` when no trial ran — impossible since ``trials >= 1``).
    With ``stop_rule`` set, ``trials`` is the maximum and the run ends as soon
    as ``stop_rule.done(spread_times)`` is True.
    """
    require_node_count(trials, minimum=1, name="trials")
    require(
        isinstance(workers, int) and workers >= 1,
        f"workers must be a positive integer, got {workers!r}",
    )
    run_kwargs = {} if run_kwargs is None else dict(run_kwargs)
    generators = spawn_rngs(rng, trials)
    if workers > 1 and trials > 1:
        # Shared-instance factories hand the same network object to every
        # forked child; convert its snapshot once here so the children do
        # not each redo the CSR adaptation.
        _prewarm_static(factory())

    spread_times: List[float] = []
    kept: List[SpreadResult] = []
    n: Optional[int] = None

    def consume(index: int, result: SpreadResult) -> None:
        nonlocal n
        spread_times.append(result.spread_time)
        if n is None:
            n = result.n
        if keep_results:
            kept.append(result)
        if observer is not None:
            observer.on_trial(index, result)

    if stop_rule is None and workers > 1 and trials > 1:
        # Non-adaptive parallel fast path: one fan-out over every trial.
        results = _run_batch(runner, factory, generators, source, workers, run_kwargs,
                             policy=policy, report=report)
        if results is not None:
            for index, result in enumerate(results):
                consume(index, result)
            return spread_times, kept, n

    serial_kwargs = dict(run_kwargs)
    if observer is not None:
        # Engine-level hooks fire only on the serial path; forked children
        # cannot report back to the parent process.
        serial_kwargs["observer"] = observer

    index = 0
    # Batches grow geometrically (workers, 2·workers, ... up to 4·workers)
    # so an adaptive parallel run forks O(log) pools instead of one per
    # `workers` trials, while keeping the trial schedule deterministic.
    batch_size = workers
    while index < trials:
        if stop_rule is not None and workers > 1:
            batch = generators[index : index + batch_size]
            results = _run_batch(runner, factory, batch, source, workers, run_kwargs,
                                 policy=policy, report=report)
            if results is not None:
                for result in results:
                    consume(index, result)
                    index += 1
                if stop_rule.done(spread_times):
                    break
                batch_size = min(batch_size * 2, 4 * workers)
                continue
        network = factory()
        result = runner(network, source=source, rng=generators[index], **serial_kwargs)
        consume(index, result)
        index += 1
        if stop_rule is not None and stop_rule.done(spread_times):
            break

    return spread_times, kept, n


def execute_batched(
    process,
    network,
    trials: int,
    rng: RngLike = None,
    source: Optional[Hashable] = None,
    max_time: Optional[float] = None,
    keep_results: bool = False,
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    report: Optional[ExecutionReport] = None,
) -> Tuple[List[float], List[SpreadResult], Optional[int]]:
    """Run ``trials`` trials through a batch-capable process in one call.

    The vectorised counterpart of :func:`execute_trials` for processes that
    expose ``run_batch`` (currently
    :class:`repro.core.batched.BatchedRumorSpreading`).  All trials share one
    network realisation; randomness comes from one spawned generator per
    trial, drawn here so that ``workers > 1`` can shard the trial axis into
    contiguous sub-batches over the fork pool — each shard consumes exactly
    its trials' generators, so the sharded results are bit-identical to the
    single-process batch (and to any other worker count).  Falls back to one
    unsharded batch on platforms without ``fork``.  Returns the same
    ``(spread_times, kept_results, n)`` triple as :func:`execute_trials`.
    """
    require(
        isinstance(workers, int) and workers >= 1,
        f"workers must be a positive integer, got {workers!r}",
    )
    generators = spawn_rngs(rng, trials)
    _prewarm_static(network)

    results: Optional[List[SpreadResult]] = None
    if workers > 1 and trials > 1:
        shards = min(workers, trials)
        # Contiguous, near-even spans: shard i gets trials [bounds[i], bounds[i+1]).
        bounds = np.linspace(0, trials, shards + 1).astype(int)
        spans = [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(shards)
            if bounds[i] < bounds[i + 1]
        ]

        def one_shard(span: Tuple[int, int]) -> List[SpreadResult]:
            lo, hi = span
            return process.run_batch(
                network,
                hi - lo,
                source=source,
                max_time=max_time,
                generators=generators[lo:hi],
            )

        sharded = fork_map(one_shard, spans, workers, policy=policy, report=report)
        if sharded is not None:
            results = [result for shard in sharded for result in shard]
    if results is None:
        results = process.run_batch(
            network, trials, source=source, max_time=max_time, generators=generators
        )

    spread_times = [result.spread_time for result in results]
    kept = list(results) if keep_results else []
    return spread_times, kept, results[0].n


__all__ = ["execute_batched", "execute_trials"]
