"""Streaming run observers: one hook interface for everything that watches a run.

Progress bars, live metrics, early stopping and (per the roadmap) remote
execution all need the same thing: a stream of events out of a running
simulation.  :class:`RunObserver` is that stream's receiver.  Both engines
(asynchronous boundary/naive and synchronous) accept an ``observer`` argument
on ``run`` and feed it:

``on_snapshot(step, snapshot, informed_count)``
    A new snapshot ``G(step)`` was exposed (both engines; for the synchronous
    engine this fires at the beginning of every round).
``on_event(time, node, informed_count)``
    ``node`` became informed at ``time`` (continuous time for asynchronous
    runs, the round index for synchronous runs).  ``informed_count`` is the
    number of informed nodes *after* the event.
``on_round(round_index, informed_count)``
    A synchronous round finished (synchronous engine only).
``on_complete(result)``
    The run ended; ``result`` is the final :class:`repro.core.state.SpreadResult`.
``on_trial(index, result)``
    Trial-level hook fired by the :mod:`repro.api` trial executor after each
    trial of a multi-trial run (not by the engines themselves).

All methods are no-ops on the base class, so observers override only what
they need.  Observers attached via :meth:`repro.api.RunBuilder.observe` are
threaded into the engines for serial execution; with ``workers > 1`` the
engine-level hooks fire inside the worker processes (invisible to the parent)
and only ``on_trial`` is replayed in the parent as results are collected.
"""

from __future__ import annotations

import math
import statistics
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api <- core)
    from repro.core.state import SpreadResult
    from repro.graphs.csr import CsrSnapshot


class RunObserver:
    """Base observer: every hook is a no-op.  Subclass and override."""

    def on_snapshot(self, step: int, snapshot: "CsrSnapshot", informed_count: int) -> None:
        """A new snapshot was exposed at ``step``."""

    def on_event(self, time: float, node: Hashable, informed_count: int) -> None:
        """``node`` became informed at ``time``."""

    def on_round(self, round_index: int, informed_count: int) -> None:
        """A synchronous round finished."""

    def on_complete(self, result: "SpreadResult") -> None:
        """The run ended with ``result``."""

    def on_trial(self, index: int, result: "SpreadResult") -> None:
        """Trial ``index`` of a multi-trial run finished with ``result``."""


class ObserverChain(RunObserver):
    """Fans every hook out to an ordered list of observers."""

    def __init__(self, observers: Sequence[RunObserver]):
        self.observers: Tuple[RunObserver, ...] = tuple(observers)

    def on_snapshot(self, step, snapshot, informed_count) -> None:
        for observer in self.observers:
            observer.on_snapshot(step, snapshot, informed_count)

    def on_event(self, time, node, informed_count) -> None:
        for observer in self.observers:
            observer.on_event(time, node, informed_count)

    def on_round(self, round_index, informed_count) -> None:
        for observer in self.observers:
            observer.on_round(round_index, informed_count)

    def on_complete(self, result) -> None:
        for observer in self.observers:
            observer.on_complete(result)

    def on_trial(self, index, result) -> None:
        for observer in self.observers:
            observer.on_trial(index, result)


class EventLog(RunObserver):
    """Records every hook call as a ``(kind, payload...)`` tuple.

    Useful for tests (event-ordering assertions) and for debugging a
    construction's adaptive behaviour; ``events`` holds tuples
    ``("snapshot", step, informed)``, ``("event", time, node, informed)``,
    ``("round", round_index, informed)``, ``("complete", spread_time)`` and
    ``("trial", index, spread_time)`` in arrival order.
    """

    def __init__(self):
        self.events: List[tuple] = []

    def on_snapshot(self, step, snapshot, informed_count) -> None:
        self.events.append(("snapshot", step, informed_count))

    def on_event(self, time, node, informed_count) -> None:
        self.events.append(("event", time, node, informed_count))

    def on_round(self, round_index, informed_count) -> None:
        self.events.append(("round", round_index, informed_count))

    def on_complete(self, result) -> None:
        self.events.append(("complete", result.spread_time))

    def on_trial(self, index, result) -> None:
        self.events.append(("trial", index, result.spread_time))

    def of_kind(self, kind: str) -> List[tuple]:
        """The recorded events of one kind, in arrival order."""
        return [event for event in self.events if event[0] == kind]


#: Field names of each :class:`EventLog` tuple kind, in tuple order.  This is
#: the wire schema of the streaming protocol: :func:`event_to_dict` zips a
#: recorded tuple with these names, and :class:`StructuredObserver` emits the
#: same dicts live — so a serialized stream and a replayed log are comparable
#: element by element.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "snapshot": ("step", "informed"),
    "event": ("time", "node", "informed"),
    "round": ("round", "informed"),
    "complete": ("spread_time",),
    "trial": ("index", "spread_time"),
}


def _json_value(value: Any) -> Any:
    """Coerce one event payload value to a plain JSON type.

    Numpy scalars become Python numbers, tuples become lists, and anything
    else non-primitive (an exotic node label) falls back to ``str`` so the
    stream never fails to serialize mid-run.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_value(inner) for inner in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def event_to_dict(event: Sequence) -> Dict[str, Any]:
    """Serialize one :class:`EventLog` tuple to a JSON-ready dict.

    ``("event", 1.5, 3, 2)`` becomes ``{"kind": "event", "time": 1.5,
    "node": 3, "informed": 2}``; the field names per kind are
    :data:`EVENT_FIELDS`.  This is the single tuple → wire-document mapping
    used by both the replay path (serializing a recorded log) and the live
    path (:class:`StructuredObserver`), so the two are interchangeable.
    """
    kind = event[0]
    if kind not in EVENT_FIELDS:
        raise ValueError(
            f"unknown observer event kind {kind!r}; known kinds: {sorted(EVENT_FIELDS)}"
        )
    payload = event[1:]
    fields = EVENT_FIELDS[kind]
    if len(payload) != len(fields):
        raise ValueError(
            f"{kind!r} event carries {len(payload)} values, expected {len(fields)}"
        )
    document: Dict[str, Any] = {"kind": kind}
    for name, value in zip(fields, payload):
        document[name] = _json_value(value)
    return document


class StructuredObserver(RunObserver):
    """Forwards every hook as one JSON-ready dict to an ``emit`` callable.

    The dicts are exactly :func:`event_to_dict` applied to the tuples an
    :class:`EventLog` would record for the same run, so a live stream fed by
    this observer can be pinned against a replayed log.  ``emit`` is called
    synchronously from the engine thread; hand it something cheap (a queue
    append, an event-stream emit).
    """

    def __init__(self, emit: Callable[[Dict[str, Any]], Any]):
        self._emit = emit

    def on_snapshot(self, step, snapshot, informed_count) -> None:
        self._emit(event_to_dict(("snapshot", step, informed_count)))

    def on_event(self, time, node, informed_count) -> None:
        self._emit(event_to_dict(("event", time, node, informed_count)))

    def on_round(self, round_index, informed_count) -> None:
        self._emit(event_to_dict(("round", round_index, informed_count)))

    def on_complete(self, result) -> None:
        self._emit(event_to_dict(("complete", result.spread_time)))

    def on_trial(self, index, result) -> None:
        self._emit(event_to_dict(("trial", index, result.spread_time)))


class CIWidthRule:
    """Early-stopping rule: stop once the mean's confidence interval is tight.

    ``done(spread_times)`` is True when the normal-approximation confidence
    interval for the mean spread time (the same ``z``-interval
    :meth:`repro.analysis.trials.TrialSummary.mean_confidence_interval`
    reports) has total width at most ``target`` — i.e.
    ``2 z s / sqrt(k) <= target`` over the ``k`` completed trials.  At least
    ``min_trials`` completed trials are required before stopping, since a
    single observation has no width estimate.
    """

    def __init__(self, target: float, z: float = 1.96, min_trials: int = 2):
        if not (isinstance(target, (int, float)) and target > 0):
            raise ValueError(f"until_ci_width must be a positive number, got {target!r}")
        if min_trials < 2:
            raise ValueError(f"min_trials must be at least 2, got {min_trials}")
        self.target = float(target)
        self.z = float(z)
        self.min_trials = int(min_trials)

    def width(self, spread_times: Sequence[float]) -> float:
        """Current confidence-interval width (``inf`` until it is defined)."""
        completed = [value for value in spread_times if math.isfinite(value)]
        if len(completed) < self.min_trials:
            return math.inf
        deviation = statistics.stdev(completed)
        return 2.0 * self.z * deviation / math.sqrt(len(completed))

    def done(self, spread_times: Sequence[float]) -> bool:
        """True when enough trials have run for the target width."""
        completed = [value for value in spread_times if math.isfinite(value)]
        if len(completed) < self.min_trials:
            return False
        return self.width(spread_times) <= self.target


__all__ = [
    "CIWidthRule",
    "EVENT_FIELDS",
    "EventLog",
    "ObserverChain",
    "RunObserver",
    "StructuredObserver",
    "event_to_dict",
]
