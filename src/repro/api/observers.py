"""Streaming run observers: one hook interface for everything that watches a run.

Progress bars, live metrics, early stopping and (per the roadmap) remote
execution all need the same thing: a stream of events out of a running
simulation.  :class:`RunObserver` is that stream's receiver.  Both engines
(asynchronous boundary/naive and synchronous) accept an ``observer`` argument
on ``run`` and feed it:

``on_snapshot(step, snapshot, informed_count)``
    A new snapshot ``G(step)`` was exposed (both engines; for the synchronous
    engine this fires at the beginning of every round).
``on_event(time, node, informed_count)``
    ``node`` became informed at ``time`` (continuous time for asynchronous
    runs, the round index for synchronous runs).  ``informed_count`` is the
    number of informed nodes *after* the event.
``on_round(round_index, informed_count)``
    A synchronous round finished (synchronous engine only).
``on_complete(result)``
    The run ended; ``result`` is the final :class:`repro.core.state.SpreadResult`.
``on_trial(index, result)``
    Trial-level hook fired by the :mod:`repro.api` trial executor after each
    trial of a multi-trial run (not by the engines themselves).

All methods are no-ops on the base class, so observers override only what
they need.  Observers attached via :meth:`repro.api.RunBuilder.observe` are
threaded into the engines for serial execution; with ``workers > 1`` the
engine-level hooks fire inside the worker processes (invisible to the parent)
and only ``on_trial`` is replayed in the parent as results are collected.
"""

from __future__ import annotations

import math
import statistics
from typing import TYPE_CHECKING, Hashable, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api <- core)
    from repro.core.state import SpreadResult
    from repro.graphs.csr import CsrSnapshot


class RunObserver:
    """Base observer: every hook is a no-op.  Subclass and override."""

    def on_snapshot(self, step: int, snapshot: "CsrSnapshot", informed_count: int) -> None:
        """A new snapshot was exposed at ``step``."""

    def on_event(self, time: float, node: Hashable, informed_count: int) -> None:
        """``node`` became informed at ``time``."""

    def on_round(self, round_index: int, informed_count: int) -> None:
        """A synchronous round finished."""

    def on_complete(self, result: "SpreadResult") -> None:
        """The run ended with ``result``."""

    def on_trial(self, index: int, result: "SpreadResult") -> None:
        """Trial ``index`` of a multi-trial run finished with ``result``."""


class ObserverChain(RunObserver):
    """Fans every hook out to an ordered list of observers."""

    def __init__(self, observers: Sequence[RunObserver]):
        self.observers: Tuple[RunObserver, ...] = tuple(observers)

    def on_snapshot(self, step, snapshot, informed_count) -> None:
        for observer in self.observers:
            observer.on_snapshot(step, snapshot, informed_count)

    def on_event(self, time, node, informed_count) -> None:
        for observer in self.observers:
            observer.on_event(time, node, informed_count)

    def on_round(self, round_index, informed_count) -> None:
        for observer in self.observers:
            observer.on_round(round_index, informed_count)

    def on_complete(self, result) -> None:
        for observer in self.observers:
            observer.on_complete(result)

    def on_trial(self, index, result) -> None:
        for observer in self.observers:
            observer.on_trial(index, result)


class EventLog(RunObserver):
    """Records every hook call as a ``(kind, payload...)`` tuple.

    Useful for tests (event-ordering assertions) and for debugging a
    construction's adaptive behaviour; ``events`` holds tuples
    ``("snapshot", step, informed)``, ``("event", time, node, informed)``,
    ``("round", round_index, informed)``, ``("complete", spread_time)`` and
    ``("trial", index, spread_time)`` in arrival order.
    """

    def __init__(self):
        self.events: List[tuple] = []

    def on_snapshot(self, step, snapshot, informed_count) -> None:
        self.events.append(("snapshot", step, informed_count))

    def on_event(self, time, node, informed_count) -> None:
        self.events.append(("event", time, node, informed_count))

    def on_round(self, round_index, informed_count) -> None:
        self.events.append(("round", round_index, informed_count))

    def on_complete(self, result) -> None:
        self.events.append(("complete", result.spread_time))

    def on_trial(self, index, result) -> None:
        self.events.append(("trial", index, result.spread_time))

    def of_kind(self, kind: str) -> List[tuple]:
        """The recorded events of one kind, in arrival order."""
        return [event for event in self.events if event[0] == kind]


class CIWidthRule:
    """Early-stopping rule: stop once the mean's confidence interval is tight.

    ``done(spread_times)`` is True when the normal-approximation confidence
    interval for the mean spread time (the same ``z``-interval
    :meth:`repro.analysis.trials.TrialSummary.mean_confidence_interval`
    reports) has total width at most ``target`` — i.e.
    ``2 z s / sqrt(k) <= target`` over the ``k`` completed trials.  At least
    ``min_trials`` completed trials are required before stopping, since a
    single observation has no width estimate.
    """

    def __init__(self, target: float, z: float = 1.96, min_trials: int = 2):
        if not (isinstance(target, (int, float)) and target > 0):
            raise ValueError(f"until_ci_width must be a positive number, got {target!r}")
        if min_trials < 2:
            raise ValueError(f"min_trials must be at least 2, got {min_trials}")
        self.target = float(target)
        self.z = float(z)
        self.min_trials = int(min_trials)

    def width(self, spread_times: Sequence[float]) -> float:
        """Current confidence-interval width (``inf`` until it is defined)."""
        completed = [value for value in spread_times if math.isfinite(value)]
        if len(completed) < self.min_trials:
            return math.inf
        deviation = statistics.stdev(completed)
        return 2.0 * self.z * deviation / math.sqrt(len(completed))

    def done(self, spread_times: Sequence[float]) -> bool:
        """True when enough trials have run for the target width."""
        completed = [value for value in spread_times if math.isfinite(value)]
        if len(completed) < self.min_trials:
            return False
        return self.width(spread_times) <= self.target


__all__ = ["CIWidthRule", "EventLog", "ObserverChain", "RunObserver"]
