"""The fluent, typed entry point: ``run(...) → RunBuilder → typed results``.

One builder covers every execution shape the library supports::

    from repro import api

    api.run(network="clique", n=200).once()                      # RunResult
    api.run(network="clique", n=200).trials(50).workers(4).collect()   # TrialSet
    api.run(network="edge-markovian", birth=0.4, death=0.2) \
       .engine("naive").trials(20).sweep([64, 128, 256])         # SweepFrame

Network, algorithm, variant, engine and fault options are validated
identically for single runs, repeated trials and sweeps — the same rules the
:class:`repro.scenarios.scenario.Scenario` dataclass and the CLI enforce.
``network`` accepts a registered family name (with parameters), an existing
:class:`repro.dynamics.base.DynamicNetwork` instance, or a factory callable
(zero-argument; for sweeps it receives the swept value, matching the legacy
``sweep`` helper).

Builders are immutable: every configuration method returns a new builder, so
partially configured builders can be shared and specialised freely.
Scenarios bind to the same objects — :func:`bind_point` configures a builder
from one :class:`repro.scenarios.scenario.ScenarioPoint` (seed policy
included), and :func:`sweep_scenario` executes a whole scenario into a
:class:`repro.api.results.SweepFrame`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.trials import DEFAULT_WHP_QUANTILE
from repro.api._exec import execute_batched, execute_trials
from repro.api.observers import CIWidthRule, ObserverChain, RunObserver
from repro.api.results import RunResult, SweepFrame, TrialSet
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.batched import BatchedRumorSpreading, batched_supported
from repro.core.faults import FaultModel, fault_model_from_data
from repro.core.synchronous import SynchronousRumorSpreading
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork
from repro.execution.policy import RetryPolicy
from repro.execution.report import ExecutionReport
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - lazy at runtime (scenarios imports us)
    from repro.scenarios.scenario import Scenario, ScenarioPoint

#: Accepted ``algorithm`` / ``engine`` values (mirrored by scenario files).
ALGORITHMS = ("async", "sync")
ENGINES = ("boundary", "naive", "jit", "batched", "auto")

#: Smallest graph for which ``engine="auto"`` upgrades a single run to the
#: compiled jit kernel (when numba is importable) — below this, compilation
#: and block bookkeeping cost more than the plain boundary loop saves.
AUTO_JIT_MIN_N = 4096

#: Accepted ``network`` forms: family name, live network, or factory callable.
NetworkLike = Union[str, DynamicNetwork, Callable[..., DynamicNetwork]]


@dataclass(frozen=True)
class RunSpec:
    """The complete, validated description of what a builder will execute."""

    network: NetworkLike = field(repr=False, default=None)
    params: Mapping[str, Any] = field(default_factory=dict)
    algorithm: str = "async"
    variant: str = Variant.PUSH_PULL.value
    engine: str = "boundary"
    faults: Optional[FaultModel] = None
    trials: int = 1
    until_ci_width: Optional[float] = None
    max_trials: Optional[int] = None
    seed: RngLike = None
    network_seed: RngLike = None
    source: Optional[Hashable] = None
    max_time: Optional[float] = None
    whp_quantile: float = DEFAULT_WHP_QUANTILE
    workers: int = 1
    observers: Tuple[RunObserver, ...] = ()
    keep_results: bool = False
    #: Optional supervised retry/timeout policy for parallel trial fan-outs.
    retry: Optional[RetryPolicy] = field(repr=False, default=None)
    #: Internal: raw runner override used by the legacy shims.
    runner: Optional[Callable] = field(repr=False, default=None)
    #: Internal: extra keyword arguments forwarded verbatim to the runner.
    run_kwargs: Mapping[str, Any] = field(repr=False, default_factory=dict)

    @property
    def unit(self) -> str:
        """``"rounds"`` for the synchronous algorithm, ``"time"`` otherwise."""
        return "rounds" if self.algorithm == "sync" else "time"

    def validate(self, sweep_name: Optional[str] = None) -> None:
        """Check the spec the way scenarios and the CLI check their inputs.

        ``sweep_name`` marks a parameter that a sweep will supply per point,
        so required family parameters (``n``) may be swept instead of fixed.
        """
        require(self.network is not None, "a network (family name, instance or factory) is required")
        require(
            self.algorithm in ALGORITHMS,
            f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}",
        )
        require(self.engine in ENGINES, f"engine must be one of {ENGINES}, got {self.engine!r}")
        Variant(self.variant)  # raises ValueError on unknown variants
        if self.algorithm == "sync":
            require(
                self.variant == Variant.PUSH_PULL.value and self.engine == "boundary",
                "variant/engine apply only to the asynchronous algorithm; "
                "leave them at their defaults for algorithm='sync'",
            )
        if self.engine == "batched":
            require(
                not self.observers,
                "engine='batched' does not support observers; streaming hooks "
                "need a serial engine (boundary/jit)",
            )
            require(
                self.until_ci_width is None,
                "engine='batched' does not support adaptive trials "
                "(until_ci_width); use a fixed trial count",
            )
        require(
            isinstance(self.trials, int) and self.trials >= 1,
            f"trials must be a positive integer, got {self.trials!r}",
        )
        require(
            isinstance(self.workers, int) and self.workers >= 1,
            f"workers must be a positive integer, got {self.workers!r}",
        )
        if self.until_ci_width is not None:
            require(
                self.max_trials is not None,
                "adaptive trials need a budget: .trials(until_ci_width=..., max_trials=N)",
            )
            require(
                isinstance(self.max_trials, int) and self.max_trials >= 2,
                f"max_trials must be an integer >= 2, got {self.max_trials!r}",
            )
        if isinstance(self.network, str):
            from repro.scenarios.networks import get_network_family

            # Validate the family name and parameter schema before running.
            params = dict(self.params)
            if sweep_name is not None:
                params.setdefault(sweep_name, 0)
            get_network_family(self.network).resolve_params(params)
        else:
            require(
                not self.params,
                "params apply only when network is a registered family name",
            )


def resolve_process(
    algorithm: str,
    variant: str = Variant.PUSH_PULL.value,
    engine: str = "boundary",
    faults: Optional[FaultModel] = None,
):
    """Build the spreading process for validated algorithm/variant/engine/faults.

    The single selection → process mapping shared by the builder and the
    scenario measurement layer (``repro.scenarios.measurements.process_for``).
    """
    faults = faults if faults is not None else FaultModel.none()
    if algorithm == "sync":
        return SynchronousRumorSpreading(faults=faults)
    if engine == "batched":
        return BatchedRumorSpreading(variant=Variant(variant), faults=faults)
    if engine == "auto":
        # "auto" resolves per terminal: .collect()/.sweep() pick the batched
        # path when the workload supports it; everything else means boundary.
        engine = "boundary"
    return AsynchronousRumorSpreading(
        variant=Variant(variant), engine=engine, faults=faults
    )


class RunBuilder:
    """Immutable fluent configuration for one workload; terminals execute it.

    Configuration methods (:meth:`trials`, :meth:`workers`, :meth:`engine`,
    ...) each return a *new* builder.  Terminal methods run the workload:
    :meth:`once` → :class:`RunResult`, :meth:`collect` → :class:`TrialSet`,
    :meth:`sweep` → :class:`SweepFrame`.
    """

    def __init__(self, spec: RunSpec):
        self._spec = spec

    @property
    def spec(self) -> RunSpec:
        """The current (immutable) run specification."""
        return self._spec

    def _replace(self, **changes) -> "RunBuilder":
        return RunBuilder(dataclasses.replace(self._spec, **changes))

    # -- configuration -----------------------------------------------------

    def algorithm(self, name: str) -> "RunBuilder":
        """Select ``"async"`` (continuous time) or ``"sync"`` (rounds)."""
        return self._replace(algorithm=name)

    def variant(self, name: str) -> "RunBuilder":
        """Select the asynchronous contact variant (push-pull, push, ...)."""
        return self._replace(variant=name)

    def engine(self, name: str) -> "RunBuilder":
        """Select the asynchronous engine.

        ``"boundary"`` (exact cut race, default), ``"naive"`` (clock-tick
        reference), ``"jit"`` (boundary race through the optional
        numba-compiled kernel, numpy fallback when numba is absent),
        ``"batched"`` (all trials vectorised in one ``(trials, n)`` sweep;
        static networks only, no observers or adaptive trials; ``workers``
        shards the trial axis into per-worker sub-batches with bit-identical
        results), or ``"auto"`` (``.collect()``/``.sweep()`` pick the
        batched path when the workload supports it, boundary otherwise;
        ``.once()`` picks the jit kernel for large graphs when numba is
        importable — see :data:`AUTO_JIT_MIN_N`).
        """
        return self._replace(engine=name)

    def params(self, **params) -> "RunBuilder":
        """Merge network-family parameters (family-name networks only)."""
        return self._replace(params={**dict(self._spec.params), **params})

    def faults(self, model: Union[None, FaultModel, Mapping[str, Any]] = None, **fields) -> "RunBuilder":
        """Attach a fault model (a :class:`FaultModel`, a dict, or fields).

        ``.faults(drop_probability=0.2)`` and
        ``.faults({"crash_times": {3: 1.5}})`` are equivalent to building the
        corresponding :class:`repro.core.faults.FaultModel` — validated with
        the same rules scenario files use.
        """
        require(model is None or not fields, "pass a fault model or fields, not both")
        if model is None:
            model = fault_model_from_data(fields)
        elif not isinstance(model, FaultModel):
            model = fault_model_from_data(model)
        return self._replace(faults=model)

    def trials(
        self,
        count: Optional[int] = None,
        *,
        until_ci_width: Optional[float] = None,
        max_trials: Optional[int] = None,
    ) -> "RunBuilder":
        """Set a fixed trial count, or an adaptive CI-width stopping rule.

        ``.trials(200)`` runs exactly 200 trials.
        ``.trials(until_ci_width=0.05, max_trials=400)`` keeps running trials
        until the mean spread time's 95% confidence interval is at most 0.05
        wide (checked after every trial when serial; after every batch —
        geometrically growing from ``workers`` up to ``4·workers`` trials —
        when parallel), stopping at ``max_trials`` regardless.  Trial ``i``
        consumes the same derived generator either way, so an adaptive run's
        results are a prefix of the corresponding fixed-count run's.
        """
        require(
            (count is None) != (until_ci_width is None),
            "pass either a fixed count or until_ci_width=..., not both",
        )
        if count is not None:
            return self._replace(trials=count, until_ci_width=None, max_trials=None)
        return self._replace(until_ci_width=until_ci_width, max_trials=max_trials)

    def workers(self, count: int) -> "RunBuilder":
        """Fan trials over ``count`` forked worker processes (1 = serial)."""
        return self._replace(workers=count)

    def seed(self, value: RngLike) -> "RunBuilder":
        """Master seed for the trial streams (int, SeedSequence or Generator)."""
        return self._replace(seed=value)

    def network_seed(self, value: RngLike) -> "RunBuilder":
        """Seed for network construction (family-name networks only)."""
        return self._replace(network_seed=value)

    def source(self, node: Hashable) -> "RunBuilder":
        """Start the rumor at ``node`` instead of the network's default."""
        return self._replace(source=node)

    def max_time(self, value: Optional[float]) -> "RunBuilder":
        """Per-run horizon (continuous time; rounds up for synchronous runs).

        ``None`` clears a previously set horizon, falling back to the
        engine's own default limit.
        """
        return self._replace(max_time=value)

    def whp_quantile(self, q: float) -> "RunBuilder":
        """Quantile used as the finite-n w.h.p. spread-time stand-in."""
        return self._replace(whp_quantile=q)

    def observe(self, *observers: RunObserver) -> "RunBuilder":
        """Attach streaming :class:`RunObserver` instances (appended in order)."""
        return self._replace(observers=self._spec.observers + tuple(observers))

    def keep_results(self, keep: bool = True) -> "RunBuilder":
        """Retain full :class:`SpreadResult` objects on the trial set."""
        return self._replace(keep_results=keep)

    def retry(self, policy: Optional[RetryPolicy] = None, **fields) -> "RunBuilder":
        """Supervise parallel trial fan-outs with a retry/timeout policy.

        ``.retry(max_attempts=3, timeout=30.0)`` builds the corresponding
        :class:`repro.execution.RetryPolicy`; pass a policy instance to reuse
        one.  Trials are pure functions of their spawned generators, so
        retried trials return bit-identical spread times.  The resulting
        :class:`TrialSet` carries an :class:`repro.execution.ExecutionReport`
        on ``.execution`` recording any recovery actions.
        """
        require(policy is None or not fields, "pass a RetryPolicy or fields, not both")
        if policy is None:
            policy = RetryPolicy(**fields)
        return self._replace(retry=policy)

    def _with_runner(self, runner: Callable) -> "RunBuilder":
        """Internal: bypass process resolution (legacy shim support)."""
        return self._replace(runner=runner)

    def _with_run_kwargs(self, **kwargs) -> "RunBuilder":
        """Internal: forward raw keyword arguments to the runner (shims)."""
        return self._replace(run_kwargs={**dict(self._spec.run_kwargs), **kwargs})

    # -- resolution --------------------------------------------------------

    def _observer(self) -> Optional[RunObserver]:
        observers = self._spec.observers
        if not observers:
            return None
        if len(observers) == 1:
            return observers[0]
        return ObserverChain(observers)

    def _runner(self) -> Callable:
        spec = self._spec
        if spec.runner is not None:
            return spec.runner
        return resolve_process(spec.algorithm, spec.variant, spec.engine, spec.faults).run

    def _once_runner(self, network: DynamicNetwork) -> Callable:
        """Engine resolution for :meth:`once`: ``auto`` upgrades huge single runs.

        A single trial cannot amortise the batched path, so ``auto`` here
        means: the compiled jit kernel when numba is importable and the graph
        is at least :data:`AUTO_JIT_MIN_N` nodes (where compilation pays for
        itself), the plain boundary engine otherwise.  ``HAVE_NUMBA`` is read
        at call time so the rule is testable without numba installed.
        """
        spec = self._spec
        if spec.runner is None and spec.engine == "auto" and spec.algorithm == "async":
            from repro.core import kernels

            engine = (
                "jit"
                if kernels.HAVE_NUMBA and network.n >= AUTO_JIT_MIN_N
                else "boundary"
            )
            return resolve_process(spec.algorithm, spec.variant, engine, spec.faults).run
        return self._runner()

    def resolved_engine(self) -> str:
        """The concrete engine :meth:`collect` would execute (``auto`` resolved).

        Useful for profiling and logging: ``engine="auto"`` resolves to
        ``"batched"`` when the workload qualifies for the vectorised path
        (asynchronous algorithm, static network, no streaming hooks, no
        adaptive stop rule) and to the ``execute_trials`` fallback
        (``"boundary"``) otherwise.  Synchronous runs report ``"sync"``;
        explicit engines report themselves.  Building the probe network is
        the only side effect.
        """
        spec = self._spec
        spec.validate()
        if spec.algorithm == "sync":
            return "sync"
        if spec.engine != "auto":
            return spec.engine
        if (
            spec.runner is None
            and not spec.run_kwargs
            and self._observer() is None
            and self._stop_rule() is None
            and batched_supported(self._factory()()) is None
        ):
            return "batched"
        return "boundary"

    def _factory(self, value: Any = None, sweep_name: str = "n") -> Callable[[], DynamicNetwork]:
        spec = self._spec
        network = spec.network
        if isinstance(network, str):
            from repro.scenarios.networks import get_network_family

            family = get_network_family(network)
            merged = dict(spec.params)
            if value is not None:
                merged[sweep_name] = value
            family.resolve_params(merged)  # fail before running anything
            return lambda: family.build(rng=spec.network_seed, **merged)
        if isinstance(network, DynamicNetwork):
            require(value is None, "sweeping needs a family name or factory, not an instance")
            return lambda: network
        if value is None:
            return network
        return lambda: network(value)

    def _run_kwargs(self) -> Dict[str, Any]:
        spec = self._spec
        kwargs: Dict[str, Any] = {}
        if spec.max_time is not None:
            if spec.algorithm == "sync":
                kwargs["max_rounds"] = int(math.ceil(spec.max_time))
            else:
                kwargs["max_time"] = float(spec.max_time)
        kwargs.update(spec.run_kwargs)
        return kwargs

    def _stop_rule(self) -> Optional[CIWidthRule]:
        if self._spec.until_ci_width is None:
            return None
        return CIWidthRule(self._spec.until_ci_width)

    def _trial_budget(self) -> int:
        spec = self._spec
        return spec.max_trials if spec.until_ci_width is not None else spec.trials

    def _execute(self, factory, rng, source, observer, stop_rule, report=None):
        """Run one point's trials: the batched fast path or the trial loop.

        ``engine="batched"`` demands the vectorised path (raising when the
        network is not static); ``engine="auto"`` takes it opportunistically
        — static network, no streaming hooks, no stop rule — and otherwise
        falls back to the boundary engine via :func:`execute_trials`.
        """
        spec = self._spec
        if (
            spec.engine in ("batched", "auto")
            and spec.algorithm == "async"
            and spec.runner is None
            and not spec.run_kwargs
            and observer is None
            and stop_rule is None
        ):
            network = factory()
            reason = batched_supported(network)
            if spec.engine == "batched":
                require(reason is None, reason or "")
            if reason is None:
                return execute_batched(
                    process=BatchedRumorSpreading(
                        variant=Variant(spec.variant),
                        faults=spec.faults,
                    ),
                    network=network,
                    trials=self._trial_budget(),
                    rng=rng,
                    source=source,
                    max_time=spec.max_time,
                    keep_results=spec.keep_results,
                    workers=spec.workers,
                    policy=spec.retry,
                    report=report,
                )
        return execute_trials(
            runner=self._runner(),
            factory=factory,
            trials=self._trial_budget(),
            rng=rng,
            source=source,
            workers=spec.workers,
            run_kwargs=self._run_kwargs(),
            observer=observer,
            stop_rule=stop_rule,
            keep_results=spec.keep_results,
            policy=spec.retry,
            report=report,
        )

    # -- terminals ---------------------------------------------------------

    def once(self, recorder=None, rng: RngLike = None) -> RunResult:
        """Run the process a single time and return a :class:`RunResult`.

        ``recorder`` is an optional :class:`repro.dynamics.base.SnapshotRecorder`
        fed every snapshot; ``rng`` overrides the builder seed for this run
        (the seed is consumed directly, without spawning a trial stream).
        """
        spec = self._spec
        spec.validate()
        kwargs = self._run_kwargs()
        observer = self._observer()
        if observer is not None:
            kwargs["observer"] = observer
        if recorder is not None:
            kwargs["recorder"] = recorder
        network = self._factory()()
        gen = ensure_rng(spec.seed if rng is None else rng)
        result = self._once_runner(network)(network, source=spec.source, rng=gen, **kwargs)
        if observer is not None:
            observer.on_trial(0, result)
        return RunResult(spec=spec, spread=result)

    def collect(self) -> TrialSet:
        """Run the configured trials and return their :class:`TrialSet`."""
        spec = self._spec
        spec.validate()
        report = ExecutionReport() if spec.retry is not None else None
        times, kept, n = self._execute(
            self._factory(), spec.seed, spec.source, self._observer(), self._stop_rule(),
            report=report,
        )
        return TrialSet(
            spec=spec, spread_times=times, results=tuple(kept), nodes=n or 0,
            execution=report,
        )

    def sweep(
        self,
        values: Sequence[Any],
        name: str = "n",
        source_for: Optional[Callable[[Any, DynamicNetwork], Hashable]] = None,
        extras_for: Optional[Callable[[Any, Any], Dict[str, float]]] = None,
    ) -> SweepFrame:
        """Run the trials at every value of ``name`` and return a :class:`SweepFrame`.

        Each point derives its own generator stream from the builder seed
        (point ``i`` is reproducible in isolation), and engine/variant/fault
        options apply to every point — the validation is identical to
        :meth:`collect`.  ``source_for(value, network)`` optionally picks a
        per-point source from a probe network; ``extras_for(value, summary)``
        adds derived columns (e.g. theoretical bounds) to each row.
        """
        spec = self._spec
        spec.validate(sweep_name=name)
        require(len(values) > 0, "sweep requires at least one parameter value")
        observer = self._observer()
        stop_rule = self._stop_rule()
        generators = spawn_rngs(spec.seed, len(values))
        points = []
        extras = []
        for value, point_rng in zip(values, generators):
            factory = self._factory(value, sweep_name=name)
            source = spec.source
            if source_for is not None:
                source = source_for(value, factory())
            report = ExecutionReport() if spec.retry is not None else None
            times, kept, n = self._execute(
                factory, point_rng, source, observer, stop_rule, report=report
            )
            point_spec = spec
            if isinstance(spec.network, str):
                point_spec = dataclasses.replace(
                    spec, params={**dict(spec.params), name: value}
                )
            point = TrialSet(
                spec=point_spec, spread_times=times, results=tuple(kept), nodes=n or 0,
                execution=report,
            )
            points.append(point)
            extras.append(dict(extras_for(value, point.summary())) if extras_for else {})
        return SweepFrame(
            parameter_name=name,
            values=tuple(values),
            points=tuple(points),
            extras=tuple(extras),
        )


def run(
    network: NetworkLike,
    *,
    params: Optional[Mapping[str, Any]] = None,
    algorithm: str = "async",
    variant: str = Variant.PUSH_PULL.value,
    engine: str = "boundary",
    faults: Union[None, FaultModel, Mapping[str, Any]] = None,
    seed: RngLike = None,
    network_seed: RngLike = None,
    source: Optional[Hashable] = None,
    max_time: Optional[float] = None,
    **family_params,
) -> RunBuilder:
    """Start a fluent run description (the main entry point of ``repro.api``).

    ``network`` is a registered family name (parameters via ``params`` or as
    extra keyword arguments, e.g. ``run(network="clique", n=200)``), a live
    :class:`DynamicNetwork`, or a factory callable.  Everything else can also
    be set later on the returned :class:`RunBuilder`.
    """
    merged_params = {**(dict(params) if params else {}), **family_params}
    if not isinstance(faults, (FaultModel, type(None))):
        faults = fault_model_from_data(faults)
    return RunBuilder(
        RunSpec(
            network=network,
            params=merged_params,
            algorithm=algorithm,
            variant=variant,
            engine=engine,
            faults=faults,
            seed=seed,
            network_seed=network_seed,
            source=source,
            max_time=max_time,
        )
    )


def bind_point(point: ScenarioPoint, max_time: Optional[float] = None) -> RunBuilder:
    """Bind one scenario point to a :class:`RunBuilder` (seed policy included).

    The builder reproduces the scenario execution semantics exactly: the
    network is built from the point's network seed stream, trials consume the
    point's trial stream, and algorithm/variant/engine/fault options carry
    over.  ``max_time`` overrides the horizon (the measurement layer passes
    the resolved value, including probe-derived policies); otherwise the
    scenario's explicit ``max_time`` applies.
    """
    scenario = point.scenario
    require(
        scenario.kind in ("trials", "tabs_trials"),
        "only scenarios that run the spreading process bind to run builders, "
        f"got kind {scenario.kind!r}",
    )
    _, run_seq = point.seed_sequences()
    options = scenario.options
    spec = RunSpec(
        network=point.build_network,
        algorithm=scenario.algorithm,
        variant=scenario.variant,
        engine=scenario.engine,
        faults=scenario.fault_model() if scenario.faults else None,
        trials=scenario.trials,
        seed=run_seq,
        max_time=max_time if max_time is not None else scenario.max_time,
        whp_quantile=float(options.get("whp_quantile", DEFAULT_WHP_QUANTILE)),
    )
    builder = RunBuilder(spec)
    until_ci_width = options.get("until_ci_width")
    if until_ci_width is not None:
        builder = builder.trials(
            until_ci_width=float(until_ci_width),
            max_trials=int(options.get("max_trials", scenario.trials)),
        )
    # Fail at bind time the way the terminals would — a scenario declaring an
    # unsupported engine combination errors here, not mid-execution.
    builder.spec.validate()
    return builder


def sweep_scenario(scenario: Scenario) -> SweepFrame:
    """Execute every point of a ``trials`` scenario into a :class:`SweepFrame`.

    Horizons follow the scenario's own rules (explicit ``max_time`` or a
    probe-evaluated ``max_time_policy`` option), so the frame's statistics
    match what the experiment pipeline computes for the same scenario.
    """
    from repro.scenarios.measurements import resolve_max_time

    points = []
    values = []
    for point in scenario.points():
        probe = point.build_network()
        builder = bind_point(point, max_time=resolve_max_time(scenario, probe))
        points.append(builder.collect())
        values.append(point.value)
    return SweepFrame(
        parameter_name=scenario.sweep_name,
        values=tuple(values),
        points=tuple(points),
    )


__all__ = ["NetworkLike", "RunBuilder", "RunSpec", "bind_point", "run", "sweep_scenario"]
