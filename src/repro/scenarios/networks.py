"""The single network registry: family name → dynamic-network builder.

Before this registry existed the CLI, the standard-networks helper and the
individual experiment modules each kept their own table of network
constructors.  Scenario resolution now goes through one place: a *family* is
a named builder with a declared parameter schema (names, defaults, which are
required), so

* the CLI can validate that a flag applies to the chosen family before
  building anything,
* :class:`repro.scenarios.scenario.Scenario` objects stay plain data (family
  name + parameter dict) that round-trips through JSON, and
* new constructions become available everywhere by registering once.

Builders take the declared parameters as keyword arguments plus an optional
``rng`` (used only by families with a random component); they return a fresh
:class:`repro.dynamics.base.DynamicNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.dynamics.base import DynamicNetwork
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.diligent import DiligentDynamicNetwork
from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.dynamics.mobile_agents import MobileAgentsNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.dynamics.standard import (
    alternating_regular_complete_network,
    static_clique_network,
    static_cycle_network,
    static_star_network,
)
from repro.graphs.generators import (
    erdos_renyi_csr,
    path,
    random_regular_expander,
)
from repro.utils.rng import RngLike
from repro.utils.validation import require

#: Sentinel marking a parameter with no default (must be supplied).
REQUIRED = object()


@dataclass(frozen=True)
class NetworkFamily:
    """One registered network construction.

    Attributes
    ----------
    name:
        Registry key (the CLI ``--network`` choice and the scenario
        ``network`` field).
    builder:
        ``(rng=..., **params) -> DynamicNetwork`` (``rng`` passed only when
        ``uses_rng`` is true).
    defaults:
        Declared parameters mapped to their defaults; :data:`REQUIRED` marks
        parameters that must be supplied (``n`` for every family).
    uses_rng:
        Whether the construction has a random component (expander sampling,
        edge-Markovian dynamics, ...).
    description:
        One-line description shown by ``repro scenarios list``.
    """

    name: str
    builder: Callable[..., DynamicNetwork] = field(repr=False)
    defaults: Mapping[str, Any]
    uses_rng: bool
    description: str

    @property
    def param_names(self) -> Tuple[str, ...]:
        """Declared parameter names, in declaration order."""
        return tuple(self.defaults)

    def resolve_params(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Merge ``params`` over the defaults, rejecting unknown/missing keys."""
        unknown = sorted(set(params) - set(self.defaults))
        require(
            not unknown,
            f"network family {self.name!r} does not take parameter(s) {unknown}; "
            f"declared parameters: {list(self.defaults)}",
        )
        merged = {**self.defaults, **dict(params)}
        missing = sorted(name for name, value in merged.items() if value is REQUIRED)
        require(
            not missing,
            f"network family {self.name!r} requires parameter(s) {missing}",
        )
        return merged

    def build(self, rng: RngLike = None, **params) -> DynamicNetwork:
        """Build a fresh network instance from ``params`` (over the defaults)."""
        merged = self.resolve_params(params)
        if self.uses_rng:
            return self.builder(rng=rng, **merged)
        return self.builder(**merged)


_REGISTRY: Dict[str, NetworkFamily] = {}


def register_network(
    name: str,
    builder: Callable[..., DynamicNetwork],
    defaults: Mapping[str, Any],
    uses_rng: bool = False,
    description: str = "",
) -> NetworkFamily:
    """Register a network family under ``name`` (rejecting duplicates)."""
    require(name not in _REGISTRY, f"network family {name!r} is already registered")
    family = NetworkFamily(
        name=name,
        builder=builder,
        defaults=dict(defaults),
        uses_rng=uses_rng,
        description=description,
    )
    _REGISTRY[name] = family
    return family


def network_families() -> Tuple[str, ...]:
    """Registered family names, in registration order."""
    return tuple(_REGISTRY)


def get_network_family(name: str) -> NetworkFamily:
    """Look up a family by name (raising with the known names on a miss)."""
    require(
        name in _REGISTRY,
        f"unknown network family {name!r}; known families: {sorted(_REGISTRY)}",
    )
    return _REGISTRY[name]


def build_network(name: str, rng: RngLike = None, **params) -> DynamicNetwork:
    """Build a network from its family name and parameters."""
    return get_network_family(name).build(rng=rng, **params)


# ---------------------------------------------------------------------------
# Built-in families.  ``n`` is the size parameter of every family; for the
# dichotomy networks it keeps the constructor's own convention (G1 has n+1
# nodes, G2 has n leaves plus the centre) so CLI behaviour is unchanged.
# ---------------------------------------------------------------------------

register_network(
    "clique",
    lambda n: static_clique_network(n),
    {"n": REQUIRED},
    description="static complete graph K_n (analytic metrics attached)",
)
register_network(
    "star",
    lambda n: static_star_network(n),
    {"n": REQUIRED},
    description="static star on n nodes, centre 0 (analytic metrics attached)",
)
register_network(
    "cycle",
    lambda n: static_cycle_network(n),
    {"n": REQUIRED},
    description="static cycle C_n (analytic metrics attached)",
)
register_network(
    "path",
    lambda n: StaticDynamicNetwork(path(range(n))),
    {"n": REQUIRED},
    description="static path P_n",
)
register_network(
    "expander",
    lambda n, degree, rng=None: StaticDynamicNetwork(
        random_regular_expander(degree, range(n), rng=rng)
    ),
    {"n": REQUIRED, "degree": 4},
    uses_rng=True,
    description="static random degree-regular expander",
)
register_network(
    "erdos-renyi",
    lambda n, p, rng=None: StaticDynamicNetwork(erdos_renyi_csr(n, p, rng=rng)),
    {"n": REQUIRED, "p": 0.05},
    uses_rng=True,
    description="static G(n, p), sampled directly into CSR form",
)
register_network(
    "dynamic-star",
    lambda n: DynamicStarNetwork(n),
    {"n": REQUIRED},
    description="G2 of Figure 1(b): adaptive dynamic star with n leaves",
)
register_network(
    "clique-bridge",
    lambda n: CliqueBridgeNetwork(n),
    {"n": REQUIRED},
    description="G1 of Figure 1(a): clique with pendant, then bridged cliques",
)
register_network(
    "diligent",
    lambda n, rho, rng=None: DiligentDynamicNetwork(n, rho, rng=rng),
    {"n": REQUIRED, "rho": 0.25},
    uses_rng=True,
    description="Theorem 1.2 adaptive Θ(ρ)-diligent family G(n, ρ)",
)
register_network(
    "absolute-diligent",
    lambda n, rho, rng=None: AbsolutelyDiligentNetwork(n, rho, rng=rng),
    {"n": REQUIRED, "rho": 0.25},
    uses_rng=True,
    description="Theorem 1.5 absolutely Θ(ρ)-diligent adaptive family",
)
register_network(
    "edge-markovian",
    lambda n, birth, death, rng=None: EdgeMarkovianNetwork(n, birth, death, rng=rng),
    {"n": REQUIRED, "birth": 0.3, "death": 0.3},
    uses_rng=True,
    description="edge-Markovian evolving graph (per-edge birth/death chain)",
)
register_network(
    "mobile-agents",
    lambda n, side, radius, rng=None: MobileAgentsNetwork(
        n, side=side, radius=radius, rng=rng
    ),
    {"n": REQUIRED, "side": 10, "radius": 1},
    uses_rng=True,
    description="random-walk mobile agents on a torus grid with proximity links",
)
register_network(
    "alternating-regular-complete",
    lambda n, degree, rng=None: alternating_regular_complete_network(
        n, degree=degree, rng=rng
    ),
    {"n": REQUIRED, "degree": 3},
    uses_rng=True,
    description="Section 1.2 example: d-regular graph alternating with K_n",
)


__all__ = [
    "REQUIRED",
    "NetworkFamily",
    "build_network",
    "get_network_family",
    "network_families",
    "register_network",
]
