"""Measurement kinds: *how* a scenario point is turned into numbers.

Scenarios are pure data; each carries a ``kind`` naming one of the functions
registered here.  A measurement takes one :class:`ScenarioPoint` and returns a
JSON-serializable payload dict — the unit the pipeline parallelises and
caches.  Every kind carries a version; bumping it invalidates cached
artifacts computed under older semantics.

Built-in kinds:

``trials``
    Run the selected spreading process ``trials`` times and record raw spread
    times plus summary statistics.  Options: ``max_time_policy`` (a horizon
    computed from a probe network), ``probe`` (network attributes/methods to
    record), ``whp_quantile``, and adaptive stopping via ``until_ci_width``
    (+ optional ``max_trials``, defaulting to the scenario's ``trials``): the
    point keeps running trials until the mean spread time's confidence
    interval is at most that wide.
``tabs_trials``
    Per-trial runs with a cheap snapshot recorder, evaluating the Theorem 1.3
    ``T_abs`` budget on each realised sequence (experiment E3).
``bound_series``
    No trials: record a realised snapshot sequence long enough to exhaust the
    Theorem 1.1 budget and evaluate it against the Giakkoupis et al. bound
    (experiment E7).  Options: ``c``, ``min_per_step_budget``.
``hk_snapshot``
    Build one ``H_{k,Δ}`` snapshot and measure it against Observation 4.1
    (experiment E2); the swept value is ``Δ``.  Options: ``n``.
``two_push_chain``
    Simulate the forward 2-push coupling of Lemma 4.2 along a cluster chain
    (experiment E8); the swept value is the chain length ``k``.  Options:
    ``delta``, ``duration``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.bounds.giakkoupis import giakkoupis_bound
from repro.bounds.theorems import (
    absolute_diligence_bound,
    conductance_diligence_bound,
    theorem_1_1_threshold,
)
from repro.core.variants import (
    forward_two_push_chain,
    forward_two_push_tail_bound,
)
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.scenarios.scenario import Scenario, ScenarioPoint
from repro.api.builder import bind_point, resolve_process
from repro.utils.rng import spawn_rngs
from repro.utils.validation import require

MeasurementFn = Callable[[ScenarioPoint], Dict[str, Any]]

_MEASUREMENTS: Dict[str, Tuple[MeasurementFn, int]] = {}


def register_measurement(name: str, version: int = 1):
    """Decorator registering a measurement kind under ``name``."""

    def decorate(fn: MeasurementFn) -> MeasurementFn:
        require(name not in _MEASUREMENTS, f"measurement kind {name!r} is already registered")
        _MEASUREMENTS[name] = (fn, version)
        return fn

    return decorate


def measurement_kinds() -> Tuple[str, ...]:
    """Registered kind names."""
    return tuple(_MEASUREMENTS)


def get_measurement(name: str) -> MeasurementFn:
    """Look up a measurement kind (raising with the known names on a miss)."""
    require(
        name in _MEASUREMENTS,
        f"unknown measurement kind {name!r}; known kinds: {sorted(_MEASUREMENTS)}",
    )
    return _MEASUREMENTS[name][0]


def measurement_version(name: str) -> int:
    """Version stamp of a measurement kind (part of the cache key)."""
    require(
        name in _MEASUREMENTS,
        f"unknown measurement kind {name!r}; known kinds: {sorted(_MEASUREMENTS)}",
    )
    return _MEASUREMENTS[name][1]


#: Kinds that accept a live :class:`repro.api.RunObserver` (the ones that run
#: the spreading process through the api builder in-process).
OBSERVED_KINDS = ("trials",)


def measure_point(point: ScenarioPoint, observer=None) -> Dict[str, Any]:
    """Execute one scenario point and return its payload.

    ``observer`` (a :class:`repro.api.RunObserver`) is threaded into the
    engine for kinds listed in :data:`OBSERVED_KINDS`; other kinds ignore it.
    Hooks fire in whichever process measures the point, so live streaming to
    the caller needs in-process execution (pipeline ``jobs=1``).
    """
    fn = get_measurement(point.scenario.kind)
    if observer is not None and point.scenario.kind in OBSERVED_KINDS:
        return fn(point, observer=observer)
    return fn(point)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def process_for(scenario: Scenario):
    """Build the spreading process a scenario selects (with its fault model).

    Delegates to :func:`repro.api.builder.resolve_process`, the single
    selection → process mapping the builder itself uses.
    """
    return resolve_process(
        scenario.algorithm, scenario.variant, scenario.engine, scenario.fault_model()
    )


def _payload(point: ScenarioPoint, trial_set, probe: DynamicNetwork,
             max_time: Optional[float]) -> Dict[str, Any]:
    """The historical ``trials`` payload shape, from a typed trial set."""
    return {
        "n": probe.n,
        "value": point.value,
        "spread_times": [float(t) for t in trial_set.spread_times],
        "summary": trial_set.summary().as_dict(),
        "probe": probe_values(point.scenario, probe),
        "max_time": max_time,
    }


def resolve_max_time(scenario: Scenario, network: DynamicNetwork) -> Optional[float]:
    """Resolve the per-run horizon: explicit ``max_time`` or a probe policy.

    A ``max_time_policy`` option is a plain dict
    ``{"attr": name, "kwargs": {...}, "scale": a, "offset": b}`` evaluated as
    ``a * network.attr(**kwargs) + b`` on a freshly built network — this is
    how e.g. E2 caps runs at a multiple of the construction's own predicted
    upper bound while staying JSON-serializable.
    """
    if scenario.max_time is not None:
        return float(scenario.max_time)
    policy = scenario.options.get("max_time_policy")
    if policy is None:
        return None
    value = getattr(network, policy["attr"])(**policy.get("kwargs", {}))
    return float(policy.get("scale", 1.0)) * float(value) + float(policy.get("offset", 0.0))


def probe_values(scenario: Scenario, network: DynamicNetwork) -> Dict[str, float]:
    """Record declared network attributes/methods from a probe instance.

    Each entry of ``options["probe"]`` is either an attribute name or a dict
    ``{"name": column, "attr": name, "kwargs": {...}}``; callables are called.
    """
    recorded: Dict[str, float] = {}
    for entry in scenario.options.get("probe", ()):
        if isinstance(entry, str):
            name, attr, kwargs = entry, entry, {}
        else:
            attr = entry["attr"]
            name = entry.get("name", attr)
            kwargs = entry.get("kwargs", {})
        value = getattr(network, attr)
        if callable(value):
            value = value(**kwargs)
        recorded[name] = float(value)
    return recorded


# ---------------------------------------------------------------------------
# kinds
# ---------------------------------------------------------------------------


@register_measurement("trials")
def _measure_trials(point: ScenarioPoint, observer=None) -> Dict[str, Any]:
    """Repeated spreading runs: raw spread times + summary statistics.

    A thin adapter over :mod:`repro.api`: the point binds to a
    :class:`repro.api.RunBuilder` (which reproduces the scenario seed policy
    exactly) and the typed :class:`repro.api.TrialSet` is flattened into the
    historical payload shape.  The ``until_ci_width`` / ``max_trials``
    options ride through the builder's adaptive stopping rule, and an
    optional ``observer`` streams engine events exactly as
    ``bind_point(point).observe(observer)`` would.
    """
    scenario = point.scenario
    probe = point.build_network()
    max_time = resolve_max_time(scenario, probe)
    builder = bind_point(point, max_time=max_time)
    # Streaming must never perturb what executes: engine="batched" rejects
    # observers outright, and engine="auto" would resolve to a *different*
    # engine when observed (boundary instead of batched) — so those points
    # run unobserved and the payload stays a pure function of the cache key.
    if observer is not None and scenario.engine not in ("batched", "auto"):
        builder = builder.observe(observer)
    trial_set = builder.collect()
    return _payload(point, trial_set, probe, max_time)


@register_measurement("tabs_trials")
def _measure_tabs_trials(point: ScenarioPoint) -> Dict[str, Any]:
    """Per-trial runs evaluating the Theorem 1.3 budget on realised sequences."""
    scenario = point.scenario
    _, run_seq = point.seed_sequences()
    generators = spawn_rngs(run_seq, scenario.trials)
    # This kind has always run to the engine's default horizon (the budget
    # evaluation needs completed runs); clear any scenario-level max_time so
    # payloads stay identical to the pre-api measurement.
    builder = bind_point(point).max_time(None)
    trials: List[Dict[str, Any]] = []
    n = None
    for trial_rng in generators:
        # "cheap" recording measures connectivity and absolute diligence on
        # every snapshot; known analytic metrics are deliberately not
        # preferred so the bound is evaluated on measured quantities.
        recorder = SnapshotRecorder(mode="cheap", prefer_known=False, track_degrees=False)
        run_result = builder.once(recorder=recorder, rng=trial_rng)
        result = run_result.spread
        n = result.n
        evaluation = absolute_diligence_bound(
            recorder.connectivity_series(),
            recorder.absolute_diligence_series(),
            result.n,
        )
        trials.append(
            {
                "completed": bool(result.completed),
                "spread_time": float(result.spread_time),
                "steps_recorded": len(recorder.steps),
                "budget_accumulated": float(evaluation.accumulated),
                "budget_target": float(evaluation.threshold),
                "bound": float(evaluation.bound) if evaluation.reached else math.inf,
                "reached": bool(evaluation.reached),
            }
        )
    return {"n": n, "value": point.value, "trials": trials}


@register_measurement("bound_series")
def _measure_bound_series(point: ScenarioPoint) -> Dict[str, Any]:
    """Evaluate Theorem 1.1 vs the Giakkoupis et al. bound on one sequence.

    Records a realised snapshot sequence long enough for the slower budget
    (Theorem 1.1's, with its explicit constant) to be reached; analytic
    per-step metrics make recording thousands of steps cheap.
    """
    scenario = point.scenario
    network = point.build_network()
    n = network.n
    c = float(scenario.options.get("c", 1.0))
    min_per_step_budget = float(scenario.options.get("min_per_step_budget", 0.2))
    recorder = SnapshotRecorder(mode="cheap")
    _, run_seq = point.seed_sequences()
    network.reset(int(run_seq.generate_state(1)[0]))
    horizon = int(math.ceil(theorem_1_1_threshold(n, c) / min_per_step_budget)) + 10
    for step in range(horizon):
        graph = network.graph_for_step(step, frozenset())
        recorder.record(network, step, graph, informed_count=1)
    ours = conductance_diligence_bound(
        recorder.conductance_series(), recorder.diligence_series(), n, c
    )
    theirs = giakkoupis_bound(recorder.conductance_series(), recorder.degree_history, n)
    return {
        "n": n,
        "value": point.value,
        "bound_thm_1_1": float(ours.bound),
        "threshold_thm_1_1": float(ours.threshold),
        "bound_giakkoupis": float(theirs.bound),
        "threshold_giakkoupis": float(theirs.threshold),
    }


@register_measurement("sequence_bound_estimate")
def _measure_sequence_bound_estimate(point: ScenarioPoint) -> Dict[str, Any]:
    """Estimate ``T(G, c)`` for a stochastic oblivious network by sampling.

    Measures ``Φ·ρ`` exactly on ``sample_steps`` snapshots (with an empty
    informed set — the bound is a property of the graph sequence) and
    extrapolates the first-passage time of the Theorem 1.1 budget from their
    average.  Exact per-snapshot measurement restricts this kind to small
    ``n``; the extrapolation is accurate for stationary sequences.
    """
    from repro.graphs.metrics import measure_graph

    scenario = point.scenario
    c = float(scenario.options.get("c", 1.0))
    sample_steps = int(scenario.options.get("sample_steps", 20))
    network = point.build_network()
    n = network.n
    _, run_seq = point.seed_sequences()
    network.reset(int(run_seq.generate_state(1)[0]))
    threshold = theorem_1_1_threshold(n, c)
    budgets = []
    for step in range(sample_steps):
        graph = network.graph_for_step(step, frozenset())
        metrics = network.known_step_metrics(step)
        if metrics is None:
            metrics = measure_graph(graph)
        budgets.append(metrics.conductance * metrics.diligence)
    average = sum(budgets) / len(budgets)
    bound = math.inf if average <= 0 else float(math.ceil(threshold / average))
    return {
        "n": n,
        "value": point.value,
        "bound_estimate": bound,
        "mean_step_budget": float(average),
        "sample_steps": sample_steps,
    }


@register_measurement("hk_snapshot")
def _measure_hk_snapshot(point: ScenarioPoint) -> Dict[str, Any]:
    """Measure one ``H_{k,Δ}`` snapshot against Observation 4.1 (value = Δ)."""
    from repro.dynamics.diligent import default_chain_length
    from repro.graphs.hk_delta import build_hk_delta
    from repro.graphs.metrics import absolute_diligence, conductance_spectral_bounds

    scenario = point.scenario
    n = int(scenario.options["n"])
    delta = int(point.value)
    k = default_chain_length(n)
    size_a = n // 4
    part_a = list(range(size_a))
    part_b = list(range(size_a, n))
    network_seq, _ = point.seed_sequences()
    built = build_hk_delta(
        part_a, part_b, k=k, delta=delta, rng=np.random.default_rng(network_seq)
    )
    measured_abs = absolute_diligence(built.graph)
    low, high = conductance_spectral_bounds(built.graph)
    return {
        "n": n,
        "value": point.value,
        "k": k,
        "delta": delta,
        "analytic_phi": float(built.analytic_conductance()),
        "cheeger_lower": float(low),
        "cheeger_upper": float(high),
        "analytic_abs_diligence": float(built.analytic_absolute_diligence()),
        "measured_abs_diligence": float(measured_abs),
    }


@register_measurement("two_push_chain")
def _measure_two_push_chain(point: ScenarioPoint) -> Dict[str, Any]:
    """Forward 2-push progress along the Lemma 4.2 chain (value = k)."""
    scenario = point.scenario
    delta = int(scenario.options["delta"])
    duration = float(scenario.options.get("duration", 1.0))
    k = int(point.value)
    cluster_sizes = [delta] * (k + 1)
    _, run_seq = point.seed_sequences()
    trial_seeds = spawn_rngs(run_seq, scenario.trials)
    reached = 0
    informed_total = 0
    for trial_seed in trial_seeds:
        counts = forward_two_push_chain(cluster_sizes, duration=duration, rng=trial_seed)
        informed_total += counts[-1]
        if counts[-1] > 0:
            reached += 1
    return {
        "value": point.value,
        "k": k,
        "delta": delta,
        "empirical_mean": informed_total / scenario.trials,
        "empirical_reach_probability": reached / scenario.trials,
        "bound": float(forward_two_push_tail_bound(k, delta, duration=duration)),
    }


__all__ = [
    "MeasurementFn",
    "get_measurement",
    "measure_point",
    "measurement_kinds",
    "measurement_version",
    "probe_values",
    "process_for",
    "register_measurement",
    "resolve_max_time",
]
