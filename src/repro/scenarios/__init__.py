"""Declarative scenarios and the unified experiment pipeline.

This subsystem makes workloads first-class data:

* :mod:`repro.scenarios.networks` — the single network registry (family name
  → builder + declared parameters) shared by the CLI, the experiments and
  scenario files;
* :mod:`repro.scenarios.scenario` — the :class:`Scenario` dataclass
  (network + parameters + engine/variant/fault model + sweep + trials + seed
  policy) with dict/JSON round-tripping;
* :mod:`repro.scenarios.measurements` — measurement kinds turning one
  scenario point into a JSON payload;
* :mod:`repro.scenarios.pipeline` — :class:`ExperimentPipeline`, which runs
  points with process-pool parallelism and content-addressed JSON artifact
  caching.

Describe *what* to run; the pipeline decides *how* to run it fast.
"""

from repro.scenarios.measurements import (
    get_measurement,
    measure_point,
    measurement_kinds,
    measurement_version,
    register_measurement,
)
from repro.scenarios.networks import (
    NetworkFamily,
    build_network,
    get_network_family,
    network_families,
    register_network,
)
from repro.scenarios.pipeline import (
    ExperimentPipeline,
    PointResult,
    default_cache_dir,
    failed_points,
)
from repro.scenarios.scenario import Scenario, ScenarioPoint, scenario_seed

__all__ = [
    "ExperimentPipeline",
    "NetworkFamily",
    "PointResult",
    "Scenario",
    "ScenarioPoint",
    "build_network",
    "default_cache_dir",
    "failed_points",
    "get_measurement",
    "get_network_family",
    "measure_point",
    "measurement_kinds",
    "measurement_version",
    "network_families",
    "register_measurement",
    "register_network",
    "scenario_seed",
]
