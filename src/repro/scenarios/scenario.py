"""Declarative scenarios: *what* to run, as plain serializable data.

A :class:`Scenario` captures one sweep of a paper-style workload — network
family and parameters, algorithm/variant/engine, fault model, swept values,
trials and seed policy — without any executable code.  It round-trips to and
from plain dicts/JSON, so experiment definitions are data files, CLI inputs
and cache keys all at once.  Execution semantics live elsewhere:

* network names resolve through :mod:`repro.scenarios.networks`;
* the ``kind`` field names a measurement in
  :mod:`repro.scenarios.measurements` (how a point is turned into numbers);
* :class:`repro.scenarios.pipeline.ExperimentPipeline` expands scenarios into
  :class:`ScenarioPoint` units and runs them (possibly in parallel, possibly
  from cache).

Seed policy: each scenario carries one integer ``seed``; point ``i`` of the
sweep derives its own :class:`numpy.random.SeedSequence` from ``(seed, i)``
and splits it into a network-construction stream and a trial stream.  Points
are therefore statistically independent, reproducible in isolation, and
independent of execution order — which is what makes point-level parallelism
and cache resumption exact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.checks.check import Check
from repro.core.faults import FaultModel, fault_model_from_data
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork
from repro.scenarios.networks import get_network_family
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require

#: Accepted ``algorithm`` / ``engine`` values (single source: the public API).
from repro.api.builder import ALGORITHMS, ENGINES  # noqa: E402 - re-export

#: Version stamp mixed into every cache key; bump when point semantics change.
SCENARIO_FORMAT_VERSION = 1


def scenario_seed(rng: RngLike, salt: int) -> int:
    """Derive a deterministic integer scenario seed from ``rng`` and ``salt``.

    Integer (and ``SeedSequence``) inputs derive reproducibly; a ``Generator``
    input draws from its stream (reproducible only relative to the generator's
    current state).
    """
    if rng is None:
        rng = 0
    if isinstance(rng, (int, np.integer)):
        entropy: Sequence[int] = [int(rng), salt]
    elif isinstance(rng, np.random.SeedSequence):
        base = rng.entropy if isinstance(rng.entropy, (list, tuple)) else [rng.entropy]
        entropy = [*[int(e) for e in base], salt]
    else:
        return int(ensure_rng(rng).integers(0, 2**62)) ^ salt
    return int(np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint64)[0] >> 1)


def _plain(value: Any) -> Any:
    """Recursively convert ``value`` to plain JSON types (tuples → lists)."""
    if isinstance(value, Mapping):
        return {str(key): _plain(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(inner) for inner in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


@dataclass(frozen=True)
class Scenario:
    """One declarative workload: a sweep of simulation points.

    Attributes
    ----------
    label:
        Human-readable name; also used by experiments to match results back
        to their bound wiring.
    kind:
        Measurement kind (how each point is executed); see
        :mod:`repro.scenarios.measurements`.  Default ``"trials"`` runs the
        spreading process repeatedly and records spread-time statistics.
    network:
        Network family name from the registry, or ``None`` for kinds that
        build their own structure (e.g. the Lemma 4.2 chain).
    params:
        Family parameters (``n``, ``rho``, ...).  The swept value is merged in
        under ``sweep_name`` at each point.
    sweep_name / sweep:
        Name and values of the swept parameter.  An empty sweep means a
        single point at exactly ``params``.
    algorithm / variant / engine:
        Process selection.  ``variant`` and ``engine`` apply only to the
        asynchronous algorithm; scenarios declaring them for ``sync`` are
        rejected, mirroring the CLI's flag validation.
    faults:
        Optional fault model as plain data: ``{"drop_probability": p,
        "crashed_nodes": [...], "crash_times": {node: t}}``.
    trials / seed / max_time:
        Trials per point, base seed for the per-point seed derivation, and an
        optional hard time horizon per run.
    options:
        Kind-specific extras (JSON-serializable), e.g. a ``max_time_policy``
        or probe attributes to record from a freshly built network.
    checks:
        Declarative acceptance criteria (:class:`repro.checks.Check` objects
        or their dicts) evaluated against this scenario's point results by
        ``repro scenarios run`` / :func:`repro.api.evaluate_checks`.  Checks
        describe how results are *judged*, not what runs, so they do not
        participate in point cache keys.
    """

    label: str
    kind: str = "trials"
    network: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    sweep_name: str = "n"
    sweep: Tuple[Any, ...] = ()
    algorithm: str = "async"
    variant: str = Variant.PUSH_PULL.value
    engine: str = "boundary"
    faults: Optional[Mapping[str, Any]] = None
    trials: int = 1
    seed: int = 0
    max_time: Optional[float] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    checks: Tuple[Check, ...] = ()

    def __post_init__(self):
        require(isinstance(self.label, str) and self.label, "scenario label must be a non-empty string")
        require(self.algorithm in ALGORITHMS, f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}")
        require(self.engine in ENGINES, f"engine must be one of {ENGINES}, got {self.engine!r}")
        Variant(self.variant)  # raises ValueError on unknown variants
        if self.algorithm == "sync":
            require(
                self.variant == Variant.PUSH_PULL.value and self.engine == "boundary",
                "variant/engine apply only to the asynchronous algorithm; "
                "leave them at their defaults for algorithm='sync'",
            )
        require(
            isinstance(self.trials, int) and self.trials >= 1,
            f"trials must be a positive integer, got {self.trials!r}",
        )
        require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        if self.network is not None:
            family = get_network_family(self.network)
            swept = {self.sweep_name} if self.sweep else set()
            family.resolve_params({**dict(self.params), **{name: 0 for name in swept}})
        if self.faults is not None:
            self.fault_model()  # validates probabilities / crash times
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "sweep", tuple(self.sweep))
        object.__setattr__(self, "options", dict(self.options))
        object.__setattr__(self, "checks", tuple(
            check if isinstance(check, Check) else Check.from_dict(check)
            for check in (self.checks or ())
        ))
        if self.faults is not None:
            object.__setattr__(self, "faults", _plain(self.faults))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON types only); inverse of :meth:`from_dict`."""
        out = {f.name: _plain(getattr(self, f.name)) for f in dataclasses.fields(self)}
        out["checks"] = [check.to_dict() for check in self.checks]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (strict on keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        require(not unknown, f"unknown scenario field(s) {unknown}; known fields: {sorted(known)}")
        kwargs = dict(data)
        if "sweep" in kwargs and kwargs["sweep"] is not None:
            kwargs["sweep"] = tuple(kwargs["sweep"])
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- execution support ---------------------------------------------------

    def fault_model(self) -> FaultModel:
        """Build the :class:`FaultModel` described by :attr:`faults`.

        Delegates to :func:`repro.core.faults.fault_model_from_data`, the
        single plain-data → fault-model coercion path shared with
        :mod:`repro.api`.
        """
        return fault_model_from_data(self.faults)

    def points(self) -> List["ScenarioPoint"]:
        """Expand the sweep into independent executable points."""
        values = list(self.sweep) if self.sweep else [None]
        return [ScenarioPoint(scenario=self, value=value, index=index)
                for index, value in enumerate(values)]

    def bind(self, value: Any = None, index: Optional[int] = None):
        """Bind one point of this scenario to a :class:`repro.api.RunBuilder`.

        With no arguments the first point binds; pass ``value`` (a swept
        value of this scenario) or ``index`` to select another point.  The
        returned builder reproduces the scenario's execution semantics — seed
        policy, network construction, algorithm/variant/engine, faults and
        horizon — so ``scenario.bind().collect()`` yields the same spread
        times the experiment pipeline computes for that point.  Only kinds
        that run the spreading process (``"trials"``, ``"tabs_trials"``) are
        bindable.  Use :func:`repro.api.sweep_scenario` to execute every
        point into a :class:`repro.api.SweepFrame`.
        """
        from repro.api.builder import bind_point
        from repro.scenarios.measurements import resolve_max_time

        points = self.points()
        if value is not None:
            require(index is None, "pass value or index, not both")
            matches = [point for point in points if point.value == value]
            require(bool(matches), f"{value!r} is not a swept value of {self.label!r}")
            point = matches[0]
        else:
            point = points[index if index is not None else 0]
        max_time = self.max_time
        if max_time is None and self.options.get("max_time_policy") is not None:
            max_time = resolve_max_time(self, point.build_network())
        return bind_point(point, max_time=max_time)


@dataclass(frozen=True)
class ScenarioPoint:
    """One executable unit: a scenario at a single swept value."""

    scenario: Scenario
    value: Any
    index: int

    def network_params(self) -> Dict[str, Any]:
        """Family parameters with the swept value merged in."""
        params = dict(self.scenario.params)
        if self.value is not None:
            params[self.scenario.sweep_name] = self.value
        return params

    def seed_sequences(self) -> Tuple[np.random.SeedSequence, np.random.SeedSequence]:
        """(network-construction stream, trial stream) for this point."""
        root = np.random.SeedSequence([self.scenario.seed & (2**63 - 1), self.index])
        network_seq, run_seq = root.spawn(2)
        return network_seq, run_seq

    def build_network(self) -> DynamicNetwork:
        """Build a fresh network for this point (same seed on every call)."""
        require(self.scenario.network is not None,
                f"scenario {self.scenario.label!r} declares no network family")
        network_seq, _ = self.seed_sequences()
        family = get_network_family(self.scenario.network)
        return family.build(rng=np.random.default_rng(network_seq), **self.network_params())

    def spec(self) -> Dict[str, Any]:
        """Canonical plain-dict identity of this point (drives the cache key).

        ``checks`` are excluded: they describe how results are judged, not
        what is measured, so attaching or editing a scenario's check table
        must not invalidate (or fragment) its cached point artifacts.
        """
        scenario = self.scenario.to_dict()
        scenario.pop("checks", None)
        return {
            "format": SCENARIO_FORMAT_VERSION,
            "scenario": scenario,
            "point": {"index": self.index, self.scenario.sweep_name: _plain(self.value)},
        }

    def cache_key(self) -> str:
        """Content hash of the point spec (plus the measurement-kind version)."""
        from repro.scenarios.measurements import measurement_version

        spec = self.spec()
        spec["kind_version"] = measurement_version(self.scenario.kind)
        canonical = json.dumps(spec, sort_keys=True, allow_nan=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = [
    "ALGORITHMS",
    "ENGINES",
    "SCENARIO_FORMAT_VERSION",
    "Scenario",
    "ScenarioPoint",
    "scenario_seed",
]
