"""The unified experiment pipeline: scenario points → payloads, fast.

``ExperimentPipeline`` is the single execution path for every experiment and
for user-supplied scenario files.  It expands scenarios into independent
:class:`ScenarioPoint` units and

* runs missing points with **point-level parallelism** over the same forked
  process pool the trial runner uses (``jobs=k``) — a sweep's points run
  concurrently instead of serially, and because each point derives its own
  seed stream from the scenario content, parallel results are identical to
  serial ones;
* persists each payload through a pluggable :class:`repro.api.ResultSink`
  keyed by content hash of the point spec (scenario dict + sweep value +
  measurement-kind version), so a re-run — after a crash, on another flag
  combination, from a different entry point — resumes from the artifact
  store instead of recomputing;
* returns results in deterministic scenario/point order regardless of cache
  state or worker scheduling.

The default sink is :class:`repro.api.LocalDirSink` (one JSON artifact per
key under ``cache_dir``); pass ``sink=`` to plug in any other store — a
:class:`repro.api.MemorySink`, or a future shared cross-machine store.
Payloads are normalised through a JSON round-trip even when caching is off,
so cached and freshly computed runs are byte-for-byte interchangeable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.api.sinks import LocalDirSink, NullSink, ResultSink
from repro.scenarios.measurements import measure_point
from repro.scenarios.scenario import Scenario, ScenarioPoint
from repro.utils.parallel import fork_map
from repro.utils.validation import require

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory used by the CLI (relative to the working dir).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The CLI's default artifact directory (env override, then cwd)."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class PointResult:
    """Outcome of one scenario point.

    ``payload`` is the measurement output (already JSON-normalised);
    ``cached`` records whether it was loaded from an artifact.
    """

    scenario: Scenario
    value: Any
    index: int
    key: str
    payload: Dict[str, Any]
    cached: bool

    @property
    def label(self) -> str:
        """The owning scenario's label."""
        return self.scenario.label


class ExperimentPipeline:
    """Executes scenario points with parallelism and pluggable artifact storage.

    Parameters
    ----------
    jobs:
        Worker processes for point-level parallelism.  ``1`` (default) runs
        points serially; results are identical either way.
    cache_dir:
        Directory for JSON artifacts, or ``None`` (default) to disable
        caching.  The directory is created on first write.  Shorthand for
        ``sink=LocalDirSink(cache_dir)``.
    sink:
        Any :class:`repro.api.ResultSink` artifact store; overrides
        ``cache_dir`` when given.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[None, str, Path] = None,
        sink: Optional[ResultSink] = None,
    ):
        require(isinstance(jobs, int) and jobs >= 1,
                f"jobs must be a positive integer, got {jobs!r}")
        require(sink is None or cache_dir is None, "pass cache_dir or sink, not both")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if sink is None:
            sink = LocalDirSink(self.cache_dir) if cache_dir is not None else NullSink()
        self.sink = sink

    # -- cache -------------------------------------------------------------

    def _load_cached(self, point: ScenarioPoint, key: str) -> Optional[Dict[str, Any]]:
        return self.sink.load(key, _normalise(point.spec()))

    def _store(self, point: ScenarioPoint, key: str, payload: Dict[str, Any]) -> None:
        self.sink.store(key, _normalise(point.spec()), point.scenario.kind, payload)

    # -- execution -----------------------------------------------------------

    def run_scenario(self, scenario: Scenario) -> List[PointResult]:
        """Run a single scenario's points."""
        return self.run([scenario])

    def run(self, scenarios: Union[Scenario, Iterable[Scenario]]) -> List[PointResult]:
        """Run every point of every scenario; results in scenario/point order."""
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        points: List[ScenarioPoint] = [
            point for scenario in scenarios for point in scenario.points()
        ]
        keys = [point.cache_key() for point in points]

        payloads: List[Optional[Dict[str, Any]]] = [None] * len(points)
        cached_mask = [False] * len(points)
        missing: List[int] = []
        for position, (point, key) in enumerate(zip(points, keys)):
            cached = self._load_cached(point, key)
            if cached is not None:
                payloads[position] = cached
                cached_mask[position] = True
            else:
                missing.append(position)

        if missing:
            fresh = self._compute([points[i] for i in missing])
            for position, payload in zip(missing, fresh):
                payload = _normalise(payload)
                payloads[position] = payload
                self._store(points[position], keys[position], payload)

        return [
            PointResult(
                scenario=point.scenario,
                value=point.value,
                index=point.index,
                key=key,
                payload=payload,
                cached=cached,
            )
            for point, key, payload, cached in zip(points, keys, payloads, cached_mask)
        ]

    def _compute(self, points: Sequence[ScenarioPoint]) -> List[Dict[str, Any]]:
        """Measure ``points``, in parallel when ``jobs > 1`` and fork exists."""
        if self.jobs > 1 and len(points) > 1:
            results = fork_map(measure_point, points, self.jobs)
            if results is not None:
                return results
        return [measure_point(point) for point in points]


def _normalise(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Round-trip through JSON so fresh and cached payloads are identical.

    ``allow_nan`` keeps ``inf``/``nan`` spread times working (Python's JSON
    reader accepts the ``Infinity``/``NaN`` literals it writes).
    """
    return json.loads(json.dumps(payload, allow_nan=True))


__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ExperimentPipeline",
    "PointResult",
    "default_cache_dir",
]
