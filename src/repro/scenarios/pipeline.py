"""The unified experiment pipeline: scenario points → payloads, fast.

``ExperimentPipeline`` is the single execution path for every experiment and
for user-supplied scenario files.  It expands scenarios into independent
:class:`ScenarioPoint` units and

* runs missing points with **point-level parallelism** over the supervised
  forked worker pool (``jobs=k``) — a sweep's points run concurrently instead
  of serially, and because each point derives its own seed stream from the
  scenario content, parallel results are identical to serial ones;
* supervises every point through :mod:`repro.execution`: failed attempts
  retry with backoff, broken pools respawn, timeouts censor runaway points,
  and with ``keep_going=True`` a sweep finishes around failed points instead
  of aborting (``max_failures`` bounds how many failures are tolerated);
* persists each payload through a pluggable :class:`repro.api.ResultSink`
  keyed by content hash of the point spec (scenario dict + sweep value +
  measurement-kind version), so a re-run — after a crash, on another flag
  combination, from a different entry point — resumes from the artifact
  store instead of recomputing; **failed points are never cached**;
* returns results in deterministic scenario/point order regardless of cache
  state or worker scheduling, with per-point ``status``/``error``/``attempts``
  and a cumulative :class:`repro.execution.ExecutionReport` on ``.report``.

The default sink is :class:`repro.api.LocalDirSink` (one JSON artifact per
key under ``cache_dir``); pass ``sink=`` to plug in any other store — a
:class:`repro.api.MemorySink`, or a future shared cross-machine store.
Payloads are normalised through a JSON round-trip even when caching is off,
so cached and freshly computed runs are byte-for-byte interchangeable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.api.sinks import LocalDirSink, NullSink, ResultSink
from repro.execution.chaos import ChaosMonkey, chaos_from_env
from repro.execution.policy import DEFAULT_POLICY, RetryPolicy
from repro.execution.report import ExecutionReport
from repro.execution.supervisor import (
    ItemOutcome,
    raise_first_failure,
    supervised_map,
)
from repro.scenarios.measurements import measure_point
from repro.scenarios.scenario import Scenario, ScenarioPoint
from repro.utils.validation import require

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory used by the CLI (relative to the working dir).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The CLI's default artifact directory (env override, then cwd)."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class PointResult:
    """Outcome of one scenario point.

    ``payload`` is the measurement output (already JSON-normalised), or
    ``None`` when the point failed; ``cached`` records whether it was loaded
    from an artifact.  ``status`` is one of ``"ok"``, ``"failed"``,
    ``"timeout"`` or ``"aborted"``; ``error`` carries the failure description
    and ``attempts`` how many executions were tried (0 for cached points).
    """

    scenario: Scenario
    value: Any
    index: int
    key: str
    payload: Optional[Dict[str, Any]]
    cached: bool
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 0

    @property
    def label(self) -> str:
        """The owning scenario's label."""
        return self.scenario.label

    @property
    def ok(self) -> bool:
        """True when the point has a payload (fresh or cached)."""
        return self.status == "ok"


class ExperimentPipeline:
    """Executes scenario points with parallelism and pluggable artifact storage.

    Parameters
    ----------
    jobs:
        Worker processes for point-level parallelism.  ``1`` (default) runs
        points serially; results are identical either way.
    cache_dir:
        Directory for JSON artifacts, or ``None`` (default) to disable
        caching.  The directory is created on first write.  Shorthand for
        ``sink=LocalDirSink(cache_dir)``.
    sink:
        Any :class:`repro.api.ResultSink` artifact store; overrides
        ``cache_dir`` when given.
    keep_going:
        When True, a failed point is recorded (``status``/``error``) and the
        sweep continues; when False (default) the first failure re-raises its
        original exception after the surviving points are cached.
    max_failures:
        With ``keep_going``, abort the sweep once strictly more than this
        many points have failed (remaining points get ``status="aborted"``).
        ``None`` (default) tolerates any number of failures.
    policy:
        :class:`repro.execution.RetryPolicy` controlling retry, timeout and
        backoff.  Defaults to the executor's resilient default policy.
    chaos:
        A :class:`repro.execution.ChaosMonkey` fault injector.  Defaults to
        whatever the ``REPRO_CHAOS`` environment variable configures (no
        chaos when unset).

    A cumulative :class:`repro.execution.ExecutionReport` is kept on
    ``self.report`` across ``run()`` calls.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[None, str, Path] = None,
        sink: Optional[ResultSink] = None,
        keep_going: bool = False,
        max_failures: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosMonkey] = None,
    ):
        require(isinstance(jobs, int) and jobs >= 1,
                f"jobs must be a positive integer, got {jobs!r}")
        require(sink is None or cache_dir is None, "pass cache_dir or sink, not both")
        require(max_failures is None or (isinstance(max_failures, int) and max_failures >= 0),
                f"max_failures must be a non-negative integer, got {max_failures!r}")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if sink is None:
            sink = LocalDirSink(self.cache_dir) if cache_dir is not None else NullSink()
        self.sink = sink
        self.keep_going = keep_going
        self.max_failures = max_failures
        self.policy = DEFAULT_POLICY if policy is None else policy
        self.chaos = chaos_from_env() if chaos is None else chaos
        self.report = ExecutionReport()

    # -- cache -------------------------------------------------------------

    def _load_cached(self, point: ScenarioPoint, key: str) -> Optional[Dict[str, Any]]:
        return self.sink.load(key, _normalise(point.spec()))

    def _store(self, point: ScenarioPoint, key: str, payload: Dict[str, Any]) -> None:
        self.sink.store(key, _normalise(point.spec()), point.scenario.kind, payload)

    # -- execution -----------------------------------------------------------

    def run_scenario(self, scenario: Scenario) -> List[PointResult]:
        """Run a single scenario's points."""
        return self.run([scenario])

    def run(
        self,
        scenarios: Union[Scenario, Iterable[Scenario]],
        observer=None,
    ) -> List[PointResult]:
        """Run every point of every scenario; results in scenario/point order.

        ``observer`` (a :class:`repro.api.RunObserver`) is threaded into the
        engine for freshly computed points of observable kinds (see
        :data:`repro.scenarios.measurements.OBSERVED_KINDS`).  Cached points
        fire no hooks, and with ``jobs > 1`` the hooks fire inside the worker
        processes (invisible to the caller) — live streaming wants ``jobs=1``.
        """
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        points: List[ScenarioPoint] = [
            point for scenario in scenarios for point in scenario.points()
        ]
        keys = [point.cache_key() for point in points]

        payloads: List[Optional[Dict[str, Any]]] = [None] * len(points)
        cached_mask = [False] * len(points)
        statuses = ["ok"] * len(points)
        errors: List[Optional[str]] = [None] * len(points)
        attempts = [0] * len(points)
        missing: List[int] = []
        corruption_before = getattr(self.sink, "corruption_detected", 0)
        for position, (point, key) in enumerate(zip(points, keys)):
            cached = self._load_cached(point, key)
            if cached is not None:
                payloads[position] = cached
                cached_mask[position] = True
            else:
                missing.append(position)
        self.report.cache_hits += sum(cached_mask)
        self.report.cache_corruption += (
            getattr(self.sink, "corruption_detected", 0) - corruption_before
        )

        if missing:
            outcomes = self._compute([points[i] for i in missing], observer=observer)
            for position, outcome in zip(missing, outcomes):
                statuses[position] = outcome.status
                attempts[position] = outcome.attempts
                if outcome.ok:
                    payload = _normalise(outcome.value)
                    payloads[position] = payload
                    # Only successful payloads are ever cached.
                    self._store(points[position], keys[position], payload)
                    if self.chaos is not None:
                        self.chaos.maybe_corrupt(self.sink, keys[position])
                else:
                    errors[position] = outcome.error
            if not self.keep_going:
                # Surviving points were already cached; re-raise the first
                # failure's original exception (historical strict contract).
                raise_first_failure(outcomes)

        return [
            PointResult(
                scenario=point.scenario,
                value=point.value,
                index=point.index,
                key=key,
                payload=payload,
                cached=cached,
                status=status,
                error=error,
                attempts=count,
            )
            for point, key, payload, cached, status, error, count in zip(
                points, keys, payloads, cached_mask, statuses, errors, attempts
            )
        ]

    def _compute(
        self, points: Sequence[ScenarioPoint], observer=None
    ) -> List[ItemOutcome]:
        """Measure ``points`` under supervision (parallel when ``jobs > 1``)."""
        fn = measure_point if observer is None else partial(measure_point, observer=observer)
        return supervised_map(
            fn,
            points,
            workers=self.jobs,
            policy=self.policy,
            chaos=self.chaos,
            report=self.report,
            max_failures=self.max_failures if self.keep_going else None,
        )


def _normalise(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Round-trip through JSON so fresh and cached payloads are identical.

    ``allow_nan`` keeps ``inf``/``nan`` spread times working (Python's JSON
    reader accepts the ``Infinity``/``NaN`` literals it writes).
    """
    return json.loads(json.dumps(payload, allow_nan=True))


def failed_points(results: Iterable[PointResult]) -> List[PointResult]:
    """The subset of ``results`` that did not produce a payload."""
    return [result for result in results if not result.ok]


__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ExperimentPipeline",
    "PointResult",
    "default_cache_dir",
    "failed_points",
]
