"""Strict-JSON emission helpers shared by the CLI and the HTTP service.

Python's ``json`` writer happily emits bare ``Infinity``/``NaN`` literals
(e.g. E3's ``Tabs_if_reached`` column), which non-Python consumers reject.
Every document that leaves the process — CLI ``--json`` output, service
response bodies, SSE event data — goes through :func:`finite_json` first so
the wire format is valid RFC-8259 JSON everywhere.
"""

from __future__ import annotations

import json
import math
from typing import Any


def finite_json(value: Any) -> Any:
    """Replace non-finite floats with the strings ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"``."""
    if isinstance(value, dict):
        return {key: finite_json(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [finite_json(inner) for inner in value]
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    return value


def dumps_strict(document: Any, **kwargs) -> str:
    """``json.dumps`` of :func:`finite_json`, guaranteed RFC-8259 valid."""
    return json.dumps(finite_json(document), allow_nan=False, **kwargs)


__all__ = ["dumps_strict", "finite_json"]
