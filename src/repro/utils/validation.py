"""Small argument-validation helpers used across the library.

The simulators and constructions are parameter heavy (``n``, ``rho``, ``k``,
``delta`` ...); failing early with a clear message is much friendlier than a
confusing networkx error three stack frames deeper.
"""

from __future__ import annotations

from numbers import Real
from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: Real, name: str) -> None:
    """Raise unless ``value`` is a strictly positive real number."""
    if not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_negative(value: Real, name: str) -> None:
    """Raise unless ``value`` is a non-negative real number."""
    if not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def require_probability(value: Real, name: str) -> None:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    if not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0 <= value <= 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


def require_node_count(n: Any, minimum: int = 1, name: str = "n") -> None:
    """Raise unless ``n`` is an integer node count of at least ``minimum``."""
    if not isinstance(n, (int,)) or isinstance(n, bool):
        raise TypeError(f"{name} must be an integer, got {type(n).__name__}")
    if n < minimum:
        raise ValueError(f"{name} must be at least {minimum}, got {n}")


def require_int_in_range(value: Any, low: int, high: int, name: str) -> None:
    """Raise unless ``value`` is an integer in ``[low, high]`` (inclusive)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")


__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_node_count",
    "require_int_in_range",
]
