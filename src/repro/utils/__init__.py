"""Shared utilities: random number generation helpers and input validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    require,
    require_node_count,
    require_positive,
    require_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "require",
    "require_node_count",
    "require_positive",
    "require_probability",
]
