"""Forked process-pool fan-out shared by the trial runner and the pipeline.

Both :func:`repro.analysis.trials.run_trials` and
:class:`repro.scenarios.pipeline.ExperimentPipeline` distribute independent
units of work (trials, scenario points) over worker processes.  The work is
described by arbitrary closures — lambdas over networks, bound methods — which
are not picklable, so the pool uses the ``fork`` start method and passes the
callable and its inputs to the children through inherited process memory
rather than through pickling.

Since the fault-tolerance PR, :func:`fork_map` is a thin compatibility
wrapper over :func:`repro.execution.supervisor.supervised_map`: items are
submitted **per item** (no chunking — a poisoned item can no longer fail its
chunk-mates), broken pools are respawned, and retry/timeout behaviour is
configurable through an optional :class:`repro.execution.RetryPolicy`.  The
default policy preserves the historical contract: one attempt per item, the
first failing item's exception re-raised in the caller.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.execution.chaos import ChaosMonkey
from repro.execution.policy import ONE_SHOT_POLICY, RetryPolicy
from repro.execution.report import ExecutionReport
from repro.execution.supervisor import (
    fork_available,
    raise_first_failure,
    supervised_map,
)

Item = TypeVar("Item")
Result = TypeVar("Result")


def fork_map(
    fn: Callable[[Item], Result],
    items: Sequence[Item],
    workers: int,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosMonkey] = None,
    report: Optional[ExecutionReport] = None,
) -> Optional[List[Result]]:
    """Map ``fn`` over ``items`` using ``workers`` forked processes.

    Results come back in item order (like the built-in ``map``).  Returns
    ``None`` when the ``fork`` start method is unavailable — the caller is
    expected to fall back to a serial loop, since without fork the function
    and items would have to be picklable, which this API does not require.

    Execution is supervised (see :mod:`repro.execution.supervisor`): pass a
    ``policy`` to enable retry/timeout/backoff, a ``chaos`` monkey to inject
    faults, and a ``report`` to accumulate recovery counters.  Without a
    policy, items get exactly one attempt and no pool respawn (the
    historical behaviour), though unsubmitted items still complete via the
    serial fallback when a worker dies.  On any ultimately-failed item the
    first failure's original exception is re-raised in the caller.
    """
    items = list(items)
    if not fork_available():
        return None
    if not items:
        return []
    outcomes = supervised_map(
        fn,
        items,
        workers=workers,
        policy=ONE_SHOT_POLICY if policy is None else policy,
        chaos=chaos,
        report=report,
    )
    raise_first_failure(outcomes)
    return [outcome.value for outcome in outcomes]


__all__ = ["fork_available", "fork_map"]
