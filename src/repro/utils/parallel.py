"""Forked process-pool fan-out shared by the trial runner and the pipeline.

Both :func:`repro.analysis.trials.run_trials` and
:class:`repro.scenarios.pipeline.ExperimentPipeline` distribute independent
units of work (trials, scenario points) over worker processes.  The work is
described by arbitrary closures — lambdas over networks, bound methods — which
are not picklable, so the pool uses the ``fork`` start method and passes the
callable and its inputs to the children through inherited process memory
rather than through pickling.

The payload hand-off is serialised by a lock so concurrent ``fork_map`` calls
from different threads cannot fork workers that inherit each other's payload.
Workers themselves never call ``fork_map`` again, so the inherited (locked)
lock is harmless in the children.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Payload inherited by forked workers (set only around a parallel run).
_FORK_PAYLOAD: Optional[Tuple[Callable, Sequence]] = None

#: Serialises the set-payload / fork-workers / clear-payload window.
_FORK_LOCK = threading.Lock()


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _forked_call(index: int):
    """Apply the inherited payload function to item ``index`` in a worker."""
    fn, items = _FORK_PAYLOAD
    return fn(items[index])


def fork_map(
    fn: Callable[[Item], Result], items: Sequence[Item], workers: int
) -> Optional[List[Result]]:
    """Map ``fn`` over ``items`` using ``workers`` forked processes.

    Results come back in item order (like the built-in ``map``).  Returns
    ``None`` when the ``fork`` start method is unavailable — the caller is
    expected to fall back to a serial loop, since without fork the function
    and items would have to be picklable, which this API does not require.
    """
    items = list(items)
    if not fork_available():
        return None
    if not items:
        return []
    context = multiprocessing.get_context("fork")
    global _FORK_PAYLOAD
    with _FORK_LOCK:
        _FORK_PAYLOAD = (fn, items)
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(items)), mp_context=context
            ) as pool:
                chunksize = max(1, len(items) // (4 * workers))
                return list(pool.map(_forked_call, range(len(items)), chunksize=chunksize))
        finally:
            _FORK_PAYLOAD = None


__all__ = ["fork_available", "fork_map"]
