"""Random number generator plumbing.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Centralising the
conversion keeps experiments reproducible: a single integer seed passed at the
top level deterministically derives independent generators for every trial.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random generator or seed")


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators.

    Used by the trial runner so that trial ``i`` is reproducible regardless of
    how many trials run before it.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = rng if isinstance(rng, np.random.SeedSequence) else np.random.SeedSequence(rng)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(rng: RngLike, salt: int = 0) -> int:
    """Return a deterministic integer seed derived from ``rng`` and ``salt``."""
    gen = ensure_rng(rng)
    # Mix the salt in so repeated calls with different salts differ even for
    # the same underlying generator state.
    return int(gen.integers(0, 2**62)) ^ (salt * 0x9E3779B97F4A7C15 % 2**62)


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "derive_seed"]
