"""Declarative result analytics: serializable checks over experiment results.

The paper's contribution is a set of quantitative guarantees — upper/lower
bounds on spread times, log-slope growth rates, variant orderings.  This
subsystem turns their acceptance logic into data, the same way
:mod:`repro.scenarios` turned the workloads into data:

* :mod:`repro.checks.check` — the :class:`Check` dataclass family (kinds
  ``upper_bound``, ``lower_bound``, ``log_slope``, ``monotonic``,
  ``ratio_between``, ``ci_width``, ``all_true``, ``equals``) with the same
  dict/JSON round-trip contract as :class:`repro.scenarios.Scenario`, plus
  the structured :class:`CheckResult` / :class:`CheckReport` outcomes;
* :mod:`repro.checks.evaluate` — the evaluator, which runs a check table
  against tabular results (:class:`repro.experiments.ExperimentResult` rows,
  :class:`repro.api.SweepFrame`, :class:`repro.api.TrialSet`, pipeline
  point payloads, or plain row dicts) and returns observed value, bound,
  margin and verdict per check.

Every experiment E1–E9 is defined by a check table (see
``repro.experiments.registry.CHECK_TABLES``), and ``repro verify`` runs all
of them through the shared pipeline as a regression gate.
"""

from repro.checks.check import (
    CHECK_KINDS,
    Check,
    CheckReport,
    CheckResult,
    checks_from_data,
    checks_to_data,
)
from repro.checks.evaluate import CheckDataset, evaluate_check, evaluate_checks, rows_from_points

__all__ = [
    "CHECK_KINDS",
    "Check",
    "CheckDataset",
    "CheckReport",
    "CheckResult",
    "checks_from_data",
    "checks_to_data",
    "evaluate_check",
    "evaluate_checks",
    "rows_from_points",
]
