"""Evaluate declarative :class:`Check` tables against tabular results.

The evaluator is deliberately dumb: it reads columns out of plain row dicts
(plus an optional scalar ``derived`` mapping), applies the check's arithmetic,
and reports a structured :class:`CheckResult` with the observed value, the
active bound, the worst margin and the verdict.  Anything tabular coerces to
the row form through :func:`dataset_from`:

* :class:`repro.experiments.ExperimentResult` — its ``rows`` and ``derived``;
* :class:`repro.api.SweepFrame` — its flattened ``rows()``;
* :class:`repro.api.TrialSet` — one row of summary statistics;
* a list of :class:`repro.scenarios.PointResult` — one row per point, the
  payload's scalars / ``summary`` / ``probe`` flattened (see
  :func:`rows_from_points`);
* a plain list of dicts, or ``{"rows": [...], "derived": {...}}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.regression import loglog_slope
from repro.checks.check import Check, CheckReport, CheckResult
from repro.utils.validation import require

#: ``transform`` name → callable applied to the ``against`` side of bounds.
_TRANSFORM_FNS = {
    None: lambda value: value,
    "log": math.log,
    "log2": math.log2,
    "log10": math.log10,
    "sqrt": math.sqrt,
}


@dataclass(frozen=True)
class CheckDataset:
    """Coerced evaluation target: row dicts plus scalar derived quantities."""

    rows: Tuple[Mapping[str, Any], ...] = ()
    derived: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "rows", tuple(self.rows))
        object.__setattr__(self, "derived", dict(self.derived))


def rows_from_points(points: Sequence[Any]) -> List[Dict[str, Any]]:
    """Flatten pipeline :class:`PointResult`s into check-evaluable rows.

    Each row carries the scenario label, the swept value (under the sweep
    name and as ``value``), every scalar payload entry, and the flattened
    ``summary`` / ``probe`` sub-dicts — so checks can reference ``mean``,
    ``whp``, probe bounds etc. directly.
    """
    rows: List[Dict[str, Any]] = []
    for point in points:
        row: Dict[str, Any] = {"label": point.label,
                               point.scenario.sweep_name: point.value}
        payload = point.payload or {}
        for key in ("summary", "probe"):
            sub = payload.get(key)
            if isinstance(sub, Mapping):
                for inner_key, inner_value in sub.items():
                    row.setdefault(inner_key, inner_value)
        for key, value in payload.items():
            if isinstance(value, (Mapping, list, tuple)):
                continue
            row.setdefault(key, value)
        rows.append(row)
    return rows


def dataset_from(data: Any = None, *, rows: Optional[Sequence[Mapping[str, Any]]] = None,
                 derived: Optional[Mapping[str, Any]] = None) -> CheckDataset:
    """Coerce any supported result shape into a :class:`CheckDataset`."""
    if data is None:
        return CheckDataset(rows=tuple(rows or ()), derived=dict(derived or {}))
    require(rows is None and derived is None, "pass data or rows/derived, not both")
    if isinstance(data, CheckDataset):
        return data
    if isinstance(data, Mapping):
        return CheckDataset(rows=tuple(data.get("rows", ())),
                            derived=dict(data.get("derived", {})))
    data_rows = getattr(data, "rows", None)
    if data_rows is not None:
        if callable(data_rows):  # SweepFrame.rows() is a method
            return CheckDataset(rows=tuple(data_rows()))
        # ExperimentResult-like: rows attribute plus optional derived mapping
        return CheckDataset(rows=tuple(data_rows),
                            derived=dict(getattr(data, "derived", {}) or {}))
    summary = getattr(data, "summary", None)
    if callable(summary):  # TrialSet-like: one row of summary statistics
        return CheckDataset(rows=(dict(summary().as_dict()),))
    if isinstance(data, Sequence):
        entries = list(data)
        if entries and hasattr(entries[0], "payload"):
            return CheckDataset(rows=tuple(rows_from_points(entries)))
        return CheckDataset(rows=tuple(entries))
    raise ValueError(f"cannot build a check dataset from {type(data).__name__}")


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _select(check: Check, rows: Sequence[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """Apply the check's ``where`` filter."""
    selected = []
    for row in rows:
        keep = True
        for key, spec in check.where.items():
            if isinstance(spec, Mapping) and "exists" in spec:
                if bool(spec["exists"]) != (key in row):
                    keep = False
                    break
            elif key not in row or row[key] != spec:
                keep = False
                break
        if keep:
            selected.append(row)
    return selected


def _column(check: Check, row: Mapping[str, Any], name: str) -> Any:
    require(name in row,
            f"check {check.label!r}: column {name!r} missing from row "
            f"(columns: {sorted(row)})")
    return row[name]


def _bound_value(check: Check, row: Optional[Mapping[str, Any]],
                 derived: Mapping[str, Any]) -> float:
    """Resolve ``scale * transform(against) + offset``, clamped."""
    against = check.against
    if isinstance(against, str):
        if check.source == "derived":
            require(against in derived,
                    f"check {check.label!r}: derived key {against!r} missing "
                    f"(keys: {sorted(derived)})")
            raw = derived[against]
        else:
            raw = _column(check, row, against)
    else:
        raw = against
    value = check.scale * _TRANSFORM_FNS[check.transform](float(raw)) + check.offset
    if check.clamp_high is not None:
        value = min(value, check.clamp_high)
    if check.clamp_low is not None:
        value = max(value, check.clamp_low)
    return value


def _observations(check: Check, dataset: CheckDataset) -> Tuple[List[Tuple[float, Optional[Mapping]]], int]:
    """(usable (observed, row) pairs, skipped count) honouring ``non_finite``.

    For ``source="derived"`` there is exactly one pseudo-row read from the
    derived mapping.  A non-finite observation under ``non_finite="fail"``
    stays in the usable list (its row then fails); under ``"skip"`` it is
    dropped and counted.
    """
    if check.source == "derived":
        require(check.column in dataset.derived,
                f"check {check.label!r}: derived key {check.column!r} missing "
                f"(keys: {sorted(dataset.derived)})")
        pairs = [(float(dataset.derived[check.column]), None)]
    else:
        pairs = [(float(_column(check, row, check.column)), row)
                 for row in _select(check, dataset.rows)]
    if check.non_finite == "skip":
        usable = [(observed, row) for observed, row in pairs if math.isfinite(observed)]
        return usable, len(pairs) - len(usable)
    return pairs, 0


def _short_of_quorum(check: Check, used: int) -> bool:
    return used < check.require_rows


# ---------------------------------------------------------------------------
# kind evaluators
# ---------------------------------------------------------------------------


def _compare(observed: float, bound: float, upper: bool, strict: bool) -> bool:
    if math.isnan(bound):
        return False
    if upper:
        return observed < bound if strict else observed <= bound
    return observed > bound if strict else observed >= bound


def _evaluate_bound(check: Check, dataset: CheckDataset, upper: bool) -> CheckResult:
    observations, skipped = _observations(check, dataset)
    worst: Optional[Tuple[float, float, float]] = None  # (margin, observed, bound)
    passed = True
    for observed, row in observations:
        bound = _bound_value(check, row, dataset.derived)
        # A non-finite observation surviving _observations means the policy
        # is "fail": the row fails regardless of the comparison outcome.
        ok = math.isfinite(observed) and _compare(observed, bound, upper=upper,
                                                 strict=check.strict)
        margin = (bound - observed) if upper else (observed - bound)
        if math.isnan(margin):
            margin = -math.inf
        if worst is None or margin < worst[0]:
            worst = (margin, observed, bound)
        passed = passed and ok
    if _short_of_quorum(check, len(observations)):
        passed = False
    margin, observed, bound = worst if worst is not None else (None, None, None)
    return CheckResult(
        label=check.label, kind=check.kind, passed=passed,
        observed=observed,
        bound_low=None if upper else bound,
        bound_high=bound if upper else None,
        margin=margin, rows=len(observations), skipped=skipped,
        detail="" if len(observations) >= check.require_rows
        else f"needs at least {check.require_rows} rows, got {len(observations)}",
    )


def _evaluate_ratio_between(check: Check, dataset: CheckDataset) -> CheckResult:
    observations, skipped = _observations(check, dataset)
    worst: Optional[Tuple[float, float]] = None  # (margin, ratio)
    passed = True
    for observed, row in observations:
        denominator = _bound_value(check, row, dataset.derived)
        ratio = observed / denominator if denominator != 0 else math.copysign(math.inf, observed)
        ok = math.isfinite(ratio)
        margin = math.inf
        if check.low is not None:
            ok = ok and _compare(ratio, check.low, upper=False, strict=check.strict)
            margin = min(margin, ratio - check.low)
        if check.high is not None:
            ok = ok and _compare(ratio, check.high, upper=True, strict=check.strict)
            margin = min(margin, check.high - ratio)
        if math.isnan(margin):
            margin = -math.inf
            ok = False
        if worst is None or margin < worst[0]:
            worst = (margin, ratio)
        passed = passed and ok
    if _short_of_quorum(check, len(observations)):
        passed = False
    margin, ratio = worst if worst is not None else (None, None)
    return CheckResult(
        label=check.label, kind=check.kind, passed=passed,
        observed=ratio, bound_low=check.low, bound_high=check.high,
        margin=margin, rows=len(observations), skipped=skipped,
    )


def _evaluate_equals(check: Check, dataset: CheckDataset) -> CheckResult:
    observations, skipped = _observations(check, dataset)
    worst: Optional[Tuple[float, float, float]] = None  # (margin, observed, expected)
    passed = True
    for observed, row in observations:
        expected = _bound_value(check, row, dataset.derived)
        difference = abs(observed - expected)
        ok = math.isfinite(observed) and difference <= check.tolerance  # NaN compares False
        margin = check.tolerance - difference
        if math.isnan(margin):
            margin = -math.inf
        if worst is None or margin < worst[0]:
            worst = (margin, observed, expected)
        passed = passed and ok
    if _short_of_quorum(check, len(observations)):
        passed = False
    margin, observed, expected = worst if worst is not None else (None, None, None)
    return CheckResult(
        label=check.label, kind=check.kind, passed=passed,
        observed=observed, bound_low=expected, bound_high=expected,
        margin=margin, rows=len(observations), skipped=skipped,
    )


def _evaluate_all_true(check: Check, dataset: CheckDataset) -> CheckResult:
    rows = _select(check, dataset.rows)
    values = [bool(_column(check, row, check.column)) for row in rows]
    true_count = sum(values)
    passed = all(values) and not _short_of_quorum(check, len(values))
    return CheckResult(
        label=check.label, kind=check.kind, passed=passed,
        observed=(true_count / len(values)) if values else None,
        bound_low=1.0, bound_high=None,
        margin=None, rows=len(values), skipped=0,
        detail="" if len(values) >= check.require_rows
        else f"needs at least {check.require_rows} rows, got {len(values)}",
    )


def _evaluate_monotonic(check: Check, dataset: CheckDataset) -> CheckResult:
    observations, skipped = _observations(check, dataset)
    if check.x is not None:
        keyed = [(float(_column(check, row, check.x)), observed)
                 for observed, row in observations]
        keyed.sort(key=lambda pair: pair[0])
        series = [observed for _, observed in keyed]
    else:
        series = [observed for observed, _ in observations]
    sign = 1.0 if check.direction == "increasing" else -1.0
    deltas = [sign * (b - a) for a, b in zip(series, series[1:])]
    ok_deltas = [delta > 0 if check.strict else delta >= 0 for delta in deltas]
    passed = all(ok_deltas) and not _short_of_quorum(check, len(observations))
    worst = min(deltas) if deltas else None
    if deltas and any(math.isnan(delta) for delta in deltas):
        passed = False
        worst = -math.inf
    return CheckResult(
        label=check.label, kind=check.kind, passed=passed,
        observed=worst, bound_low=0.0, bound_high=None,
        margin=worst, rows=len(observations), skipped=skipped,
        detail=f"{check.direction}, {len(deltas)} step(s)",
    )


def _evaluate_log_slope(check: Check, dataset: CheckDataset) -> CheckResult:
    rows = _select(check, dataset.rows)
    points = []
    for row in rows:
        x_value = float(_column(check, row, check.x))
        y_value = float(_column(check, row, check.column))
        if math.isfinite(x_value) and x_value > 0 and math.isfinite(y_value) and y_value > 0:
            points.append((x_value, y_value))
    skipped = len(rows) - len(points)
    if len(points) < 2:
        return CheckResult(
            label=check.label, kind=check.kind,
            passed=(check.insufficient == "pass"),
            observed=math.nan, bound_low=check.low, bound_high=check.high,
            margin=None, rows=len(points), skipped=skipped,
            detail=f"insufficient data ({len(points)} usable point(s)) -> {check.insufficient}",
        )
    slope = loglog_slope([x for x, _ in points], [y for _, y in points])
    ok = True
    margin = math.inf
    if check.low is not None:
        ok = ok and _compare(slope, check.low, upper=False, strict=check.strict)
        margin = min(margin, slope - check.low)
    if check.high is not None:
        ok = ok and _compare(slope, check.high, upper=True, strict=check.strict)
        margin = min(margin, check.high - slope)
    if math.isnan(margin):
        ok = False
        margin = -math.inf
    return CheckResult(
        label=check.label, kind=check.kind, passed=ok,
        observed=slope, bound_low=check.low, bound_high=check.high,
        margin=margin, rows=len(points), skipped=skipped,
    )


def _evaluate_ci_width(check: Check, dataset: CheckDataset) -> CheckResult:
    rows = _select(check, dataset.rows)
    worst: Optional[Tuple[float, float]] = None  # (margin, width)
    passed = True
    used = 0
    for row in rows:
        std = float(_column(check, row, "std"))
        trials = float(_column(check, row, "trials"))
        completed = trials * float(row.get("completion_rate", 1.0))
        completed = int(round(completed))
        width = (2.0 * check.z * std / math.sqrt(completed)
                 if completed >= 1 else math.inf)
        used += 1
        ok = _compare(width, check.high, upper=True, strict=check.strict)
        margin = check.high - width
        if check.low is not None:
            ok = ok and _compare(width, check.low, upper=False, strict=check.strict)
            margin = min(margin, width - check.low)
        if math.isnan(margin):
            ok = False
            margin = -math.inf
        if worst is None or margin < worst[0]:
            worst = (margin, width)
        passed = passed and ok
    if _short_of_quorum(check, used):
        passed = False
    margin, width = worst if worst is not None else (None, None)
    return CheckResult(
        label=check.label, kind=check.kind, passed=passed,
        observed=width, bound_low=check.low, bound_high=check.high,
        margin=margin, rows=used, skipped=0,
    )


_EVALUATORS = {
    "upper_bound": lambda check, dataset: _evaluate_bound(check, dataset, upper=True),
    "lower_bound": lambda check, dataset: _evaluate_bound(check, dataset, upper=False),
    "log_slope": _evaluate_log_slope,
    "monotonic": _evaluate_monotonic,
    "ratio_between": _evaluate_ratio_between,
    "ci_width": _evaluate_ci_width,
    "all_true": _evaluate_all_true,
    "equals": _evaluate_equals,
}


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def evaluate_check(check: Check, data: Any = None, *,
                   rows: Optional[Sequence[Mapping[str, Any]]] = None,
                   derived: Optional[Mapping[str, Any]] = None) -> CheckResult:
    """Evaluate one check against any supported result shape."""
    dataset = dataset_from(data, rows=rows, derived=derived)
    return _EVALUATORS[check.kind](check, dataset)


def evaluate_checks(checks: Sequence[Union[Check, Mapping[str, Any]]],
                    data: Any = None, *,
                    rows: Optional[Sequence[Mapping[str, Any]]] = None,
                    derived: Optional[Mapping[str, Any]] = None) -> CheckReport:
    """Evaluate a check table (checks or their dicts) into a :class:`CheckReport`."""
    table = [check if isinstance(check, Check) else Check.from_dict(check)
             for check in checks]
    labels = [check.label for check in table]
    require(len(set(labels)) == len(labels),
            f"check labels must be unique, got duplicates in {labels}")
    dataset = dataset_from(data, rows=rows, derived=derived)
    return CheckReport(results=tuple(
        _EVALUATORS[check.kind](check, dataset) for check in table
    ))


__all__ = [
    "CheckDataset",
    "dataset_from",
    "evaluate_check",
    "evaluate_checks",
    "rows_from_points",
]
