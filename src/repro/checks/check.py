"""The serializable :class:`Check` family and its structured outcomes.

A :class:`Check` states one quantitative acceptance criterion over tabular
results — *"this column stays under that bound"*, *"this quantity grows with
log-log slope in [0.5, 1.8]"* — as plain data.  Like
:class:`repro.scenarios.Scenario` it round-trips through dicts/JSON, so a
whole experiment (workload **and** acceptance logic) can live in a JSON
file.  Evaluation semantics live in :mod:`repro.checks.evaluate`.

Kinds
-----

``upper_bound`` / ``lower_bound``
    Every selected row satisfies ``column <= bound`` (resp. ``>=``), where
    the bound is ``scale * transform(against) + offset`` (``against`` names a
    column, a derived key, or is a numeric constant), optionally clamped to
    ``[clamp_low, clamp_high]``.  ``strict`` makes the comparison strict;
    ``non_finite`` says whether a non-finite observation fails or skips the
    row; ``require_rows`` demands a minimum number of participating rows.
``log_slope``
    Least-squares slope of ``log(column)`` against ``log(x)`` over the
    selected rows lies in ``[low, high]`` (either side may be omitted).
    Rows with non-finite or non-positive values are excluded from the fit;
    with fewer than two usable points the verdict is ``insufficient``
    (``"pass"`` or ``"fail"``).
``monotonic``
    Successive values of ``column`` (ordered by ``x`` when given, row order
    otherwise) are ``direction``-sorted (``strict`` forbids ties).
``ratio_between``
    ``column / against`` lies in ``[low, high]`` for every selected row.
``ci_width``
    The width of the mean's normal-approximation confidence interval
    (``2 z std / sqrt(completed trials)``, from the summary columns
    ``std`` / ``trials`` / ``completion_rate``) is at most ``high`` on every
    selected row.
``all_true``
    ``column`` is truthy on every selected row.
``equals``
    ``column`` equals ``against`` within ``tolerance`` on every selected row.

Row selection
-------------

``where`` filters rows before evaluation: ``{"network": "G2"}`` keeps rows
whose column equals the value, ``{"rho": {"exists": true}}`` keeps rows that
have (or, with ``false``, lack) the column.  ``source="derived"`` evaluates
against the scalar derived-quantities mapping instead of the rows.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.utils.validation import require

#: Registered check kinds (the declarative acceptance vocabulary).
CHECK_KINDS: Tuple[str, ...] = (
    "upper_bound",
    "lower_bound",
    "log_slope",
    "monotonic",
    "ratio_between",
    "ci_width",
    "all_true",
    "equals",
)

#: Transforms applicable to the ``against`` side of bound checks.
TRANSFORMS: Tuple[str, ...] = ("log", "log2", "log10", "sqrt")

#: Kinds whose observation is a single column compared against ``against``.
_BOUND_KINDS = ("upper_bound", "lower_bound", "ratio_between", "equals")


def _plain(value: Any) -> Any:
    """Recursively convert ``value`` to plain JSON types (tuples → lists)."""
    if isinstance(value, Mapping):
        return {str(key): _plain(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(inner) for inner in value]
    return value


@dataclass(frozen=True)
class Check:
    """One declarative acceptance criterion over tabular results.

    Attributes
    ----------
    label:
        Human-readable name, unique within a check table; results refer back
        to it.
    kind:
        One of :data:`CHECK_KINDS`.
    column:
        The observed column (row checks) or derived key (``source="derived"``).
        Not used by ``ci_width``, which reads the summary columns directly.
    against:
        The bound side: a column/derived-key name (string) or a numeric
        constant.  Required by bound-style kinds.
    x:
        Ordering/abscissa column for ``log_slope`` and ``monotonic``.
    where:
        Row filter (see module docstring).  Must be empty for
        ``source="derived"``.
    source:
        ``"rows"`` (default) or ``"derived"``.
    scale / offset / transform / clamp_low / clamp_high:
        Bound shaping: ``bound = scale * transform(against) + offset`` then
        clamped.  ``transform`` is one of :data:`TRANSFORMS` or ``None``.
    low / high:
        Acceptance band for ``log_slope`` / ``ratio_between`` / ``ci_width``.
    strict:
        Strict (``<`` / ``>``) comparisons for bounds and ``monotonic``.
    tolerance:
        Absolute tolerance for ``equals``.
    z:
        Normal quantile for ``ci_width`` (default 1.96 ≈ 95%).
    non_finite:
        ``"fail"`` (default) or ``"skip"`` — what a non-finite observation
        does to its row.
    require_rows:
        Minimum number of participating (non-skipped) rows; fewer fails the
        check.
    insufficient:
        ``log_slope`` verdict when fewer than two usable points remain:
        ``"pass"`` or ``"fail"`` (default).
    direction:
        ``"increasing"`` (default) or ``"decreasing"`` for ``monotonic``.
    """

    label: str
    kind: str
    column: Optional[str] = None
    against: Optional[Union[str, int, float]] = None
    x: Optional[str] = None
    where: Mapping[str, Any] = field(default_factory=dict)
    source: str = "rows"
    scale: float = 1.0
    offset: float = 0.0
    transform: Optional[str] = None
    clamp_low: Optional[float] = None
    clamp_high: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    strict: bool = False
    tolerance: float = 0.0
    z: float = 1.96
    non_finite: str = "fail"
    require_rows: int = 0
    insufficient: str = "fail"
    direction: str = "increasing"

    def __post_init__(self):
        require(isinstance(self.label, str) and self.label,
                "check label must be a non-empty string")
        require(self.kind in CHECK_KINDS,
                f"check kind must be one of {CHECK_KINDS}, got {self.kind!r}")
        require(self.source in ("rows", "derived"),
                f"source must be 'rows' or 'derived', got {self.source!r}")
        require(self.non_finite in ("fail", "skip"),
                f"non_finite must be 'fail' or 'skip', got {self.non_finite!r}")
        require(self.insufficient in ("pass", "fail"),
                f"insufficient must be 'pass' or 'fail', got {self.insufficient!r}")
        require(self.direction in ("increasing", "decreasing"),
                f"direction must be 'increasing' or 'decreasing', got {self.direction!r}")
        require(self.transform is None or self.transform in TRANSFORMS,
                f"transform must be one of {TRANSFORMS}, got {self.transform!r}")
        require(isinstance(self.require_rows, int) and self.require_rows >= 0,
                f"require_rows must be a non-negative integer, got {self.require_rows!r}")
        require(self.tolerance >= 0, f"tolerance must be >= 0, got {self.tolerance!r}")
        require(self.z > 0, f"z must be positive, got {self.z!r}")
        if self.kind != "ci_width":
            require(self.column is not None, f"kind {self.kind!r} needs a column")
        if self.kind in ("upper_bound", "lower_bound", "ratio_between", "equals"):
            require(self.against is not None, f"kind {self.kind!r} needs an against side")
        if self.kind == "ratio_between":
            require(self.low is not None or self.high is not None,
                    "ratio_between needs low and/or high")
        if self.kind == "log_slope":
            require(self.x is not None, "log_slope needs an x column")
            require(self.low is not None or self.high is not None,
                    "log_slope needs low and/or high")
        if self.kind == "ci_width":
            require(self.high is not None, "ci_width needs a high bound")
        if self.low is not None and self.high is not None:
            require(self.low <= self.high,
                    f"low must not exceed high, got [{self.low}, {self.high}]")
        if self.source == "derived":
            require(not self.where, "where filters do not apply to source='derived'")
            require(self.kind in _BOUND_KINDS,
                    f"source='derived' supports kinds {_BOUND_KINDS}, got {self.kind!r}")
        object.__setattr__(self, "where", dict(self.where))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON types only); inverse of :meth:`from_dict`."""
        return {f.name: _plain(getattr(self, f.name)) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Check":
        """Rebuild a check from :meth:`to_dict` output (strict on keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        require(not unknown, f"unknown check field(s) {unknown}; known fields: {sorted(known)}")
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Check":
        """Rebuild a check from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def checks_to_data(checks: Sequence[Check]) -> List[Dict[str, Any]]:
    """Serialize a check table to a list of plain dicts."""
    return [check.to_dict() for check in checks]


def checks_from_data(data: Sequence[Mapping[str, Any]]) -> Tuple[Check, ...]:
    """Rebuild a check table from plain data (accepting Check instances too)."""
    return tuple(
        entry if isinstance(entry, Check) else Check.from_dict(entry) for entry in data
    )


@dataclass(frozen=True)
class CheckResult:
    """The structured outcome of evaluating one :class:`Check`.

    ``observed`` is the headline quantity (worst-case value, fitted slope,
    worst ratio, fraction true — per kind), ``bound_low``/``bound_high`` the
    active acceptance band, and ``margin`` the worst slack against it
    (negative = violated, ``None`` when no rows participated).  ``rows`` and
    ``skipped`` count participating and policy-skipped rows.
    """

    label: str
    kind: str
    passed: bool
    observed: Optional[float] = None
    bound_low: Optional[float] = None
    bound_high: Optional[float] = None
    margin: Optional[float] = None
    rows: int = 0
    skipped: int = 0
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the ``repro verify --json`` per-check schema)."""
        return {
            "label": self.label,
            "kind": self.kind,
            "passed": self.passed,
            "observed": self.observed,
            "bound_low": self.bound_low,
            "bound_high": self.bound_high,
            "margin": self.margin,
            "rows": self.rows,
            "skipped": self.skipped,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CheckReport:
    """An evaluated check table: one :class:`CheckResult` per :class:`Check`."""

    results: Tuple[CheckResult, ...]

    def __post_init__(self):
        object.__setattr__(self, "results", tuple(self.results))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def passed(self) -> bool:
        """True when every check passed (vacuously true for an empty table)."""
        return all(result.passed for result in self.results)

    @property
    def counts(self) -> Tuple[int, int]:
        """``(passed, total)`` check counts."""
        return (sum(1 for result in self.results if result.passed), len(self.results))

    def failures(self) -> List[CheckResult]:
        """The failing results, in table order."""
        return [result for result in self.results if not result.passed]

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form: counts plus per-check outcomes."""
        passed, checked = self.counts
        return {
            "passed": passed,
            "checked": checked,
            "all_passed": self.passed,
            "checks": [result.as_dict() for result in self.results],
        }


__all__ = [
    "CHECK_KINDS",
    "TRANSFORMS",
    "Check",
    "CheckReport",
    "CheckResult",
    "checks_from_data",
    "checks_to_data",
]
