"""repro — a reproduction of *Tight Analysis of Asynchronous Rumor Spreading
in Dynamic Networks* (Pourmiri & Mans, PODC 2020).

The package provides:

* exact continuous-time simulators of the asynchronous push–pull rumor
  spreading algorithm (and push / pull / 2-push variants) on arbitrary
  dynamic evolving networks, plus the round-based synchronous algorithm;
* the paper's graph parameters — conductance, diligence and absolute
  diligence — with exact, spectral and sampled estimators;
* every dynamic-network construction used in the paper's proofs (the
  ``H_{k,Δ}`` lower-bound family, the absolutely-diligent family, the
  dichotomy networks ``G1``/``G2``) along with oblivious and random baselines
  (static-as-dynamic, periodic, edge-Markovian, mobile agents);
* the spread-time bounds of Theorems 1.1 and 1.3, Corollary 1.6 and the
  related-work bound of Giakkoupis et al., evaluated on realised snapshot
  sequences;
* an experiment harness (trials, sweeps, tables, slope fits) and one
  experiment module per theorem, wired to the benchmark suite.

Quickstart (the fluent public API)::

    from repro import api

    result = api.run(network="clique", n=50, seed=0).once()
    print(result.spread.summary())

    trials = api.run(network="clique", n=50, seed=0).trials(20).workers(4).collect()
    print(trials.summary().as_dict())

The engine classes remain available for direct use::

    from repro import AsynchronousRumorSpreading, StaticDynamicNetwork
    from repro.graphs import clique

    network = StaticDynamicNetwork(clique(range(50)))
    result = AsynchronousRumorSpreading().run(network, rng=0)
    print(result.summary())
"""

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading, SyncVariant
from repro.core.variants import Variant
from repro.core.faults import FaultModel
from repro.core.state import SpreadResult
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.dynamics.sequences import (
    CallableDynamicNetwork,
    ExplicitSequenceNetwork,
    PeriodicSequenceNetwork,
    StaticDynamicNetwork,
)
from repro.dynamics.diligent import DiligentDynamicNetwork
from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.dynamics.mobile_agents import MobileAgentsNetwork
from repro.analysis.trials import TrialSummary, run_trials
from repro.analysis.sweep import SweepResult, sweep
from repro.scenarios import ExperimentPipeline, Scenario, build_network
from repro import api

__version__ = "1.2.0"

__all__ = [
    "AsynchronousRumorSpreading",
    "SynchronousRumorSpreading",
    "SyncVariant",
    "Variant",
    "FaultModel",
    "SpreadResult",
    "DynamicNetwork",
    "SnapshotRecorder",
    "CallableDynamicNetwork",
    "ExplicitSequenceNetwork",
    "PeriodicSequenceNetwork",
    "StaticDynamicNetwork",
    "DiligentDynamicNetwork",
    "AbsolutelyDiligentNetwork",
    "CliqueBridgeNetwork",
    "DynamicStarNetwork",
    "EdgeMarkovianNetwork",
    "MobileAgentsNetwork",
    "TrialSummary",
    "run_trials",
    "SweepResult",
    "sweep",
    "ExperimentPipeline",
    "Scenario",
    "api",
    "build_network",
    "__version__",
]
