"""Graph parameters used throughout the paper.

The paper's analysis is driven by three quantities of a static snapshot
``G = (V, E)``:

* the **conductance** ``Φ(G) = min_S |E(S, S̄)| / min(vol(S), vol(S̄))``
  (Equation (2) of the paper);
* the **diligence** ``ρ(G) = min_S min_{(u,v)∈E(S,S̄)} max(d̄(S)/d_u, d̄(S)/d_v)``
  where the outer minimum ranges over cuts with ``0 < vol(S) ≤ vol(G)/2`` and
  ``d̄(S)`` is the average degree of the smaller side (Section 1.1);
* the **absolute diligence**
  ``ρ̄(G) = min_{(u,v)∈E} max(1/d_u, 1/d_v)`` (Section 5).

Both ``Φ`` and ``ρ`` minimise over exponentially many cuts, so exact values are
only computed for small graphs (by enumerating all cuts).  For larger graphs
the library offers spectral (Cheeger) bounds for ``Φ`` and a sampled-cut upper
estimate for ``ρ``; the paper's own constructions expose analytic values via
:class:`repro.dynamics.base.DynamicNetwork.known_metrics`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count

#: Largest node count for which exact (cut-enumeration) metrics are attempted.
EXACT_ENUMERATION_LIMIT = 18


# ---------------------------------------------------------------------------
# Elementary quantities
# ---------------------------------------------------------------------------

def volume(graph: nx.Graph, nodes: Optional[Iterable] = None) -> int:
    """Return ``vol(S) = Σ_{u∈S} d_u`` (or ``vol(G)`` when ``nodes`` is None)."""
    if nodes is None:
        return 2 * graph.number_of_edges()
    return sum(graph.degree(u) for u in nodes)


def cut_edges(graph: nx.Graph, subset: Iterable) -> Set[Tuple]:
    """Return the set of edges crossing ``subset`` and its complement.

    Edges are returned with the endpoint inside ``subset`` first, which the
    simulators rely on when computing push/pull rates per crossing edge.
    """
    inside = set(subset)
    crossing = set()
    for u in inside:
        if u not in graph:
            raise ValueError(f"node {u!r} not in graph")
        for v in graph.neighbors(u):
            if v not in inside:
                crossing.add((u, v))
    return crossing


def average_degree(graph: nx.Graph, nodes: Iterable) -> float:
    """Return ``d̄(S) = vol(S)/|S|`` for the node set ``nodes``."""
    nodes = list(nodes)
    require(len(nodes) > 0, "average_degree requires a non-empty node set")
    return volume(graph, nodes) / len(nodes)


# ---------------------------------------------------------------------------
# Conductance
# ---------------------------------------------------------------------------

def conductance_of_cut(graph: nx.Graph, subset: Iterable) -> float:
    """Return ``|E(S, S̄)| / min(vol(S), vol(S̄))`` for the cut defined by ``subset``.

    Raises ``ValueError`` when either side has zero volume (the ratio is not
    defined by Equation (2) in that case).
    """
    subset = set(subset)
    complement = set(graph.nodes()) - subset
    vol_s = volume(graph, subset)
    vol_c = volume(graph, complement)
    denom = min(vol_s, vol_c)
    require(denom > 0, "conductance_of_cut: both sides of the cut must have positive volume")
    return len(cut_edges(graph, subset)) / denom


def conductance_exact(graph: nx.Graph) -> float:
    """Return the exact conductance ``Φ(G)`` by enumerating all cuts.

    Only feasible for small graphs (``n ≤ EXACT_ENUMERATION_LIMIT``).  Returns
    ``0.0`` for disconnected or empty graphs, matching the convention used by
    the paper for the ``⌈Φ⌉`` indicator in Theorem 1.3.
    """
    n = graph.number_of_nodes()
    require_node_count(n, minimum=1)
    if graph.number_of_edges() == 0:
        return 0.0
    if not nx.is_connected(graph):
        return 0.0
    require(
        n <= EXACT_ENUMERATION_LIMIT,
        f"conductance_exact enumerates 2^n cuts and is limited to n <= "
        f"{EXACT_ENUMERATION_LIMIT}; use conductance_spectral_bounds or the "
        f"construction's analytic value instead (n = {n})",
    )
    nodes = list(graph.nodes())
    best = math.inf
    # Enumerate subsets containing nodes[0] to avoid double counting S / S̄.
    rest = nodes[1:]
    for size in range(0, len(rest) + 1):
        for combo in itertools.combinations(rest, size):
            subset = {nodes[0], *combo}
            if len(subset) == n:
                continue
            phi = conductance_of_cut(graph, subset)
            if phi < best:
                best = phi
    return best


def conductance_spectral_bounds(graph: nx.Graph) -> Tuple[float, float]:
    """Return Cheeger bounds ``(λ₂/2, sqrt(2 λ₂))`` on the conductance.

    ``λ₂`` is the second-smallest eigenvalue of the normalised Laplacian.  The
    true conductance satisfies ``λ₂/2 ≤ Φ(G) ≤ sqrt(2 λ₂)``.  Returns
    ``(0.0, 0.0)`` for disconnected graphs.
    """
    if graph.number_of_edges() == 0 or not nx.is_connected(graph):
        return (0.0, 0.0)
    if graph.number_of_nodes() < 3:
        # K2: conductance is exactly 1.
        return (1.0, 1.0)
    laplacian = nx.normalized_laplacian_matrix(graph).toarray()
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))
    lambda2 = max(float(eigenvalues[1]), 0.0)
    return (lambda2 / 2.0, math.sqrt(2.0 * lambda2))


def conductance_estimate(graph: nx.Graph) -> float:
    """Best-effort conductance: exact for small graphs, Cheeger midpoint otherwise."""
    n = graph.number_of_nodes()
    if n <= EXACT_ENUMERATION_LIMIT:
        return conductance_exact(graph)
    low, high = conductance_spectral_bounds(graph)
    return math.sqrt(low * high) if low > 0 else 0.0


# ---------------------------------------------------------------------------
# Diligence
# ---------------------------------------------------------------------------

def diligence_of_cut(graph: nx.Graph, subset: Iterable) -> float:
    """Return ``ρ(S) = min_{(u,v)∈E(S,S̄)} max(d̄(S)/d_u, d̄(S)/d_v)``.

    ``subset`` must identify the *smaller-volume* side of the cut; the
    function checks this and raises otherwise, because the paper's definition
    takes ``d̄`` over the smaller side.  Returns ``inf`` when no edge crosses
    the cut (such cuts never constrain the minimum over connected graphs).
    """
    subset = set(subset)
    complement = set(graph.nodes()) - subset
    require(len(subset) > 0 and len(complement) > 0, "cut must be a proper non-empty subset")
    vol_s = volume(graph, subset)
    vol_c = volume(graph, complement)
    require(vol_s > 0, "the chosen side of the cut must have positive volume")
    require(
        vol_s <= vol_c,
        "diligence_of_cut expects the smaller-volume side of the cut "
        f"(vol(S)={vol_s} > vol(S̄)={vol_c})",
    )
    crossing = cut_edges(graph, subset)
    if not crossing:
        return math.inf
    d_bar = vol_s / len(subset)
    return min(max(d_bar / graph.degree(u), d_bar / graph.degree(v)) for u, v in crossing)


def diligence_exact(graph: nx.Graph) -> float:
    """Return the exact diligence ``ρ(G)`` by cut enumeration.

    Matches the paper's conventions: ``ρ(G) = 0`` when ``G`` is disconnected,
    and for connected graphs ``1/(n-1) ≤ ρ(G) ≤ 1``.  Limited to
    ``n ≤ EXACT_ENUMERATION_LIMIT``.
    """
    n = graph.number_of_nodes()
    require_node_count(n, minimum=1)
    if n == 1:
        return 1.0
    if graph.number_of_edges() == 0 or not nx.is_connected(graph):
        return 0.0
    require(
        n <= EXACT_ENUMERATION_LIMIT,
        f"diligence_exact enumerates 2^n cuts and is limited to n <= "
        f"{EXACT_ENUMERATION_LIMIT}; use diligence_sampled or the "
        f"construction's analytic value instead (n = {n})",
    )
    total_volume = volume(graph)
    nodes = list(graph.nodes())
    best = math.inf
    for size in range(1, n):
        for combo in itertools.combinations(nodes, size):
            subset = set(combo)
            vol_s = volume(graph, subset)
            if vol_s == 0 or vol_s > total_volume / 2:
                continue
            rho = diligence_of_cut(graph, subset)
            if rho < best:
                best = rho
    return best if best is not math.inf else 1.0


def diligence_sampled(
    graph: nx.Graph,
    samples: int = 200,
    rng: RngLike = None,
) -> float:
    """Return an *upper estimate* of ``ρ(G)`` from randomly sampled cuts.

    ``ρ(G)`` is a minimum over cuts, so sampling can only overestimate it.
    The sampler mixes three cut families that are the usual minimisers:
    single-node cuts, random balanced bisections, and BFS-ball cuts around a
    random centre.
    """
    require_node_count(graph.number_of_nodes(), minimum=2)
    if graph.number_of_edges() == 0 or not nx.is_connected(graph):
        return 0.0
    gen = ensure_rng(rng)
    nodes = list(graph.nodes())
    total_volume = volume(graph)
    best = math.inf

    def consider(subset: Set) -> None:
        nonlocal best
        if not subset or len(subset) == len(nodes):
            return
        vol_s = volume(graph, subset)
        complement_vol = total_volume - vol_s
        if vol_s == 0:
            return
        side = subset if vol_s <= complement_vol else set(nodes) - subset
        if volume(graph, side) == 0:
            return
        rho = diligence_of_cut(graph, side)
        if rho < best:
            best = rho

    # Single-node cuts: often the minimiser when degrees are skewed.
    for u in nodes:
        consider({u})
    for _ in range(samples):
        mode = gen.integers(0, 2)
        if mode == 0:
            size = int(gen.integers(1, len(nodes)))
            subset = set(gen.choice(nodes, size=size, replace=False).tolist())
        else:
            centre = nodes[int(gen.integers(0, len(nodes)))]
            radius = int(gen.integers(1, 4))
            subset = set(nx.single_source_shortest_path_length(graph, centre, cutoff=radius))
        consider(subset)
    return best if best is not math.inf else 1.0


# ---------------------------------------------------------------------------
# Absolute diligence and other degree statistics
# ---------------------------------------------------------------------------

def absolute_diligence(graph: nx.Graph) -> float:
    """Return ``ρ̄(G) = min_{(u,v)∈E} max(1/d_u, 1/d_v)``; 0 for empty graphs."""
    if graph.number_of_edges() == 0:
        return 0.0
    return min(
        max(1.0 / graph.degree(u), 1.0 / graph.degree(v)) for u, v in graph.edges()
    )


def degree_variation_ratio(degree_history: Dict) -> float:
    """Return ``M(G) = max_u Δ_u / δ_u`` from per-node degree histories.

    ``degree_history`` maps each node to an iterable of its degrees over the
    time steps considered.  This is the quantity appearing in the upper bound
    of Giakkoupis, Sauerwald and Stauffer [17] that the paper's Section 1.2
    compares against.  Nodes whose minimum degree is zero are skipped (the
    ratio is undefined); if every node has minimum degree zero the function
    raises.
    """
    best = 0.0
    found = False
    for node, degrees in degree_history.items():
        degrees = list(degrees)
        require(len(degrees) > 0, f"empty degree history for node {node!r}")
        low = min(degrees)
        high = max(degrees)
        if low == 0:
            continue
        found = True
        best = max(best, high / low)
    require(found, "degree_variation_ratio: every node has minimum degree 0")
    return best


# ---------------------------------------------------------------------------
# Bundled snapshot metrics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GraphMetrics:
    """All per-snapshot quantities the bounds of the paper consume.

    Attributes
    ----------
    conductance:
        ``Φ(G)`` (exact, analytic, or an estimate depending on provenance).
    diligence:
        ``ρ(G)``.
    absolute_diligence:
        ``ρ̄(G)``.
    connected:
        Whether the snapshot is connected; drives the ``⌈Φ⌉`` indicator of
        Theorem 1.3.
    n:
        Number of nodes.
    exact:
        True when conductance and diligence were computed by full cut
        enumeration (or supplied analytically by a construction).
    """

    conductance: float
    diligence: float
    absolute_diligence: float
    connected: bool
    n: int
    exact: bool = True

    def conductance_indicator(self) -> int:
        """Return ``⌈Φ(G)⌉`` as used by Theorem 1.3: 1 if connected else 0."""
        return 1 if self.connected else 0


def measure_graph(graph: nx.Graph, sampled_cuts: int = 200, rng: RngLike = None) -> GraphMetrics:
    """Compute a :class:`GraphMetrics` bundle for ``graph``.

    Uses exact enumeration when the graph is small enough and falls back to
    spectral / sampled estimates otherwise (marking ``exact=False``).
    """
    n = graph.number_of_nodes()
    connected = n > 0 and graph.number_of_edges() > 0 and nx.is_connected(graph)
    if n <= EXACT_ENUMERATION_LIMIT:
        phi = conductance_exact(graph) if n >= 1 else 0.0
        rho = diligence_exact(graph)
        exact = True
    else:
        phi = conductance_estimate(graph)
        rho = diligence_sampled(graph, samples=sampled_cuts, rng=rng)
        exact = False
    return GraphMetrics(
        conductance=phi,
        diligence=rho,
        absolute_diligence=absolute_diligence(graph),
        connected=connected,
        n=n,
        exact=exact,
    )


__all__ = [
    "EXACT_ENUMERATION_LIMIT",
    "GraphMetrics",
    "absolute_diligence",
    "average_degree",
    "conductance_estimate",
    "conductance_exact",
    "conductance_of_cut",
    "conductance_spectral_bounds",
    "cut_edges",
    "degree_variation_ratio",
    "diligence_exact",
    "diligence_of_cut",
    "diligence_sampled",
    "measure_graph",
    "volume",
]
