"""Compact CSR snapshots — the array-native graph representation of the library.

A :class:`CsrSnapshot` stores one undirected simple graph in compressed sparse
row form: ``indices[indptr[i]:indptr[i+1]]`` lists the (compact, 0-based)
neighbour ids of node ``i``.  Node labels are kept alongside as an ordered
tuple, so a snapshot round-trips losslessly to and from ``networkx.Graph``.

The representation is the contract between the dynamic-network layer and the
simulation engines: every :class:`repro.dynamics.base.DynamicNetwork` can emit
snapshots in this form (via ``snapshot_for_step``), and the engines in
``repro.core`` index all their per-node state by the compact ids, which lets
rate updates, weighted selection and whole-round contact generation run as
vectorised numpy operations instead of per-node Python loops.

Instances are frozen by convention and enforcement: the underlying arrays are
marked read-only, and derived quantities (degree array, inverse degrees, the
per-entry row-owner array, the networkx view) are cached on first use so a
static network pays each cost once per object, not once per step.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.utils.validation import require


class CsrSnapshot:
    """One immutable graph snapshot in CSR form with node↔index maps.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row ``i`` of the adjacency is
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` array of compact neighbour ids; every undirected edge
        appears twice (once per direction).
    nodes:
        Ordered node labels; label ``nodes[i]`` has compact id ``i``.
    """

    __slots__ = (
        "indptr",
        "indices",
        "nodes",
        "degrees",
        "_index_of",
        "_inverse_degrees",
        "_row_owner",
        "_nx_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        nodes: Sequence[Hashable],
        validate: bool = True,
    ):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        nodes = tuple(nodes)
        if validate:
            require(indptr.ndim == 1 and indices.ndim == 1, "indptr and indices must be 1-d")
            require(len(indptr) == len(nodes) + 1, "indptr must have length n + 1")
            require(indptr[0] == 0 and indptr[-1] == len(indices), "indptr must span indices")
            require(bool(np.all(np.diff(indptr) >= 0)), "indptr must be non-decreasing")
            if len(indices):
                require(
                    0 <= int(indices.min()) and int(indices.max()) < len(nodes),
                    "indices must hold compact ids in [0, n)",
                )
            require(len(set(nodes)) == len(nodes), "node labels must be distinct")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.nodes = nodes
        degrees = np.diff(indptr)
        degrees.setflags(write=False)
        self.degrees = degrees
        self._index_of: Optional[Dict[Hashable, int]] = None
        self._inverse_degrees: Optional[np.ndarray] = None
        self._row_owner: Optional[np.ndarray] = None
        self._nx_cache: Optional[nx.Graph] = None

    # -- basic structure ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    @property
    def index_of(self) -> Dict[Hashable, int]:
        """Mapping from node label to compact id (built lazily, then cached)."""
        if self._index_of is None:
            self._index_of = {label: i for i, label in enumerate(self.nodes)}
        return self._index_of

    def neighbors(self, i: int) -> np.ndarray:
        """Compact neighbour ids of compact node ``i`` (a read-only view)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def degree(self, i: int) -> int:
        """Degree of compact node ``i``."""
        return int(self.degrees[i])

    @property
    def inverse_degrees(self) -> np.ndarray:
        """``1/d_i`` per node (0 for isolated nodes); cached, read-only."""
        if self._inverse_degrees is None:
            inv = np.zeros(self.n, dtype=np.float64)
            positive = self.degrees > 0
            inv[positive] = 1.0 / self.degrees[positive]
            inv.setflags(write=False)
            self._inverse_degrees = inv
        return self._inverse_degrees

    @property
    def row_owner(self) -> np.ndarray:
        """For each adjacency entry, the compact id of the row owning it.

        ``(row_owner[k], indices[k])`` enumerates every *directed* edge, which
        is the shape the vectorised rate builder consumes.  Cached, read-only.
        """
        if self._row_owner is None:
            owner = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
            owner.setflags(write=False)
            self._row_owner = owner
        return self._row_owner

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph,
        nodes: Optional[Sequence[Hashable]] = None,
        cache_graph: bool = True,
    ) -> "CsrSnapshot":
        """Convert a ``networkx.Graph`` into a :class:`CsrSnapshot`.

        Parameters
        ----------
        nodes:
            Optional explicit node order (must be exactly the graph's node
            set).  Passing the dynamic network's fixed node tuple here keeps
            compact ids consistent across every snapshot of a run.
        cache_graph:
            When True (default) the source graph is kept as the snapshot's
            networkx view, so :meth:`to_networkx` is free.  The graph must
            then not be mutated afterwards.
        """
        node_order = tuple(graph.nodes()) if nodes is None else tuple(nodes)
        require(
            len(node_order) == graph.number_of_nodes(),
            "node order must have exactly the graph's node count",
        )
        index = {label: i for i, label in enumerate(node_order)}
        require(
            all(label in index for label in graph.nodes()),
            "node order must cover the graph's node set",
        )
        m = graph.number_of_edges()
        u_ids = np.empty(m, dtype=np.int64)
        v_ids = np.empty(m, dtype=np.int64)
        for k, (u, v) in enumerate(graph.edges()):
            u_ids[k] = index[u]
            v_ids[k] = index[v]
        snapshot = cls.from_edge_arrays(node_order, u_ids, v_ids)
        snapshot._index_of = index
        if cache_graph:
            snapshot._nx_cache = graph
        return snapshot

    @classmethod
    def from_edge_arrays(
        cls,
        nodes: Sequence[Hashable],
        u_ids: np.ndarray,
        v_ids: np.ndarray,
    ) -> "CsrSnapshot":
        """Build a snapshot from arrays of compact edge endpoints.

        Each undirected edge must appear exactly once (in either direction);
        self-loops and duplicates are rejected by the degree bookkeeping only
        in validation of simple use, not exhaustively.
        """
        nodes = tuple(nodes)
        n = len(nodes)
        u_ids = np.ascontiguousarray(u_ids, dtype=np.int64)
        v_ids = np.ascontiguousarray(v_ids, dtype=np.int64)
        require(len(u_ids) == len(v_ids), "edge endpoint arrays must align")
        src = np.concatenate([u_ids, v_ids])
        dst = np.concatenate([v_ids, u_ids])
        degrees = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        indices = dst[order]
        return cls(indptr, indices, nodes, validate=False)

    def to_networkx(self) -> nx.Graph:
        """Return the snapshot as a ``networkx.Graph`` (cached; do not mutate)."""
        if self._nx_cache is None:
            graph = nx.Graph()
            graph.add_nodes_from(self.nodes)
            owner = self.row_owner
            forward = owner < self.indices
            graph.add_edges_from(
                (self.nodes[int(u)], self.nodes[int(v)])
                for u, v in zip(owner[forward], self.indices[forward])
            )
            self._nx_cache = graph
        return self._nx_cache

    # -- array-native metrics ----------------------------------------------

    def is_connected(self) -> bool:
        """True when the snapshot has an edge and every node is reachable."""
        if self.n <= 1:
            return self.n == 1 and self.edge_count > 0
        if self.edge_count == 0:
            return False
        seen = np.zeros(self.n, dtype=bool)
        frontier = np.array([0], dtype=np.int64)
        seen[0] = True
        indptr, indices = self.indptr, self.indices
        while frontier.size:
            starts = indptr[frontier]
            counts = self.degrees[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            shifts = np.repeat(np.cumsum(counts) - counts, counts)
            gather = np.arange(total) - shifts + np.repeat(starts, counts)
            reached = indices[gather]
            fresh = reached[~seen[reached]]
            if fresh.size == 0:
                break
            frontier = np.unique(fresh)
            seen[frontier] = True
        return bool(seen.all())

    def absolute_diligence(self) -> float:
        """``ρ̄ = min_{(u,v)∈E} max(1/d_u, 1/d_v)`` computed on the arrays."""
        if self.edge_count == 0:
            return 0.0
        smaller = np.minimum(self.degrees[self.row_owner], self.degrees[self.indices])
        return 1.0 / float(smaller.max())

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        return f"CsrSnapshot(n={self.n}, edges={self.edge_count})"


def concatenated_neighbors(snapshot: CsrSnapshot, ids: np.ndarray) -> np.ndarray:
    """Return the concatenation of the neighbour lists of ``ids`` (vectorised).

    Equivalent to ``np.concatenate([snapshot.neighbors(i) for i in ids])`` but
    without a Python-level loop; used by the synchronous flooding round.
    """
    ids = np.asarray(ids, dtype=np.int64)
    counts = snapshot.degrees[ids]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = np.repeat(np.cumsum(counts) - counts, counts)
    gather = np.arange(total) - shifts + np.repeat(snapshot.indptr[ids], counts)
    return snapshot.indices[gather]


__all__ = ["CsrSnapshot", "concatenated_neighbors"]
