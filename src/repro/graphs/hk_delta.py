"""The ``H_{k,Δ}(A, B)`` construction of Section 4.

The lower-bound family of Theorem 1.2 is built from snapshots of the form
``H_{k,Δ}(A, B)`` where ``A ∪ B`` partitions the node set:

1. Disjoint clusters ``S_0, ..., S_k`` of size ``Δ`` each, with ``S_0 ⊂ A``
   and ``S_1 ∪ ... ∪ S_k ⊂ B``; consecutive clusters are completely joined
   (a "string of complete bipartite graphs" with ``kΔ²`` edges).
2. Two 4-regular expanders, ``G₁`` on ``A \\ S_0`` and ``G₂`` on
   ``B \\ (S_1 ∪ ... ∪ S_k)``; every node of ``S_0`` is attached to ``Δ``
   distinct nodes of ``G₁`` (and every node of ``S_k`` to ``Δ`` distinct nodes
   of ``G₂``) so that no expander node gains more than a constant number of
   extra edges.

Observation 4.1 gives the analytic parameters used by the bounds:
``Φ(H_{k,Δ}) = Θ(Δ² / (kΔ² + n))`` and ``ρ(H_{k,Δ}) = Θ(1/Δ)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx

from repro.graphs.generators import complete_bipartite_chain, random_regular_expander
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count

#: Minimum expander size; 4-regular graphs need at least 5 nodes.
_MIN_EXPANDER_SIZE = 5


@dataclass
class HkDeltaGraph:
    """A built ``H_{k,Δ}(A, B)`` snapshot together with its structure.

    Attributes
    ----------
    graph:
        The assembled simple graph.
    part_a, part_b:
        The two sides of the partition (``A`` holds ``S_0`` and expander
        ``G₁``; ``B`` holds ``S_1..S_k`` and expander ``G₂``).
    clusters:
        The clusters ``S_0, ..., S_k`` in order.
    delta:
        Cluster size ``Δ``.
    k:
        Number of cluster-to-cluster hops (there are ``k + 1`` clusters).
    """

    graph: nx.Graph
    part_a: Tuple[Hashable, ...]
    part_b: Tuple[Hashable, ...]
    clusters: Tuple[Tuple[Hashable, ...], ...]
    delta: int
    k: int

    @property
    def n(self) -> int:
        """Total number of nodes."""
        return self.graph.number_of_nodes()

    def analytic_conductance(self) -> float:
        """Return the Observation 4.1 value ``Δ² / (kΔ² + n)`` (up to Θ(1))."""
        return self.delta**2 / (self.k * self.delta**2 + self.n)

    def analytic_diligence(self) -> float:
        """Return the Observation 4.1 value ``1/Δ`` (up to Θ(1))."""
        return 1.0 / self.delta

    def analytic_absolute_diligence(self) -> float:
        """Return ``ρ̄`` of the snapshot, which is ``Θ(1/Δ)`` as well.

        Every crossing edge of the bottleneck has both endpoints of degree
        ``2Δ``; the global minimum over edges is attained there, giving
        ``1/(2Δ)``.
        """
        return 1.0 / (2.0 * self.delta)

    def cluster_of(self, node: Hashable) -> int:
        """Return the index ``i`` such that ``node ∈ S_i``, or ``-1`` if none."""
        for index, cluster in enumerate(self.clusters):
            if node in cluster:
                return index
        return -1


def _attach_cluster_to_expander(
    graph: nx.Graph,
    cluster: Sequence[Hashable],
    expander_nodes: Sequence[Hashable],
    delta: int,
) -> None:
    """Attach every node of ``cluster`` to ``delta`` distinct expander nodes.

    Edges are distributed round-robin over ``expander_nodes`` so each expander
    node gains at most ``⌈Δ²/|expander|⌉`` extra edges — an additive constant
    whenever ``Δ² = O(|expander|)``, matching the paper's requirement.
    """
    expander_nodes = list(expander_nodes)
    require(
        len(expander_nodes) >= delta,
        "expander side too small to give each cluster node Δ distinct neighbours "
        f"(need at least {delta}, have {len(expander_nodes)})",
    )
    position = 0
    total = len(expander_nodes)
    for node in cluster:
        attached = 0
        scanned = 0
        while attached < delta:
            require(scanned <= 2 * total, "internal error: could not place cluster edges")
            target = expander_nodes[position % total]
            position += 1
            scanned += 1
            if target != node and not graph.has_edge(node, target):
                graph.add_edge(node, target)
                attached += 1


def build_hk_delta(
    part_a: Sequence[Hashable],
    part_b: Sequence[Hashable],
    k: int,
    delta: int,
    rng: RngLike = None,
) -> HkDeltaGraph:
    """Build ``H_{k,Δ}(A, B)`` over the given partition.

    Parameters
    ----------
    part_a, part_b:
        Disjoint node sets forming the partition ``A ∪ B``.  The paper assumes
        ``n/4 ≤ |A| ≤ 3n/4``; the builder only requires each side to be large
        enough to host its clusters plus a 4-regular expander.
    k:
        Number of bipartite hops; the chain has ``k + 1`` clusters.
    delta:
        Cluster size ``Δ`` (the paper takes ``Δ = ⌈1/ρ⌉ = O(√n)``).
    rng:
        Seed / generator used for the two random regular expanders.

    Returns
    -------
    HkDeltaGraph
        The snapshot plus its structural metadata and analytic metrics.
    """
    part_a = list(part_a)
    part_b = list(part_b)
    require(len(set(part_a) & set(part_b)) == 0, "part_a and part_b must be disjoint")
    require_node_count(k, minimum=1, name="k")
    require_node_count(delta, minimum=1, name="delta")
    require(
        len(part_a) >= delta + _MIN_EXPANDER_SIZE,
        f"|A| must be at least Δ + {_MIN_EXPANDER_SIZE} = {delta + _MIN_EXPANDER_SIZE}, "
        f"got {len(part_a)}",
    )
    require(
        len(part_b) >= k * delta + _MIN_EXPANDER_SIZE,
        f"|B| must be at least kΔ + {_MIN_EXPANDER_SIZE} = {k * delta + _MIN_EXPANDER_SIZE}, "
        f"got {len(part_b)}",
    )
    gen = ensure_rng(rng)

    cluster_s0 = tuple(part_a[:delta])
    expander_a_nodes = part_a[delta:]
    clusters_b = [tuple(part_b[i * delta:(i + 1) * delta]) for i in range(k)]
    expander_b_nodes = part_b[k * delta:]
    clusters = (cluster_s0, *clusters_b)

    # Step 1: the chain of complete bipartite graphs S_0 - S_1 - ... - S_k.
    graph = complete_bipartite_chain(clusters)

    # Step 2: the two 4-regular expanders, glued to S_0 and S_k respectively.
    expander_a = random_regular_expander(4, expander_a_nodes, rng=gen)
    expander_b = random_regular_expander(4, expander_b_nodes, rng=gen)
    graph = nx.compose(graph, expander_a)
    graph = nx.compose(graph, expander_b)
    _attach_cluster_to_expander(graph, cluster_s0, expander_a_nodes, delta)
    _attach_cluster_to_expander(graph, clusters[-1], expander_b_nodes, delta)

    built = HkDeltaGraph(
        graph=graph,
        part_a=tuple(part_a),
        part_b=tuple(part_b),
        clusters=clusters,
        delta=delta,
        k=k,
    )
    return built


def minimum_side_sizes(k: int, delta: int) -> Tuple[int, int]:
    """Return the minimum ``(|A|, |B|)`` accepted by :func:`build_hk_delta`."""
    return (delta + _MIN_EXPANDER_SIZE, k * delta + _MIN_EXPANDER_SIZE)


__all__ = ["HkDeltaGraph", "build_hk_delta", "minimum_side_sizes"]
