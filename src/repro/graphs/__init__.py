"""Graph substrates: metrics (conductance, diligence) and generators.

This subpackage contains everything the paper needs from static graphs:

* :mod:`repro.graphs.metrics` — volume, cuts, conductance ``Φ(G)``,
  diligence ``ρ(G)`` and absolute diligence ``ρ̄(G)`` (Section 1.1 of the
  paper), plus the ``M(G)`` degree-variation ratio used by the related bound
  of Giakkoupis et al.
* :mod:`repro.graphs.generators` — the concrete static graphs the paper's
  constructions are assembled from (cliques, stars, random regular expanders,
  near-regular graphs with a single high-degree node, clique-with-pendant,
  bridged double cliques).
* :mod:`repro.graphs.hk_delta` — the ``H_{k,Δ}(A,B)`` construction of
  Section 4 together with its analytic conductance and diligence
  (Observation 4.1).
"""

from repro.graphs.metrics import (
    GraphMetrics,
    absolute_diligence,
    conductance_exact,
    conductance_of_cut,
    conductance_spectral_bounds,
    cut_edges,
    degree_variation_ratio,
    diligence_exact,
    diligence_of_cut,
    diligence_sampled,
    volume,
)
from repro.graphs.csr import CsrSnapshot
from repro.graphs.generators import (
    bridged_double_clique,
    bridged_double_clique_csr,
    clique,
    clique_csr,
    clique_with_pendant,
    clique_with_pendant_csr,
    complete_bipartite_chain,
    cycle,
    cycle_csr,
    dynamic_star_csr,
    dynamic_star_graph,
    erdos_renyi_csr,
    near_regular_with_hub,
    path,
    random_regular_expander,
    star,
    star_csr,
)
from repro.graphs.hk_delta import HkDeltaGraph, build_hk_delta

__all__ = [
    "CsrSnapshot",
    "GraphMetrics",
    "absolute_diligence",
    "conductance_exact",
    "conductance_of_cut",
    "conductance_spectral_bounds",
    "cut_edges",
    "degree_variation_ratio",
    "diligence_exact",
    "diligence_of_cut",
    "diligence_sampled",
    "volume",
    "bridged_double_clique",
    "bridged_double_clique_csr",
    "clique",
    "clique_csr",
    "clique_with_pendant",
    "clique_with_pendant_csr",
    "complete_bipartite_chain",
    "cycle",
    "cycle_csr",
    "dynamic_star_csr",
    "dynamic_star_graph",
    "erdos_renyi_csr",
    "near_regular_with_hub",
    "path",
    "random_regular_expander",
    "star",
    "star_csr",
    "HkDeltaGraph",
    "build_hk_delta",
]
