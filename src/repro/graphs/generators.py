"""Static graph generators used by the paper's constructions.

These are the building blocks from which the dynamic networks of Sections 4-6
are assembled:

* cliques, stars, cycles and paths (standard topologies used for calibration
  and for the dichotomy networks of Theorem 1.7);
* random ``d``-regular expanders with a verified constant spectral gap
  (Section 4 step 2 requires "arbitrary 4-regular expander graphs");
* ``G(A, d₁, d₂)`` — a connected graph where every node has degree ``d₁``
  except one hub of degree ``d₂`` (Section 5.1);
* the clique-with-pendant-edge and bridged double clique making up ``G1`` of
  Figure 1(a);
* a chain of complete bipartite clusters (step 1 of the ``H_{k,Δ}``
  construction, also exported separately for testing).
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.graphs.csr import CsrSnapshot
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count, require_probability

#: Spectral-gap threshold below which a random regular graph is rejected as
#: "not an expander".  Random 4-regular graphs have second eigenvalue of the
#: normalised Laplacian bounded away from 0 w.h.p.; 0.1 is a conservative cut.
EXPANDER_GAP_THRESHOLD = 0.1

#: Number of regeneration attempts before ``random_regular_expander`` gives up.
EXPANDER_MAX_ATTEMPTS = 25


# ---------------------------------------------------------------------------
# Elementary topologies
# ---------------------------------------------------------------------------

def clique(nodes: Iterable[Hashable]) -> nx.Graph:
    """Return the complete graph on ``nodes``."""
    nodes = list(nodes)
    require(len(nodes) >= 1, "clique requires at least one node")
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from((u, v) for i, u in enumerate(nodes) for v in nodes[i + 1:])
    return graph


def star(center: Hashable, leaves: Iterable[Hashable]) -> nx.Graph:
    """Return a star with the given ``center`` and ``leaves``."""
    leaves = list(leaves)
    require(len(leaves) >= 1, "star requires at least one leaf")
    require(center not in leaves, "center must not also be a leaf")
    graph = nx.Graph()
    graph.add_node(center)
    graph.add_nodes_from(leaves)
    graph.add_edges_from((center, leaf) for leaf in leaves)
    return graph


def dynamic_star_graph(n_plus_one: int, center: Hashable) -> nx.Graph:
    """Return the star over nodes ``0..n`` with the prescribed ``center``.

    This is a single snapshot of the dynamic star ``G2`` of Figure 1(b): the
    node set is fixed to ``{0, ..., n}`` and only the centre changes between
    time steps.
    """
    require_node_count(n_plus_one, minimum=2, name="n_plus_one")
    nodes = list(range(n_plus_one))
    require(center in nodes, f"center {center!r} must be one of the {n_plus_one} nodes")
    return star(center, [u for u in nodes if u != center])


def cycle(nodes: Iterable[Hashable]) -> nx.Graph:
    """Return the cycle visiting ``nodes`` in the given order."""
    nodes = list(nodes)
    require(len(nodes) >= 3, "cycle requires at least three nodes")
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(zip(nodes, nodes[1:] + nodes[:1]))
    return graph


def path(nodes: Iterable[Hashable]) -> nx.Graph:
    """Return the path visiting ``nodes`` in the given order."""
    nodes = list(nodes)
    require(len(nodes) >= 2, "path requires at least two nodes")
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(zip(nodes, nodes[1:]))
    return graph


def complete_bipartite_chain(clusters: Sequence[Sequence[Hashable]]) -> nx.Graph:
    """Return a "string of complete bipartite graphs" over the given clusters.

    Consecutive clusters ``S_i`` and ``S_{i+1}`` are joined completely; this is
    step 1 of the ``H_{k,Δ}(A,B)`` construction (Section 4).
    """
    require(len(clusters) >= 2, "need at least two clusters to form a chain")
    graph = nx.Graph()
    seen = set()
    for cluster in clusters:
        cluster = list(cluster)
        require(len(cluster) >= 1, "clusters must be non-empty")
        for node in cluster:
            require(node not in seen, f"clusters must be disjoint; {node!r} repeated")
            seen.add(node)
        graph.add_nodes_from(cluster)
    for left, right in zip(clusters, clusters[1:]):
        graph.add_edges_from((u, v) for u in left for v in right)
    return graph


# ---------------------------------------------------------------------------
# CSR-native constructors (no dict-of-dict adjacency on the hot path)
# ---------------------------------------------------------------------------

def clique_csr(nodes: Iterable[Hashable]) -> CsrSnapshot:
    """Return the complete graph on ``nodes`` as a :class:`CsrSnapshot`."""
    nodes = list(nodes)
    n = len(nodes)
    require(n >= 1, "clique requires at least one node")
    if n == 1:
        return CsrSnapshot(np.zeros(2, dtype=np.int64), np.empty(0, dtype=np.int64), nodes)
    grid = np.broadcast_to(np.arange(n, dtype=np.int64), (n, n))
    indices = grid[~np.eye(n, dtype=bool)]
    indptr = np.arange(0, n * (n - 1) + 1, n - 1, dtype=np.int64)
    return CsrSnapshot(indptr, indices, nodes, validate=False)


def star_csr(center: Hashable, leaves: Iterable[Hashable]) -> CsrSnapshot:
    """Return a star (``center`` first in the node order) as a :class:`CsrSnapshot`."""
    leaves = list(leaves)
    require(len(leaves) >= 1, "star requires at least one leaf")
    require(center not in leaves, "center must not also be a leaf")
    n = len(leaves) + 1
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.arange(n - 1, 2 * (n - 1) + 1, dtype=np.int64)]
    )
    indices = np.concatenate(
        [np.arange(1, n, dtype=np.int64), np.zeros(n - 1, dtype=np.int64)]
    )
    return CsrSnapshot(indptr, indices, [center] + leaves, validate=False)


def dynamic_star_csr(n_plus_one: int, center: Hashable) -> CsrSnapshot:
    """CSR snapshot of the dynamic star ``G2``: nodes ``0..n`` in label order.

    Unlike :func:`star_csr` the node order is the fixed label order ``0..n``
    regardless of which node is the centre, so compact ids stay stable across
    the centre rotations of :class:`repro.dynamics.dichotomy.DynamicStarNetwork`.
    """
    require_node_count(n_plus_one, minimum=2, name="n_plus_one")
    require(
        isinstance(center, (int, np.integer)) and 0 <= center < n_plus_one,
        f"center {center!r} must be one of the {n_plus_one} nodes",
    )
    center = int(center)
    n = n_plus_one - 1
    degrees = np.ones(n_plus_one, dtype=np.int64)
    degrees[center] = n
    indptr = np.zeros(n_plus_one + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.full(2 * n, center, dtype=np.int64)
    others = np.concatenate(
        [np.arange(center, dtype=np.int64), np.arange(center + 1, n_plus_one, dtype=np.int64)]
    )
    indices[indptr[center]:indptr[center + 1]] = others
    return CsrSnapshot(indptr, indices, range(n_plus_one), validate=False)


def cycle_csr(nodes: Iterable[Hashable]) -> CsrSnapshot:
    """Return the cycle visiting ``nodes`` in order as a :class:`CsrSnapshot`."""
    nodes = list(nodes)
    n = len(nodes)
    require(n >= 3, "cycle requires at least three nodes")
    ids = np.arange(n, dtype=np.int64)
    prev_ids = (ids - 1) % n
    next_ids = (ids + 1) % n
    indices = np.stack([np.minimum(prev_ids, next_ids), np.maximum(prev_ids, next_ids)], axis=1)
    indptr = np.arange(0, 2 * n + 1, 2, dtype=np.int64)
    return CsrSnapshot(indptr, indices.reshape(-1), nodes, validate=False)


def _clique_edge_ids(member_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compact endpoint arrays of the clique over the given compact ids."""
    upper = np.triu_indices(len(member_ids), k=1)
    return member_ids[upper[0]], member_ids[upper[1]]


def clique_with_pendant_csr(n: int) -> CsrSnapshot:
    """CSR form of :func:`clique_with_pendant` (labels ``1..n+1``, pendant last)."""
    require_node_count(n, minimum=2)
    core_u, core_v = _clique_edge_ids(np.arange(n, dtype=np.int64))
    u_ids = np.concatenate([core_u, np.array([0], dtype=np.int64)])
    v_ids = np.concatenate([core_v, np.array([n], dtype=np.int64)])
    return CsrSnapshot.from_edge_arrays(range(1, n + 2), u_ids, v_ids)


def bridged_double_clique_csr(n: int) -> CsrSnapshot:
    """CSR form of :func:`bridged_double_clique` on labels ``1..n+1``.

    Matches the networkx construction exactly: the left clique holds node 1,
    the right clique holds node ``n+1``, joined by the bridge ``{1, n+1}``.
    """
    require_node_count(n, minimum=3)
    total = n + 1
    left_size = (total + 1) // 2
    left_nodes = [1] + [u for u in range(2, total + 1) if u != n + 1][: left_size - 1]
    left_set = set(left_nodes)
    right_nodes = [u for u in range(1, total + 1) if u not in left_set]
    labels = list(range(1, total + 1))
    left_ids = np.array([label - 1 for label in left_nodes], dtype=np.int64)
    right_ids = np.array([label - 1 for label in right_nodes], dtype=np.int64)
    lu, lv = _clique_edge_ids(left_ids)
    ru, rv = _clique_edge_ids(right_ids)
    u_ids = np.concatenate([lu, ru, np.array([0], dtype=np.int64)])
    v_ids = np.concatenate([lv, rv, np.array([n], dtype=np.int64)])
    return CsrSnapshot.from_edge_arrays(labels, u_ids, v_ids)


#: Chunk length for the vectorised Bernoulli sweep over all node pairs in
#: ``erdos_renyi_csr`` (bounds transient memory to a few megabytes).
ER_SAMPLING_CHUNK = 1 << 20


def erdos_renyi_csr(
    n: int,
    edge_probability: float,
    rng: RngLike = None,
    nodes: Optional[Sequence[Hashable]] = None,
    method: str = "auto",
) -> CsrSnapshot:
    """Sample ``G(n, p)`` directly into CSR form.

    Every one of the ``n(n-1)/2`` potential edges is included independently
    with probability ``p`` (the exact Erdős–Rényi model).  Two samplers
    realise the same distribution:

    * ``"bernoulli"`` — one uniform per pair, swept in vectorised chunks:
      O(n²) variates, no ``n × n`` structure ever materialised;
    * ``"geometric"`` — geometric-skip sampling: the gaps between successive
      edges in condensed pair order are iid ``Geometric(p)``, so one variate
      is drawn *per edge* — O(m) = O(p n²) work, which for sparse large-n
      graphs (``p = Θ(log n / n)``) is orders of magnitude fewer draws.

    ``"auto"`` keeps the Bernoulli sweep (and its generator stream, on which
    existing fixed-seed graphs depend) up to :data:`ER_SAMPLING_CHUNK` pairs
    and switches to geometric skips beyond that.  The two methods consume
    different random streams: for a fixed seed they produce different (but
    identically distributed) graphs.
    """
    require_node_count(n, minimum=1)
    require_probability(edge_probability, "edge_probability")
    require(
        method in ("auto", "bernoulli", "geometric"),
        f"method must be 'auto', 'bernoulli' or 'geometric', got {method!r}",
    )
    labels = range(n) if nodes is None else nodes
    require(
        len(labels) == n,
        f"nodes must provide exactly n labels (n={n}, got {len(labels)})",
    )
    gen = ensure_rng(rng)
    total_pairs = n * (n - 1) // 2
    if method == "auto":
        method = "geometric" if total_pairs > ER_SAMPLING_CHUNK else "bernoulli"
    if method == "geometric":
        pair_ids = _geometric_pair_ids(gen, total_pairs, edge_probability)
    else:
        hits: List[np.ndarray] = []
        offset = 0
        while offset < total_pairs:
            chunk = min(ER_SAMPLING_CHUNK, total_pairs - offset)
            local = np.nonzero(gen.random(chunk) < edge_probability)[0]
            if local.size:
                hits.append(local + offset)
            offset += chunk
        pair_ids = (
            np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
        )
    if pair_ids.size:
        u_ids, v_ids = condensed_to_pair(pair_ids, n)
    else:
        u_ids = v_ids = np.empty(0, dtype=np.int64)
    return CsrSnapshot.from_edge_arrays(labels, u_ids, v_ids)


def _geometric_pair_ids(
    gen: np.random.Generator, total_pairs: int, p: float
) -> np.ndarray:
    """Condensed indices of the sampled edges, one geometric variate per edge.

    A Bernoulli(p) process over positions ``0..total_pairs-1`` has iid
    ``Geometric(p)`` gaps between successes (support ``{1, 2, ...}``), so
    cumulative sums of geometric draws walk exactly the positions the
    Bernoulli sweep would have accepted — without touching the misses.
    """
    if p <= 0.0 or total_pairs == 0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total_pairs, dtype=np.int64)
    hits: List[np.ndarray] = []
    position = -1  # last accepted position; the first gap starts from -1
    while position < total_pairs:
        remaining = total_pairs - position
        # Enough draws to cross the remaining span w.h.p.; the tail loops.
        block = max(1024, int(remaining * p * 1.05) + 64)
        positions = position + np.cumsum(gen.geometric(p, size=block))
        position = int(positions[-1])
        hits.append(positions[positions < total_pairs])
    return np.concatenate(hits).astype(np.int64, copy=False)


def condensed_to_pair(pair_ids: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Map condensed upper-triangle indices to ``(i, j)`` pairs with ``i < j``.

    Pairs are numbered row-major: ``(0,1), (0,2), ..., (0,n-1), (1,2), ...``.
    """
    pair_ids = np.asarray(pair_ids, dtype=np.int64)
    # Row i starts at offset i*n - i*(i+1)/2 - i... solve the quadratic for i.
    b = 2 * n - 1
    i = ((b - np.sqrt(b * b - 8.0 * pair_ids)) // 2).astype(np.int64)

    def row_start(rows: np.ndarray) -> np.ndarray:
        return rows * n - (rows * (rows + 1)) // 2

    # Guard against floating point landing one row off.
    i[row_start(i) > pair_ids] -= 1
    i[pair_ids - row_start(i) >= (n - 1 - i)] += 1
    j = pair_ids - row_start(i) + i + 1
    return i, j


def pair_to_condensed(u_ids: np.ndarray, v_ids: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`condensed_to_pair` (expects ``u < v`` elementwise)."""
    u_ids = np.asarray(u_ids, dtype=np.int64)
    v_ids = np.asarray(v_ids, dtype=np.int64)
    return u_ids * n - (u_ids * (u_ids + 1)) // 2 - u_ids + v_ids - 1


# ---------------------------------------------------------------------------
# Expanders
# ---------------------------------------------------------------------------

def spectral_gap(graph: nx.Graph) -> float:
    """Return the second-smallest eigenvalue of the normalised Laplacian."""
    if graph.number_of_nodes() < 2 or graph.number_of_edges() == 0:
        return 0.0
    laplacian = nx.normalized_laplacian_matrix(graph).toarray()
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))
    return max(float(eigenvalues[1]), 0.0)


def random_regular_expander(
    degree: int,
    nodes: Iterable[Hashable],
    rng: RngLike = None,
    gap_threshold: float = EXPANDER_GAP_THRESHOLD,
    max_attempts: int = EXPANDER_MAX_ATTEMPTS,
) -> nx.Graph:
    """Return a connected random ``degree``-regular graph with a verified gap.

    Section 4 of the paper only requires the two expanders glued to the
    cluster chain to have ``Φ = Θ(1)`` and constant degree.  Random regular
    graphs have this property with high probability; we verify the normalised
    Laplacian gap and regenerate when a sample fails.

    Parameters
    ----------
    degree:
        Regular degree (must satisfy ``degree < n`` and ``degree * n`` even).
    nodes:
        Node labels; the generated graph is relabelled onto these.
    gap_threshold:
        Minimum accepted spectral gap; snapshots below it are resampled.
    """
    nodes = list(nodes)
    n = len(nodes)
    require_node_count(n, minimum=2)
    require(0 < degree < n, f"degree must satisfy 0 < degree < n (degree={degree}, n={n})")
    require(degree * n % 2 == 0, "degree * n must be even for a regular graph to exist")
    gen = ensure_rng(rng)
    # Very small graphs cannot meet asymptotic gap thresholds; be lenient.
    effective_threshold = gap_threshold if n >= 8 else 0.0
    last_gap = 0.0
    for _ in range(max_attempts):
        seed = int(gen.integers(0, 2**32 - 1))
        candidate = nx.random_regular_graph(degree, n, seed=seed)
        if not nx.is_connected(candidate):
            continue
        last_gap = spectral_gap(candidate)
        if last_gap >= effective_threshold:
            return nx.relabel_nodes(candidate, dict(zip(range(n), nodes)))
    raise RuntimeError(
        f"failed to generate a {degree}-regular expander on {n} nodes after "
        f"{max_attempts} attempts (last spectral gap {last_gap:.4f} < "
        f"{effective_threshold})"
    )


# ---------------------------------------------------------------------------
# Section 5.1 building blocks
# ---------------------------------------------------------------------------

def regular_connected_graph(nodes: Sequence[Hashable], degree: int, rng: RngLike = None) -> nx.Graph:
    """Return a connected ``degree``-regular graph ``G(A, d₁)`` on ``nodes``.

    Uses a circulant construction (each node connected to its ``degree/2``
    nearest successors on a ring) when ``degree`` is even, which is always
    connected and deterministic; falls back to rejection sampling of random
    regular graphs for odd degrees.
    """
    nodes = list(nodes)
    n = len(nodes)
    require_node_count(n, minimum=2)
    require(0 < degree < n, f"degree must satisfy 0 < degree < n (degree={degree}, n={n})")
    require(degree * n % 2 == 0, "degree * n must be even for a regular graph to exist")
    if degree % 2 == 0:
        half = degree // 2
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        for i in range(n):
            for offset in range(1, half + 1):
                graph.add_edge(nodes[i], nodes[(i + offset) % n])
        return graph
    gen = ensure_rng(rng)
    for _ in range(EXPANDER_MAX_ATTEMPTS):
        seed = int(gen.integers(0, 2**32 - 1))
        candidate = nx.random_regular_graph(degree, n, seed=seed)
        if nx.is_connected(candidate):
            return nx.relabel_nodes(candidate, dict(zip(range(n), nodes)))
    raise RuntimeError(f"failed to build a connected {degree}-regular graph on {n} nodes")


def near_regular_with_hub(
    nodes: Sequence[Hashable],
    base_degree: int,
    hub_degree: int,
    hub: Optional[Hashable] = None,
    rng: RngLike = None,
) -> Tuple[nx.Graph, Hashable]:
    """Return ``G(A, d₁, d₂)``: connected, all degrees ``d₁`` except one hub ``d₂``.

    The Section 5.1 construction needs a connected simple graph in which every
    node has (even) degree ``d₁`` apart from a single node of (even) degree
    ``d₂ > d₁``.  We realise it as a circulant ``d₁``-regular graph plus
    ``(d₂ - d₁)/2`` extra edge-disjoint "chords" through the hub, obtained by
    taking a matching on ``d₂ - d₁`` non-neighbours of the hub, removing those
    matching edges... — more simply: we connect the hub to ``d₂ - d₁`` extra
    nodes and delete one edge between each *pair* of those extra neighbours so
    their degrees are preserved.

    Returns ``(graph, hub_node)``.
    """
    nodes = list(nodes)
    n = len(nodes)
    require(base_degree % 2 == 0 and base_degree >= 2, "base_degree must be even and >= 2")
    require(hub_degree % 2 == 0, "hub_degree must be even")
    require(hub_degree >= base_degree, "hub_degree must be at least base_degree")
    extra = hub_degree - base_degree
    require(
        hub_degree <= n - 1,
        f"hub_degree must be at most n-1 (hub_degree={hub_degree}, n={n})",
    )
    graph = regular_connected_graph(nodes, base_degree, rng=rng)
    hub = nodes[0] if hub is None else hub
    require(hub in graph, f"hub {hub!r} must be one of the provided nodes")
    if extra == 0:
        return graph, hub
    # Candidate new neighbours: nodes not currently adjacent to the hub.
    non_neighbours = [u for u in nodes if u != hub and not graph.has_edge(hub, u)]
    require(
        len(non_neighbours) >= extra,
        "not enough non-neighbours of the hub to raise its degree "
        f"(need {extra}, have {len(non_neighbours)})",
    )
    chosen: List[Hashable] = []
    # Pick pairs of chosen new neighbours that are currently adjacent to each
    # other, so deleting their shared edge keeps their degrees at d1 after we
    # attach them to the hub.
    candidate_set = set(non_neighbours)
    used = set()
    for u in non_neighbours:
        if len(chosen) >= extra:
            break
        if u in used:
            continue
        for v in graph.neighbors(u):
            if v in candidate_set and v not in used and v != u and not graph.has_edge(hub, v):
                chosen.extend([u, v])
                used.update([u, v])
                graph.remove_edge(u, v)
                break
    require(
        len(chosen) >= extra,
        "could not find enough adjacent non-neighbour pairs to rewire through the hub; "
        "try a larger node set or a smaller hub_degree",
    )
    chosen = chosen[:extra]
    for u in chosen:
        graph.add_edge(hub, u)
    if not nx.is_connected(graph):
        # Rewiring removed a bridge (extremely unlikely on circulants with
        # d1 >= 4, possible for d1 = 2).  Retry with a different rng draw.
        gen = ensure_rng(rng)
        return near_regular_with_hub(
            nodes, base_degree, hub_degree, hub=hub, rng=int(gen.integers(0, 2**32 - 1))
        )
    return graph, hub


# ---------------------------------------------------------------------------
# Figure 1(a) building blocks
# ---------------------------------------------------------------------------

def clique_with_pendant(n: int, pendant: Hashable = None) -> nx.Graph:
    """Return an ``n``-node clique ``{1..n}`` plus a pendant node attached to node 1.

    This is ``G(0)`` of the dynamic network ``G1`` in Figure 1(a): node
    ``n + 1`` (the pendant) initially knows the rumor and is connected only to
    node 1.  Nodes are labelled ``1..n`` with the pendant labelled ``n + 1``
    unless an explicit ``pendant`` label is given.
    """
    require_node_count(n, minimum=2)
    core = clique(range(1, n + 1))
    pendant_label = (n + 1) if pendant is None else pendant
    require(pendant_label not in core, "pendant label clashes with a clique node")
    core.add_edge(1, pendant_label)
    return core


def bridged_double_clique(n: int) -> nx.Graph:
    """Return two equal cliques joined by a single bridge edge.

    This is ``G(1)`` (and all later snapshots) of ``G1`` in Figure 1(a): the
    left clique contains node 1, the right clique contains node ``n + 1``, and
    the bridge is the edge ``{1, n + 1}``.  The total node count is ``n + 1``
    with the two cliques of size ``⌈(n+1)/2⌉`` and ``⌊(n+1)/2⌋``.
    """
    require_node_count(n, minimum=3)
    total = n + 1
    left_size = (total + 1) // 2
    left_nodes = [1] + [u for u in range(2, total + 1) if u != n + 1][: left_size - 1]
    right_nodes = [u for u in range(1, total + 1) if u not in set(left_nodes)]
    require(n + 1 in right_nodes, "internal error: node n+1 must be in the right clique")
    graph = nx.compose(clique(left_nodes), clique(right_nodes))
    graph.add_edge(1, n + 1)
    return graph


__all__ = [
    "EXPANDER_GAP_THRESHOLD",
    "EXPANDER_MAX_ATTEMPTS",
    "ER_SAMPLING_CHUNK",
    "bridged_double_clique",
    "bridged_double_clique_csr",
    "clique",
    "clique_csr",
    "clique_with_pendant_csr",
    "condensed_to_pair",
    "cycle_csr",
    "dynamic_star_csr",
    "erdos_renyi_csr",
    "pair_to_condensed",
    "star_csr",
    "clique_with_pendant",
    "complete_bipartite_chain",
    "cycle",
    "dynamic_star_graph",
    "near_regular_with_hub",
    "path",
    "random_regular_expander",
    "regular_connected_graph",
    "spectral_gap",
    "star",
]
