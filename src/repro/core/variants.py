"""Contact-rate variants of the asynchronous algorithm.

For a crossing edge ``{u, v}`` with ``u`` informed and ``v`` uninformed, the
rate at which the rumor travels across the edge depends on the variant:

* **push–pull** (Definition 1): ``1/d_u + 1/d_v`` — ``u`` pushes at rate
  ``1/d_u`` and ``v`` pulls at rate ``1/d_v``;
* **push**: ``1/d_u`` only;
* **pull**: ``1/d_v`` only;
* **2-push** (Section 4 and 5.2 analysis device): every node carries a rate-2
  clock and only pushes, so the edge fires at rate ``2/d_u``.

The module also implements the *forward 2-push* process of Lemma 4.2, a
restricted push process on the cluster chain of ``H_{k,Δ}`` where informed
nodes only push "forward" to the next cluster — the coupling the paper uses to
upper bound how far the rumor can travel along the chain in one unit of time.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require


class Variant(enum.Enum):
    """Which contact actions carry the rumor in the asynchronous process."""

    PUSH_PULL = "push-pull"
    PUSH = "push"
    PULL = "pull"
    TWO_PUSH = "2-push"

    def edge_rate(self, informed_degree: int, uninformed_degree: int) -> float:
        """Rate at which the rumor crosses an informed→uninformed edge.

        Parameters are the degrees of the informed endpoint and the uninformed
        endpoint in the current snapshot.
        """
        require(informed_degree >= 1, "informed endpoint must have positive degree")
        require(uninformed_degree >= 1, "uninformed endpoint must have positive degree")
        if self is Variant.PUSH_PULL:
            return 1.0 / informed_degree + 1.0 / uninformed_degree
        if self is Variant.PUSH:
            return 1.0 / informed_degree
        if self is Variant.PULL:
            return 1.0 / uninformed_degree
        if self is Variant.TWO_PUSH:
            return 2.0 / informed_degree
        raise AssertionError(f"unhandled variant {self!r}")

    def total_clock_rate(self, n: int) -> float:
        """Total clock rate across ``n`` nodes (used by the naive engine)."""
        return 2.0 * n if self is Variant.TWO_PUSH else float(n)

    def rate_coefficients(self) -> Tuple[float, float]:
        """``(a, b)`` such that the crossing-edge rate is ``a/d_inf + b/d_uninf``.

        This is the form the vectorised boundary engine consumes: the rate of
        an informed→uninformed edge is ``a · (1/d_informed) + b · (1/d_uninformed)``
        with the same values :meth:`edge_rate` computes pairwise.
        """
        if self is Variant.PUSH_PULL:
            return (1.0, 1.0)
        if self is Variant.PUSH:
            return (1.0, 0.0)
        if self is Variant.PULL:
            return (0.0, 1.0)
        if self is Variant.TWO_PUSH:
            return (2.0, 0.0)
        raise AssertionError(f"unhandled variant {self!r}")


def forward_two_push_chain(
    cluster_sizes: Sequence[int],
    duration: float = 1.0,
    rng: RngLike = None,
    initially_informed: int = None,
) -> List[int]:
    """Simulate the forward 2-push process on a chain of clusters.

    Lemma 4.2 couples the rumor's progress along the bipartite chain
    ``S_0 - S_1 - ... - S_k`` of ``H_{k,Δ}`` with the *forward 2-push*
    process: every informed node of cluster ``S_i`` (``i < k``) carries a
    rate-2 exponential clock and, when it rings, pushes the rumor to a
    uniformly random node of ``S_{i+1}``.  All of ``S_0`` starts informed.

    This function simulates the process exactly for ``duration`` time units
    and returns the number of informed nodes in each cluster at the end.
    The expected count in the last cluster is at most ``(2·duration)^k/k! · Δ``
    (the bound the proof of Lemma 4.2 derives), which the tests and the
    Lemma 4.2 experiment check empirically.

    Parameters
    ----------
    cluster_sizes:
        ``[|S_0|, |S_1|, ..., |S_k|]``.
    duration:
        Length of the simulated time window (the paper uses one time unit).
    initially_informed:
        How many nodes of ``S_0`` start informed; defaults to all of them.
    """
    cluster_sizes = list(cluster_sizes)
    require(len(cluster_sizes) >= 2, "need at least two clusters")
    require(all(size >= 1 for size in cluster_sizes), "cluster sizes must be positive")
    require(duration >= 0, "duration must be non-negative")
    gen = ensure_rng(rng)
    k = len(cluster_sizes) - 1
    informed_counts = [0] * len(cluster_sizes)
    informed_counts[0] = cluster_sizes[0] if initially_informed is None else min(
        initially_informed, cluster_sizes[0]
    )
    require(informed_counts[0] >= 1, "at least one node of S_0 must start informed")

    now = 0.0
    while True:
        # Only informed nodes in clusters 0..k-1 can push forward.
        pushers = sum(informed_counts[:k])
        if pushers == 0:
            break
        rate = 2.0 * pushers
        wait = gen.exponential(1.0 / rate)
        now += wait
        if now > duration:
            break
        # Pick the pushing cluster proportionally to its informed count.
        weights = np.array(informed_counts[:k], dtype=float)
        index = int(gen.choice(k, p=weights / weights.sum()))
        target_cluster = index + 1
        target_size = cluster_sizes[target_cluster]
        # The push hits a uniformly random node of the next cluster; it only
        # matters if that node was still uninformed.
        if gen.random() < (target_size - informed_counts[target_cluster]) / target_size:
            informed_counts[target_cluster] += 1
    return informed_counts


def forward_two_push_tail_bound(k: int, delta: int, duration: float = 1.0) -> float:
    """Return the Lemma 4.2 expectation bound ``(2·duration)^k / k! · Δ``."""
    require(k >= 1, "k must be at least 1")
    require(delta >= 1, "delta must be at least 1")
    value = delta
    for i in range(1, k + 1):
        value *= (2.0 * duration) / i
    return value


__all__ = ["Variant", "forward_two_push_chain", "forward_two_push_tail_bound"]
