"""Run results shared by every rumor-spreading process in the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple


@dataclass
class SpreadResult:
    """Outcome of one rumor-spreading run.

    Attributes
    ----------
    spread_time:
        The (continuous or round-valued) time at which the last reachable node
        became informed; ``inf`` when the run hit its time limit first.
    informed_times:
        Mapping from node to the time it became informed.  The source is
        recorded at time 0.  Nodes never informed are absent.
    completed:
        True when every target node was informed before the time limit.
    n:
        Number of nodes in the network.
    steps_used:
        Number of discrete snapshots the run consumed (i.e. ``⌈spread_time⌉``
        for asynchronous runs, the round count for synchronous runs).
    source:
        The node the rumor started at.
    synchronous:
        True for round-based runs (spread_time counts rounds), False for
        continuous-time runs.
    events:
        Number of elementary simulation events processed (informing contacts
        for the boundary engine, clock ticks for the naive engine, node-round
        contacts for synchronous runs).  Useful for performance accounting.
    """

    spread_time: float
    informed_times: Dict[Hashable, float]
    completed: bool
    n: int
    steps_used: int
    source: Hashable
    synchronous: bool = False
    events: int = 0

    @property
    def informed_count(self) -> int:
        """Number of nodes that learned the rumor during the run."""
        return len(self.informed_times)

    def informed_at(self, time: float) -> int:
        """Return how many nodes were informed by (continuous/round) ``time``."""
        return sum(1 for value in self.informed_times.values() if value <= time)

    def informing_order(self) -> List[Tuple[Hashable, float]]:
        """Return ``(node, time)`` pairs sorted by informing time."""
        return sorted(self.informed_times.items(), key=lambda item: (item[1], str(item[0])))

    def time_to_fraction(self, fraction: float) -> Optional[float]:
        """Return the first time at which ``fraction`` of all nodes were informed.

        Returns ``None`` when the run never reached that fraction.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        target = max(1, int(round(fraction * self.n)))
        ordered = self.informing_order()
        if len(ordered) < target:
            return None
        return ordered[target - 1][1]

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        status = "completed" if self.completed else "TIMED OUT"
        kind = "rounds" if self.synchronous else "time"
        return (
            f"{status}: {self.informed_count}/{self.n} informed, "
            f"spread {kind} = {self.spread_time:.3f}, steps = {self.steps_used}"
        )


__all__ = ["SpreadResult"]
