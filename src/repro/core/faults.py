"""Fault injection for the rumor spreading processes.

The introduction of the paper motivates randomized rumor spreading with its
robustness to node and link failures.  This module lets any simulator run
under two simple fault models:

* **message drops** — every contact independently fails with probability
  ``drop_probability``.  For the asynchronous process this is a thinning of
  the underlying Poisson processes, so the boundary engine implements it
  exactly by scaling every crossing-edge rate by ``1 - drop_probability``.
* **node crashes** — nodes listed in ``crashed_nodes`` (or whose crash time in
  ``crash_times`` has passed) neither initiate nor answer contacts.  A run is
  considered complete when every *surviving* node is informed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional

from repro.utils.validation import require_non_negative, require_probability


@dataclass(frozen=True)
class FaultModel:
    """Description of the faults injected into a run.

    Attributes
    ----------
    drop_probability:
        Probability that any single contact is lost.
    crashed_nodes:
        Nodes that are down for the whole run.
    crash_times:
        Mapping node → time at which that node crashes (it behaves normally
        before that time).  Times are continuous for asynchronous runs and
        round indices for synchronous runs.
    """

    drop_probability: float = 0.0
    crashed_nodes: FrozenSet[Hashable] = frozenset()
    crash_times: Mapping[Hashable, float] = field(default_factory=dict)

    def __post_init__(self):
        require_probability(self.drop_probability, "drop_probability")
        object.__setattr__(self, "crashed_nodes", frozenset(self.crashed_nodes))
        for node, time in self.crash_times.items():
            require_non_negative(time, f"crash time of node {node!r}")

    @classmethod
    def none(cls) -> "FaultModel":
        """The fault-free model (the default everywhere)."""
        return cls()

    @property
    def has_faults(self) -> bool:
        """True when the model injects any fault at all."""
        return (
            self.drop_probability > 0
            or len(self.crashed_nodes) > 0
            or len(self.crash_times) > 0
        )

    def delivery_probability(self) -> float:
        """Probability that a single contact succeeds."""
        return 1.0 - self.drop_probability

    def is_down(self, node: Hashable, time: float) -> bool:
        """Return True when ``node`` is crashed at ``time``."""
        if node in self.crashed_nodes:
            return True
        crash_time = self.crash_times.get(node)
        return crash_time is not None and time >= crash_time

    def active_nodes(self, nodes: Iterable[Hashable], time: float) -> FrozenSet[Hashable]:
        """Return the subset of ``nodes`` that are up at ``time``."""
        return frozenset(node for node in nodes if not self.is_down(node, time))


def fault_model_from_data(data: Optional[Mapping]) -> FaultModel:
    """Build a :class:`FaultModel` from plain (JSON-shaped) data.

    This is the single coercion path shared by scenario files and
    :mod:`repro.api`: accepted fields are ``drop_probability``,
    ``crashed_nodes`` and ``crash_times``; unknown fields are rejected.  JSON
    object keys are always strings, so crash-time keys (and crashed node
    entries) that look like integers are coerced back to ``int`` to match the
    integer node labels the built-in families use.
    """
    if not data:
        return FaultModel.none()
    known = {"drop_probability", "crashed_nodes", "crash_times"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown fault field(s) {unknown}; known fields: {sorted(known)}"
        )

    def node_label(value):
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                return value
        return value

    return FaultModel(
        drop_probability=float(data.get("drop_probability", 0.0)),
        crashed_nodes=frozenset(
            node_label(node) for node in data.get("crashed_nodes", ())
        ),
        crash_times={
            node_label(node): float(time)
            for node, time in dict(data.get("crash_times", {})).items()
        },
    )


__all__ = ["FaultModel", "fault_model_from_data"]
