"""The extracted per-event inner loop of the boundary engine (JIT-ready).

``engine="jit"`` runs the same exponential race as the boundary engine, but
with the per-event hot loop — wait sampling, cumsum + ``searchsorted``
weighted selection, O(deg) incremental rate updates — extracted into a single
kernel function that `numba <https://numba.pydata.org>`_ compiles when it is
importable.  numba is an *optional* dependency: when it is absent the very
same function body runs under CPython, so the fallback is bit-identical by
construction (one source of truth, no divergent numpy re-implementation).

Bit-identity rests on two deliberate restrictions inside the kernel:

* all randomness is **pre-drawn outside** the kernel in deterministically
  sized blocks (one ``standard_exponential`` per wait, one ``random`` per
  selection), so the generator stream never depends on compilation mode;
* floating-point accumulation happens either through ``np.cumsum`` (a
  sequential left-to-right accumulation in both numpy and numba) or through
  explicit sequential loops — never through ``np.sum``, whose numpy pairwise
  summation would differ from numba's linear reduction.

The kernel advances one *segment* of a run: events strictly before the given
``horizon`` (the next snapshot boundary, scheduled crash or time limit).
Snapshot changes, crash bookkeeping, recorders and observers stay in
:mod:`repro.core.asynchronous`, which replays the kernel's event log through
the observer hooks after each segment.
"""

from __future__ import annotations

import numpy as np

#: Total-rate threshold mirroring ``repro.core.asynchronous.RATE_EPSILON``
#: (duplicated here so the kernel module imports nothing at JIT time).
KERNEL_RATE_EPSILON = 1e-15


def _boundary_segment(
    indptr: np.ndarray,
    indices: np.ndarray,
    inverse_degrees: np.ndarray,
    rates: np.ndarray,
    informed: np.ndarray,
    down: np.ndarray,
    informed_time: np.ndarray,
    event_nodes: np.ndarray,
    event_times: np.ndarray,
    exponentials: np.ndarray,
    uniforms: np.ndarray,
    tau: float,
    total_rate: float,
    horizon: float,
    remaining: int,
    a: float,
    b: float,
    delivery: float,
):
    """Advance the boundary race until ``horizon`` or no uninformed node remains.

    Mutates ``rates`` / ``informed`` / ``informed_time`` in place, records the
    informing events into ``event_nodes`` / ``event_times`` (pre-allocated to
    at least ``remaining`` entries) and returns
    ``(events, tau, total_rate, remaining)``.  ``exponentials`` must hold at
    least ``remaining + 1`` pre-drawn standard-exponential variates and
    ``uniforms`` at least ``remaining`` uniforms; the number consumed is a
    deterministic function of the event count, so callers can pre-draw blocks
    without the stream depending on the execution mode.
    """
    events = 0
    while remaining > 0:
        if total_rate <= KERNEL_RATE_EPSILON:
            # No edge crosses the cut: nothing can happen before the horizon.
            tau = horizon
            break
        wait = exponentials[events] / total_rate
        if tau + wait >= horizon:
            tau = horizon
            break
        tau = tau + wait
        threshold = uniforms[events] * total_rate
        cumulative = np.cumsum(rates)
        new_id = int(np.searchsorted(cumulative, threshold))
        if new_id >= rates.shape[0] or rates[new_id] <= 0.0:
            # Same drift clamp as the boundary engine: land on a positive rate.
            positive = np.nonzero(rates > 0.0)[0]
            new_id = int(positive[-1] if new_id >= rates.shape[0] else positive[0])
        informed[new_id] = True
        informed_time[new_id] = tau
        event_nodes[events] = new_id
        event_times[events] = tau
        events += 1
        remaining -= 1
        total_rate -= rates[new_id]
        rates[new_id] = 0.0
        for k in range(indptr[new_id], indptr[new_id + 1]):
            neighbour = indices[k]
            if not informed[neighbour] and not down[neighbour]:
                extra = delivery * (
                    a * inverse_degrees[new_id] + b * inverse_degrees[neighbour]
                )
                rates[neighbour] += extra
                total_rate += extra
    return events, tau, total_rate, remaining


try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    #: The compiled segment kernel (falls back to the plain function below).
    boundary_segment = numba.njit(cache=True)(_boundary_segment)
except ImportError:  # pragma: no cover - trivially the common path
    HAVE_NUMBA = False
    boundary_segment = _boundary_segment

#: Always-interpreted reference implementation (for bit-identity tests).
boundary_segment_reference = _boundary_segment


__all__ = [
    "HAVE_NUMBA",
    "KERNEL_RATE_EPSILON",
    "boundary_segment",
    "boundary_segment_reference",
]
