"""The extracted per-event inner loop of the boundary engine (JIT-ready).

``engine="jit"`` runs the same exponential race as the boundary engine, but
with the per-event hot loop — wait sampling, cumsum + ``searchsorted``
weighted selection, O(deg) incremental rate updates — extracted into a single
kernel function that `numba <https://numba.pydata.org>`_ compiles when it is
importable.  numba is an *optional* dependency: when it is absent the very
same function body runs under CPython, so the fallback is bit-identical by
construction (one source of truth, no divergent numpy re-implementation).

Bit-identity rests on two deliberate restrictions inside the kernel:

* all randomness is **pre-drawn outside** the kernel in deterministically
  sized blocks (one ``standard_exponential`` per wait, one ``random`` per
  selection), so the generator stream never depends on compilation mode;
* floating-point accumulation happens either through ``np.cumsum`` (a
  sequential left-to-right accumulation in both numpy and numba) or through
  explicit sequential loops — never through ``np.sum``, whose numpy pairwise
  summation would differ from numba's linear reduction.

The kernel advances one *segment* of a run: events strictly before the given
``horizon`` (the next snapshot boundary, scheduled crash or time limit).
Snapshot changes, crash bookkeeping, recorders and observers stay in
:mod:`repro.core.asynchronous`, which replays the kernel's event log through
the observer hooks after each segment.

The same recipe extends to the trial-batched engine's event-lockstep path
(``method="race"`` in :mod:`repro.core.batched`): a scalar per-trial segment
kernel (:func:`batched_trial_segment`, compiled under numba) paired with a
numpy lockstep twin (:func:`batched_segment_fallback`) that advances every
active trial one event per pass.  All accumulators are per-trial floats, so
bit-identity only requires each trial to see the same operation sequence in
both modes — the invariants are spelled out on the two functions.  The
crash-boundary rate rebuild gets the same treatment
(:func:`batched_rebuild` vs the engine's ``reduceat`` path).
"""

from __future__ import annotations

import numpy as np

#: Total-rate threshold mirroring ``repro.core.asynchronous.RATE_EPSILON``
#: (duplicated here so the kernel module imports nothing at JIT time).
KERNEL_RATE_EPSILON = 1e-15


def _boundary_segment(
    indptr: np.ndarray,
    indices: np.ndarray,
    inverse_degrees: np.ndarray,
    rates: np.ndarray,
    informed: np.ndarray,
    down: np.ndarray,
    informed_time: np.ndarray,
    event_nodes: np.ndarray,
    event_times: np.ndarray,
    exponentials: np.ndarray,
    uniforms: np.ndarray,
    tau: float,
    total_rate: float,
    horizon: float,
    remaining: int,
    a: float,
    b: float,
    delivery: float,
):
    """Advance the boundary race until ``horizon`` or no uninformed node remains.

    Mutates ``rates`` / ``informed`` / ``informed_time`` in place, records the
    informing events into ``event_nodes`` / ``event_times`` (pre-allocated to
    at least ``remaining`` entries) and returns
    ``(events, tau, total_rate, remaining)``.  ``exponentials`` must hold at
    least ``remaining + 1`` pre-drawn standard-exponential variates and
    ``uniforms`` at least ``remaining`` uniforms; the number consumed is a
    deterministic function of the event count, so callers can pre-draw blocks
    without the stream depending on the execution mode.
    """
    events = 0
    while remaining > 0:
        if total_rate <= KERNEL_RATE_EPSILON:
            # No edge crosses the cut: nothing can happen before the horizon.
            tau = horizon
            break
        wait = exponentials[events] / total_rate
        if tau + wait >= horizon:
            tau = horizon
            break
        tau = tau + wait
        threshold = uniforms[events] * total_rate
        cumulative = np.cumsum(rates)
        new_id = int(np.searchsorted(cumulative, threshold))
        if new_id >= rates.shape[0] or rates[new_id] <= 0.0:
            # Same drift clamp as the boundary engine: land on a positive rate.
            positive = np.nonzero(rates > 0.0)[0]
            new_id = int(positive[-1] if new_id >= rates.shape[0] else positive[0])
        informed[new_id] = True
        informed_time[new_id] = tau
        event_nodes[events] = new_id
        event_times[events] = tau
        events += 1
        remaining -= 1
        total_rate -= rates[new_id]
        rates[new_id] = 0.0
        for k in range(indptr[new_id], indptr[new_id + 1]):
            neighbour = indices[k]
            if not informed[neighbour] and not down[neighbour]:
                extra = delivery * (
                    a * inverse_degrees[new_id] + b * inverse_degrees[neighbour]
                )
                rates[neighbour] += extra
                total_rate += extra
    return events, tau, total_rate, remaining


def _batched_trial_segment(
    indptr: np.ndarray,
    indices: np.ndarray,
    inverse_degrees: np.ndarray,
    rates_row: np.ndarray,
    block_sums_row: np.ndarray,
    informed_row: np.ndarray,
    down: np.ndarray,
    informed_time_row: np.ndarray,
    exponentials: np.ndarray,
    uniforms: np.ndarray,
    fstate: np.ndarray,
    istate: np.ndarray,
    seg_end: float,
    a: float,
    b: float,
    delivery: float,
    block: int,
    nb: int,
    n: int,
    refresh_interval: int,
):
    """Advance ONE trial of the batched race until ``seg_end`` (scalar kernel).

    This is the compiled half of the batched two-level selection: the same
    √n-blocked weighted draw the numpy lockstep fallback performs across all
    trials at once, written as a scalar per-trial loop so numba turns the
    whole segment into machine code with zero python dispatch per event.

    State is carried in-place: ``rates_row`` / ``block_sums_row`` (padded to
    ``nb·block``), ``informed_row`` / ``informed_time_row``, plus
    ``fstate = [tau, total_rate]`` and ``istate = [remaining, since_refresh]``.
    ``exponentials`` must hold at least ``remaining + 2`` variates and
    ``uniforms`` at least ``remaining + 1`` — one pair per event, one pair for
    an at-most-once drift clamp onto an empty cut, one exponential for the
    final over-the-horizon wait.  Consumption is a deterministic function of
    the trial's own state, never of the batch layout, which is what makes
    sharded sub-batches reproduce the unsharded stream exactly.

    Bit-identity with the lockstep fallback rests on per-trial accumulation
    order: block/inner selection counts partial sums left to right (the
    ``np.cumsum`` order), the selection prefix is re-derived from the same
    partial sum, neighbour updates apply in CSR order, and the periodic
    refresh re-sums blocks sequentially (``np.cumsum``-take-last in the
    fallback).  ``np.sum`` (pairwise) appears nowhere on either side.
    """
    tau = fstate[0]
    total = fstate[1]
    remaining = istate[0]
    since = istate[1]
    ke = 0
    ku = 0
    while remaining > 0 and tau < seg_end:
        e = exponentials[ke]
        ke += 1
        if total > KERNEL_RATE_EPSILON:
            wait = e / total
        else:
            wait = np.inf
        new_tau = tau + wait
        if not new_tau < seg_end:
            tau = seg_end
            break
        tau = new_tau
        threshold = uniforms[ku] * total
        ku += 1

        # Two-level weighted draw: count block partial sums below the
        # threshold (no early break — identical to the lockstep's
        # ``(cumsum < threshold).sum()`` even when drift makes the running
        # sum momentarily non-monotonic), then re-derive the prefix from the
        # same left-to-right accumulation.
        cumulative = 0.0
        count = 0
        for j in range(nb):
            cumulative += block_sums_row[j]
            if cumulative < threshold:
                count += 1
        chosen_block = count if count <= nb - 1 else nb - 1
        prefix_cum = 0.0
        for j in range(chosen_block + 1):
            prefix_cum += block_sums_row[j]
        inner_threshold = threshold - (prefix_cum - block_sums_row[chosen_block])
        base = chosen_block * block
        inner_cum = 0.0
        inner_count = 0
        for i in range(block):
            inner_cum += rates_row[base + i]
            if inner_cum < inner_threshold:
                inner_count += 1
        offset = inner_count if inner_count <= block - 1 else block - 1
        new_id = base + offset

        if new_id >= n or rates_row[new_id] <= 0.0:
            # Drift clamp, mirroring the serial engine: land on a positive
            # rate, or zero the trial's tracked sums when the cut is empty.
            first = -1
            last = -1
            for idx in range(n):
                if rates_row[idx] > 0.0:
                    if first < 0:
                        first = idx
                    last = idx
            if first < 0:
                total = 0.0
                for j in range(nb):
                    block_sums_row[j] = 0.0
                continue
            new_id = first if new_id >= n else last

        old = rates_row[new_id]
        total -= old
        block_sums_row[new_id // block] -= old
        rates_row[new_id] = 0.0
        informed_row[new_id] = True
        informed_time_row[new_id] = tau
        remaining -= 1
        for k in range(indptr[new_id], indptr[new_id + 1]):
            neighbour = indices[k]
            if not informed_row[neighbour] and not down[neighbour]:
                extra = delivery * (
                    a * inverse_degrees[new_id] + b * inverse_degrees[neighbour]
                )
                rates_row[neighbour] += extra
                block_sums_row[neighbour // block] += extra
                total += extra

        since += 1
        if since >= refresh_interval:
            running = 0.0
            for j in range(nb):
                partial = 0.0
                start = j * block
                for i in range(block):
                    partial += rates_row[start + i]
                block_sums_row[j] = partial
                running += partial
            total = running
            since = 0

    fstate[0] = tau
    fstate[1] = total
    istate[0] = remaining
    istate[1] = since


def _batched_rebuild(
    indptr: np.ndarray,
    indices: np.ndarray,
    inverse_degrees: np.ndarray,
    informed: np.ndarray,
    down: np.ndarray,
    a: float,
    b: float,
    delivery: float,
    out: np.ndarray,
):
    """Rebuild every trial's informing-rate row after a crash boundary.

    The compiled analogue of ``BatchedRumorSpreading._batch_rates``:
    bit-identical because both accumulate each row's contributions in CSR
    entry order (``np.add.reduceat`` is a sequential left-to-right reduction,
    and its extra ``+ 0.0`` terms for non-crossing entries are exact no-ops),
    and both apply the delivery factor as a single multiply per entry.
    """
    trials = informed.shape[0]
    n = indptr.shape[0] - 1
    for t in range(trials):
        for v in range(n):
            if informed[t, v] or down[v]:
                out[t, v] = 0.0
                continue
            acc = 0.0
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                if informed[t, u] and not down[u]:
                    acc += (a * inverse_degrees[u] + b * inverse_degrees[v]) * delivery
            out[t, v] = acc


def batched_segment_fallback(
    indptr: np.ndarray,
    indices: np.ndarray,
    inverse_degrees: np.ndarray,
    degrees: np.ndarray,
    rates: np.ndarray,
    block_sums: np.ndarray,
    totals: np.ndarray,
    informed: np.ndarray,
    down: np.ndarray,
    informed_time: np.ndarray,
    tau: np.ndarray,
    remaining: np.ndarray,
    since_refresh: np.ndarray,
    exponentials: np.ndarray,
    uniforms: np.ndarray,
    seg_end: float,
    a: float,
    b: float,
    delivery: float,
    block: int,
    nb: int,
    n: int,
    refresh_interval: int,
) -> None:
    """Pure-numpy lockstep twin of :func:`_batched_trial_segment`.

    Advances every active trial one event per pass over the stacked
    ``(trials, ·)`` state, consuming ``exponentials[t, ·]`` / ``uniforms[t, ·]``
    at per-trial cursors so the draw sequence each trial sees is exactly the
    scalar kernel's.  Every accumulation that touches a single trial's float
    state is sequential and in the same order as the scalar loop: cumsum-based
    selection counts, ``np.add.at`` (not ``np.bincount`` + add, which would
    reassociate) for total updates, and cumsum-take-last refresh sums.
    """
    T = rates.shape[0]
    ke = np.zeros(T, dtype=np.int64)
    ku = np.zeros(T, dtype=np.int64)
    inner_cols = np.arange(block)
    while True:
        active = np.nonzero((remaining > 0) & (tau < seg_end))[0]
        if active.size == 0:
            return
        act_totals = totals[active]
        waits = np.where(
            act_totals > KERNEL_RATE_EPSILON,
            exponentials[active, ke[active]] / np.maximum(act_totals, KERNEL_RATE_EPSILON),
            np.inf,
        )
        ke[active] += 1
        new_tau = tau[active] + waits
        fires = new_tau < seg_end
        tau[active] = np.where(fires, new_tau, seg_end)
        firing = active[fires]
        if firing.size == 0:
            continue
        event_time = new_tau[fires]

        thresholds = uniforms[firing, ku[firing]] * totals[firing]
        ku[firing] += 1
        block_cum = np.cumsum(block_sums[firing], axis=1)
        chosen_block = np.minimum(
            (block_cum < thresholds[:, None]).sum(axis=1), nb - 1
        )
        rows = np.arange(firing.size)
        prefix = block_cum[rows, chosen_block] - block_sums[firing, chosen_block]
        inner = rates[firing[:, None], (chosen_block * block)[:, None] + inner_cols[None, :]]
        inner_cum = np.cumsum(inner, axis=1)
        offset = np.minimum(
            (inner_cum < (thresholds - prefix)[:, None]).sum(axis=1), block - 1
        )
        new_ids = chosen_block * block + offset
        bad = np.nonzero((new_ids >= n) | (rates[firing, new_ids] <= 0.0))[0]
        for i in bad:
            positive = np.nonzero(rates[firing[i], :n] > 0.0)[0]
            if positive.size == 0:
                totals[firing[i]] = 0.0
                block_sums[firing[i]] = 0.0
                new_ids[i] = -1
                continue
            new_ids[i] = positive[0] if new_ids[i] >= n else positive[-1]
        if bad.size:
            live = new_ids >= 0
            if not live.all():
                firing = firing[live]
                new_ids = new_ids[live]
                event_time = event_time[live]
                if firing.size == 0:
                    continue

        old = rates[firing, new_ids]
        totals[firing] -= old
        np.subtract.at(block_sums, (firing, new_ids // block), old)
        rates[firing, new_ids] = 0.0
        informed[firing, new_ids] = True
        informed_time[firing, new_ids] = event_time
        remaining[firing] -= 1

        counts = degrees[new_ids]
        if counts.sum():
            trial_rep = np.repeat(firing, counts)
            source_rep = np.repeat(new_ids, counts)
            shifts = np.repeat(np.cumsum(counts) - counts, counts)
            gather = np.arange(counts.sum()) - shifts + np.repeat(indptr[new_ids], counts)
            neighbour = indices[gather]
            open_mask = ~informed[trial_rep, neighbour] & ~down[neighbour]
            if open_mask.any():
                trial_rep = trial_rep[open_mask]
                neighbour = neighbour[open_mask]
                source_rep = source_rep[open_mask]
                extra = delivery * (a * inverse_degrees[source_rep] + b * inverse_degrees[neighbour])
                # (trial, neighbour) pairs are unique within a pass — one
                # informing node per trial, simple graph — so the
                # fancy-indexed += is exact; block and trial ids can repeat.
                rates[trial_rep, neighbour] += extra
                np.add.at(block_sums, (trial_rep, neighbour // block), extra)
                np.add.at(totals, trial_rep, extra)

        since_refresh[firing] += 1
        due = firing[since_refresh[firing] >= refresh_interval]
        if due.size:
            block_sums[due] = np.cumsum(rates[due].reshape(due.size, nb, block), axis=2)[:, :, -1]
            totals[due] = np.cumsum(block_sums[due], axis=1)[:, -1]
            since_refresh[due] = 0


try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    #: The compiled segment kernel (falls back to the plain function below).
    boundary_segment = numba.njit(cache=True)(_boundary_segment)
    #: Compiled per-trial batched race segment (scalar loop per trial).
    batched_trial_segment = numba.njit(cache=True)(_batched_trial_segment)
    #: Compiled crash-boundary rate rebuild over the whole batch.
    batched_rebuild = numba.njit(cache=True)(_batched_rebuild)
except ImportError:  # pragma: no cover - trivially the common path
    HAVE_NUMBA = False
    boundary_segment = _boundary_segment
    batched_trial_segment = _batched_trial_segment
    batched_rebuild = _batched_rebuild

#: Always-interpreted reference implementations (for bit-identity tests).
boundary_segment_reference = _boundary_segment
batched_trial_segment_reference = _batched_trial_segment
batched_rebuild_reference = _batched_rebuild


__all__ = [
    "HAVE_NUMBA",
    "KERNEL_RATE_EPSILON",
    "boundary_segment",
    "boundary_segment_reference",
    "batched_trial_segment",
    "batched_trial_segment_reference",
    "batched_rebuild",
    "batched_rebuild_reference",
    "batched_segment_fallback",
]
