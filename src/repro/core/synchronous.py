"""The synchronous rumor spreading algorithm on dynamic networks.

The synchronous push–pull algorithm proceeds in rounds ``t = 0, 1, ...``
aligned with the graph dynamics: at the beginning of round ``t`` the snapshot
``G(t)`` is exposed, every node simultaneously contacts a uniformly random
neighbour, and the rumor is exchanged based on the nodes' knowledge *at the
beginning of the round* (the paper's Section 6 relies on this convention —
"any action is allowed to be taken at the beginning of each round", which is
what makes ``Ts(G2) = n`` on the dynamic star).

The spread time ``Ts`` is the number of rounds until every node is informed.
Flooding — informed nodes informing *all* neighbours every round — is included
as the deterministic baseline used by the related work on Markovian evolving
graphs.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Hashable, Optional, Set

import numpy as np

from repro.core.faults import FaultModel
from repro.core.state import SpreadResult
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_positive


class SyncVariant(enum.Enum):
    """Which contacts carry the rumor in a synchronous round."""

    PUSH_PULL = "push-pull"
    PUSH = "push"
    PULL = "pull"
    FLOODING = "flooding"


def default_round_limit(n: int) -> int:
    """Default round horizon: comfortably above the universal O(n²) behaviour."""
    return 4 * n * n + 1000


class SynchronousRumorSpreading:
    """Round-based synchronous push–pull (and variants) on a dynamic network."""

    def __init__(
        self,
        variant: SyncVariant = SyncVariant.PUSH_PULL,
        faults: Optional[FaultModel] = None,
    ):
        self.variant = variant
        self.faults = faults if faults is not None else FaultModel.none()

    def run(
        self,
        network: DynamicNetwork,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_rounds: Optional[int] = None,
        recorder: Optional[SnapshotRecorder] = None,
    ) -> SpreadResult:
        """Run the synchronous process once.

        The returned :class:`SpreadResult` has ``synchronous=True`` and its
        ``spread_time`` / ``informed_times`` count rounds: a node informed
        during round ``t`` (i.e. between exposing ``G(t)`` and ``G(t+1)``) is
        recorded at time ``t + 1``.
        """
        gen = ensure_rng(rng)
        source = network.default_source() if source is None else source
        require(source in set(network.nodes), f"source {source!r} is not a node of the network")
        limit = default_round_limit(network.n) if max_rounds is None else max_rounds
        require_positive(limit, "max_rounds")

        network.reset(gen)
        informed: Set[Hashable] = {source}
        informed_times: Dict[Hashable, float] = {source: 0.0}
        nodes = list(network.nodes)
        events = 0

        def down(node: Hashable, round_index: int) -> bool:
            return self.faults.is_down(node, float(round_index))

        def targets_remaining(round_index: int) -> int:
            return sum(
                1 for node in nodes if node not in informed and not down(node, round_index)
            )

        round_index = 0
        while targets_remaining(round_index) > 0 and round_index < limit:
            graph = network.graph_for_step(round_index, informed)
            if recorder is not None:
                recorder.record(network, round_index, graph, len(informed))
            snapshot_informed = set(informed)
            newly: Set[Hashable] = set()

            if self.variant is SyncVariant.FLOODING:
                for u in snapshot_informed:
                    if down(u, round_index) or u not in graph:
                        continue
                    for v in graph.neighbors(u):
                        if v in snapshot_informed or down(v, round_index):
                            continue
                        events += 1
                        if self._delivered(gen):
                            newly.add(v)
            else:
                for u in nodes:
                    if down(u, round_index):
                        continue
                    neighbours = list(graph.neighbors(u)) if u in graph else []
                    if not neighbours:
                        continue
                    events += 1
                    v = neighbours[int(gen.integers(0, len(neighbours)))]
                    if down(v, round_index):
                        continue
                    if not self._delivered(gen):
                        continue
                    u_knows = u in snapshot_informed
                    v_knows = v in snapshot_informed
                    if u_knows == v_knows:
                        continue
                    if self.variant is SyncVariant.PUSH and u_knows:
                        newly.add(v)
                    elif self.variant is SyncVariant.PULL and v_knows:
                        newly.add(u)
                    elif self.variant is SyncVariant.PUSH_PULL:
                        newly.add(v if u_knows else u)

            round_index += 1
            for node in newly:
                if node not in informed:
                    informed.add(node)
                    informed_times[node] = float(round_index)

        completed = targets_remaining(round_index) == 0
        spread_time = max(informed_times.values()) if completed else math.inf
        return SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=network.n,
            steps_used=round_index,
            source=source,
            synchronous=True,
            events=events,
        )

    def _delivered(self, gen: np.random.Generator) -> bool:
        if self.faults.drop_probability <= 0:
            return True
        return gen.random() >= self.faults.drop_probability


__all__ = ["SynchronousRumorSpreading", "SyncVariant", "default_round_limit"]
