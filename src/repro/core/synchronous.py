"""The synchronous rumor spreading algorithm on dynamic networks.

The synchronous push–pull algorithm proceeds in rounds ``t = 0, 1, ...``
aligned with the graph dynamics: at the beginning of round ``t`` the snapshot
``G(t)`` is exposed, every node simultaneously contacts a uniformly random
neighbour, and the rumor is exchanged based on the nodes' knowledge *at the
beginning of the round* (the paper's Section 6 relies on this convention —
"any action is allowed to be taken at the beginning of each round", which is
what makes ``Ts(G2) = n`` on the dynamic star).

The spread time ``Ts`` is the number of rounds until every node is informed.
Flooding — informed nodes informing *all* neighbours every round — is included
as the deterministic baseline used by the related work on Markovian evolving
graphs.

The engine runs on :class:`repro.graphs.csr.CsrSnapshot` arrays: one whole
round of contacts (every node's uniform neighbour draw, fault filtering and
knowledge comparison) is generated as a handful of vectorised numpy
operations over the compact node ids instead of a per-node Python loop.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Set

import numpy as np

from repro.core.faults import FaultModel
from repro.core.state import SpreadResult
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.graphs.csr import concatenated_neighbors
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_positive

if TYPE_CHECKING:  # pragma: no cover - type-only (repro.api imports this module)
    from repro.api.observers import RunObserver


class SyncVariant(enum.Enum):
    """Which contacts carry the rumor in a synchronous round."""

    PUSH_PULL = "push-pull"
    PUSH = "push"
    PULL = "pull"
    FLOODING = "flooding"


def default_round_limit(n: int) -> int:
    """Default round horizon: comfortably above the universal O(n²) behaviour."""
    return 4 * n * n + 1000


class SynchronousRumorSpreading:
    """Round-based synchronous push–pull (and variants) on a dynamic network."""

    def __init__(
        self,
        variant: SyncVariant = SyncVariant.PUSH_PULL,
        faults: Optional[FaultModel] = None,
    ):
        self.variant = variant
        self.faults = faults if faults is not None else FaultModel.none()

    def run(
        self,
        network: DynamicNetwork,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_rounds: Optional[int] = None,
        recorder: Optional[SnapshotRecorder] = None,
        observer: Optional["RunObserver"] = None,
    ) -> SpreadResult:
        """Run the synchronous process once.

        The returned :class:`SpreadResult` has ``synchronous=True`` and its
        ``spread_time`` / ``informed_times`` count rounds: a node informed
        during round ``t`` (i.e. between exposing ``G(t)`` and ``G(t+1)``) is
        recorded at time ``t + 1``.

        ``observer`` is an optional streaming
        :class:`repro.api.observers.RunObserver`: per round it receives
        ``on_snapshot`` (the exposed ``G(t)``), one ``on_event`` per newly
        informed node (at time ``t + 1``) and ``on_round`` with the
        end-of-round informed count; ``on_complete`` fires with the final
        result.
        """
        gen = ensure_rng(rng)
        source = network.default_source() if source is None else source
        require(source in network.node_set, f"source {source!r} is not a node of the network")
        limit = default_round_limit(network.n) if max_rounds is None else max_rounds
        require_positive(limit, "max_rounds")

        network.reset(gen)
        nodes = network.nodes
        n = network.n
        index_of = {label: i for i, label in enumerate(nodes)}
        source_id = index_of[source]
        drop = self.faults.drop_probability

        informed = np.zeros(n, dtype=bool)
        informed[source_id] = True
        informed_time = np.full(n, np.nan)
        informed_time[source_id] = 0.0
        informed_labels: Set[Hashable] = {source}
        events = 0

        if self.faults.has_faults:
            always_down = np.fromiter(
                (node in self.faults.crashed_nodes for node in nodes), dtype=bool, count=n
            )
            crash_round = np.full(n, np.inf)
            for node, time in self.faults.crash_times.items():
                if node in index_of:
                    crash_round[index_of[node]] = time
        else:
            always_down = np.zeros(n, dtype=bool)
            crash_round = None

        def down_mask(round_index: int) -> np.ndarray:
            if crash_round is None:
                return always_down
            return always_down | (crash_round <= float(round_index))

        round_index = 0
        down = down_mask(round_index)
        while int(np.count_nonzero(~informed & ~down)) > 0 and round_index < limit:
            snapshot = network.snapshot_for_step(round_index, informed_labels)
            if recorder is not None:
                recorder.record(network, round_index, snapshot, len(informed_labels))
            if observer is not None:
                observer.on_snapshot(round_index, snapshot, len(informed_labels))
            degrees = snapshot.degrees
            newly: Optional[np.ndarray] = None

            if self.variant is SyncVariant.FLOODING:
                speakers = np.nonzero(informed & ~down & (degrees > 0))[0]
                contacts = concatenated_neighbors(snapshot, speakers)
                open_targets = contacts[~informed[contacts] & ~down[contacts]]
                events += int(open_targets.size)
                if drop > 0 and open_targets.size:
                    open_targets = open_targets[gen.random(open_targets.size) >= drop]
                newly = open_targets
            else:
                callers = np.nonzero(~down & (degrees > 0))[0]
                events += int(callers.size)
                if callers.size:
                    draws = gen.random(callers.size)
                    offsets = (draws * degrees[callers]).astype(np.int64)
                    callees = snapshot.indices[snapshot.indptr[callers] + offsets]
                    viable = ~down[callees]
                    if drop > 0:
                        viable &= gen.random(callers.size) >= drop
                    caller_knows = informed[callers]
                    callee_knows = informed[callees]
                    crossing = viable & (caller_knows != callee_knows)
                    if self.variant is SyncVariant.PUSH:
                        newly = callees[crossing & caller_knows]
                    elif self.variant is SyncVariant.PULL:
                        newly = callers[crossing & callee_knows]
                    else:  # push-pull: the rumor moves whichever direction works.
                        newly = np.where(caller_knows, callees, callers)[crossing]

            round_index += 1
            if newly is not None and newly.size:
                fresh = np.unique(newly[~informed[newly]])
                if fresh.size:
                    informed[fresh] = True
                    informed_time[fresh] = float(round_index)
                    if observer is None:
                        informed_labels.update(nodes[int(i)] for i in fresh)
                    else:
                        for i in fresh:
                            informed_labels.add(nodes[int(i)])
                            observer.on_event(
                                float(round_index), nodes[int(i)], len(informed_labels)
                            )
            if observer is not None:
                observer.on_round(round_index, len(informed_labels))
            down = down_mask(round_index)

        completed = int(np.count_nonzero(~informed & ~down)) == 0
        informed_ids = np.nonzero(informed)[0]
        informed_times: Dict[Hashable, float] = {
            nodes[int(i)]: float(informed_time[int(i)]) for i in informed_ids
        }
        spread_time = max(informed_times.values()) if completed else math.inf
        result = SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=n,
            steps_used=round_index,
            source=source,
            synchronous=True,
            events=events,
        )
        if observer is not None:
            observer.on_complete(result)
        return result


__all__ = ["SynchronousRumorSpreading", "SyncVariant", "default_round_limit"]
