"""Exact first-passage (percolation) solver for batched static races.

The asynchronous push–pull race of Definition 1 is a superposition of
independent exponential clocks, one per *directed* adjacency entry: while
``u`` is informed-and-up and ``v`` is uninformed-and-up, the contact process
along ``u → v`` is Poisson with constant rate ``delivery·(a/d_u + b/d_v)``
(push thinned by the uniform neighbour mark, pull likewise; drop faults thin
the process again).  By memorylessness the first effective contact after
``u`` becomes informed is ``T(u) + Exp(rate)``, independent across entries —
so the informing times are exactly the shortest-path distances from the
source under i.i.d. exponential edge delays.  This is the classical
Richardson / first-passage-percolation equivalence for SI-type spreads, and
it is an *equality in distribution of the whole informing-time vector*, not
an approximation.

Scheduled crashes stay exact: a transmission along ``u → v`` is effective
only while both endpoints are up, so the candidate ``T(u) + X`` is valid iff
it lands strictly before ``min(θ_u, θ_v)`` (the endpoint crash times) — a
static per-entry *clip*.  A node informed before its crash time stays
informed; every finite time the solver returns therefore already respects
``T(v) < θ_v``.  The time horizon censors identically: candidates at or
beyond ``limit`` are discarded, which is exact because delays are
non-negative (no path through a censored node can re-enter the horizon).

The solver itself is a frontier label-correcting Bellman–Ford over the flat
``(trial, node)`` pair space, with a delta-stepping-style twist: each round
expands only the earliest ~quarter of the pending pairs (a ``np.partition``
threshold), which approximates Dijkstra's settled order closely enough to cut
edge re-expansion from ~4.7 to ~1.4 touches per directed entry on G(10⁴, p)
while keeping every scatter an O(frontier)-sized vectorised batch
(``np.minimum.at``).  Expansion order cannot change the fixed point — every
finite time is the same left-associated sum of delays along the same optimal
path — so the result is bit-identical for any ordering (and to the heap
Dijkstra reference below, which the test-suite checks exactly).  This is what
closes the general-graph batch gap without needing a compiled kernel.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.graphs.csr import CsrSnapshot

#: Fraction of pending (trial, node) pairs expanded per round — the earliest
#: ones by tentative time.  Smaller fractions mean fewer wasted re-expansions
#: but more rounds of python-level overhead; ~0.25 is near the throughput
#: plateau on G(n, p)-class graphs.
EXPAND_FRACTION = 0.25

#: Below this many pending pairs the partition threshold is skipped and the
#: whole frontier expands at once (ordering overhead beats the savings).
ORDERED_EXPANSION_MIN = 64


def entry_transmission_rates(
    snapshot: CsrSnapshot, a: float, b: float, delivery: float
) -> np.ndarray:
    """Per-entry transmission rate for ``owner → neighbour`` delivery.

    Entry ``e`` of the CSR arrays (owner ``v = row_owner[e]``, neighbour
    ``u = indices[e]``) carries the rumor *from the owner to the neighbour*
    at rate ``delivery·(a/d_v + b/d_u)`` — the owner's push clock plus the
    neighbour's pull clock, both restricted to this edge.
    """
    inv = snapshot.inverse_degrees
    return delivery * (a * inv[snapshot.row_owner] + b * inv[snapshot.indices])


def first_passage_times(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    delays: np.ndarray,
    source_id: int,
    clip: Optional[np.ndarray] = None,
    limit: float = np.inf,
) -> np.ndarray:
    """Informing times for every trial: ``(T, n)`` shortest-path distances.

    ``delays`` is a ``(T, m)`` matrix of per-trial exponential delays indexed
    by CSR entry in *outgoing* orientation (entry ``e`` delays the
    ``row_owner[e] → indices[e]`` transmission).  ``clip`` optionally bounds
    each entry: a candidate ``T(owner) + delays[t, e]`` only counts when it
    is strictly below ``clip[e]`` (crash censoring).  Times at or beyond
    ``limit`` are censored to ``inf``.

    Returns the dense time matrix; uninformed (never reached, crashed first,
    censored) entries are ``inf``.
    """
    trials, m = delays.shape
    n = indptr.shape[0] - 1
    times = np.full(trials * n, np.inf)
    sources = np.arange(trials) * n + source_id
    times[sources] = 0.0
    if limit <= 0.0:
        # Degenerate horizon: nothing besides the source can be informed
        # (matches the event engines, which only record events before limit).
        return times.reshape(trials, n)

    delays_flat = delays.reshape(-1)
    pending = np.zeros(trials * n, dtype=bool)
    pending[sources] = True
    while True:
        flat = np.nonzero(pending)[0]
        if flat.size == 0:
            break
        if flat.size > ORDERED_EXPANSION_MIN:
            # Expand the earliest pairs first: close enough to Dijkstra's
            # settled order that later improvement (and re-expansion) of an
            # already-expanded pair becomes rare.
            tentative = times[flat]
            k = max(1, int(flat.size * EXPAND_FRACTION))
            threshold = np.partition(tentative, k - 1)[k - 1]
            flat = flat[tentative <= threshold]
        pending[flat] = False
        trial = flat // n
        node = flat % n
        counts = degrees[node]
        total = int(counts.sum())
        if total == 0:
            continue
        trial_rep = np.repeat(trial, counts)
        # Row-gather machinery: entry e of pair (t, v) sits at
        # delays_flat[t·m + indptr[v] + e]; one repeat builds the bases.
        offsets = np.cumsum(counts) - counts
        position = np.arange(total) + np.repeat(
            trial * m + indptr[node] - offsets, counts
        )
        entry = position - trial_rep * m
        candidate = np.repeat(times[flat], counts) + delays_flat[position]
        if clip is not None:
            candidate = np.where(candidate < clip[entry], candidate, np.inf)
        target = trial_rep * n + indices[entry]
        before = times[target]
        keep = candidate < before
        if limit != np.inf:
            keep &= candidate < limit
        target = target[keep]
        candidate = candidate[keep]
        if target.size == 0:
            continue
        np.minimum.at(times, target, candidate)
        # A target pair re-enters the pending set when anything lowered it
        # this round (its own slot or a sibling candidate's).
        pending[target[times[target] < before[keep]]] = True
    return times.reshape(trials, n)


def first_passage_times_reference(
    indptr: np.ndarray,
    indices: np.ndarray,
    delays_row: np.ndarray,
    source_id: int,
    clip: Optional[np.ndarray] = None,
    limit: float = np.inf,
) -> np.ndarray:
    """Single-trial heap Dijkstra with the same clip/limit semantics.

    Bit-identical to one row of :func:`first_passage_times`: every finite
    time either solver produces is the same left-associated sum of delays
    along the same optimal path, so the comparison in the test-suite is exact
    float equality, not approximate.
    """
    n = indptr.shape[0] - 1
    times = np.full(n, np.inf)
    times[source_id] = 0.0
    heap = [(0.0, source_id)]
    while heap:
        time, node = heapq.heappop(heap)
        if time > times[node]:
            continue  # stale entry
        for e in range(indptr[node], indptr[node + 1]):
            candidate = time + delays_row[e]
            if clip is not None and not (candidate < clip[e]):
                continue
            if not (candidate < limit):
                continue
            neighbour = indices[e]
            if candidate < times[neighbour]:
                times[neighbour] = candidate
                heapq.heappush(heap, (candidate, int(neighbour)))
    return times


__all__ = [
    "entry_transmission_rates",
    "first_passage_times",
    "first_passage_times_reference",
]
