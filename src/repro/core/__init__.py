"""Core rumor spreading processes.

* :mod:`repro.core.state` — run results (per-node informing times, spread
  time, completion flags).
* :mod:`repro.core.asynchronous` — the asynchronous push–pull algorithm of
  Definition 1 in continuous time over a dynamic network, with two engines:
  the exact *boundary* engine (exponential race over the informed/uninformed
  cut) and a *naive* engine simulating every clock tick, used for
  cross-validation.
* :mod:`repro.core.synchronous` — the round-based synchronous push–pull (and
  push-only / pull-only / flooding) aligned with the graph dynamics.
* :mod:`repro.core.variants` — contact-rate variants (push-only, pull-only,
  2-push) and the forward 2-push process used in Lemma 4.2.
* :mod:`repro.core.faults` — message-drop and node-crash fault injection.
"""

from repro.core.state import SpreadResult
from repro.core.variants import Variant
from repro.core.faults import FaultModel
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading

__all__ = [
    "SpreadResult",
    "Variant",
    "FaultModel",
    "AsynchronousRumorSpreading",
    "SynchronousRumorSpreading",
]
