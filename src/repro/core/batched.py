"""Trial-batched asynchronous engine: many boundary races in one numpy sweep.

``engine="batched"`` runs ``T`` independent trials of the boundary race of
Definition 1 *simultaneously*, stacking the per-trial state — informed
bitmask, informing-rate array, clock — as 2-D ``(trials, n)`` arrays so the
per-event work is a handful of large vectorised operations instead of ``T``
Python event loops.  It produces the same :class:`repro.core.state.SpreadResult`
objects as :class:`repro.core.asynchronous.AsynchronousRumorSpreading` and
matches the boundary engine *in distribution* (it deliberately consumes the
master generator stream directly rather than per-trial spawned streams, so
individual trial results differ for a fixed seed while every statistic
agrees; the test-suite checks agreement including drop and crash faults).

Two execution paths, chosen per batch:

**Complete-graph closed form.**  On a clique every informed/uninformed pair
contributes the same rate ``delivery·(a+b)/(n-1)``, so with ``m`` eligible
(up, uninformed) nodes the wait before the ``j``-th informing event is
``Exp(λ_j)`` with ``λ_j = c·j·(m-j+1)`` and the informing order is a uniform
random permutation of the eligible nodes.  The whole batch is two array
draws: a ``(T, m)`` matrix of exponentials (cumulative-summed into event
times) and a per-trial permutation.  Used whenever the snapshot is complete,
the source is up and no crash is *scheduled* (initially-down nodes are fine —
they only shrink ``m``; degrees still count them).

**General static path.**  For any other static network the engine advances
all trials one informing event at a time: one exponential wait per active
trial, a two-level (``√n``-blocked) weighted draw over each trial's rate row,
then a scatter update of the O(deg) neighbour rates of every newly informed
node across trials.  Per-trial totals and per-block partial sums are
maintained incrementally and refreshed periodically to absorb floating-point
drift (with a clamp onto a positive-rate entry as the last resort, mirroring
the boundary engine's ``_choose_weighted``).  Scheduled crashes split the
race into segments; each boundary applies the (trial-independent) down mask
and rebuilds every trial's rates in one vectorised pass over the directed
edge arrays.

Because all trials share one network realisation, the engine requires a
:class:`repro.dynamics.sequences.StaticDynamicNetwork` — snapshot changes at
integer times would need per-trial rebuilds, erasing the batching win.  For
static snapshots, skipping the integer boundaries entirely is exact: the
boundary engine's re-sampling there is a no-op by memorylessness.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.core.asynchronous import (
    RATE_EPSILON,
    _initial_down_mask,
    _pending_crashes,
    default_time_limit,
)
from repro.core.faults import FaultModel
from repro.core.state import SpreadResult
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count, require_positive

#: Recompute per-trial totals and block partial sums every this many events
#: to keep incremental floating-point drift bounded.
REFRESH_INTERVAL = 64


def batched_supported(network: DynamicNetwork) -> Optional[str]:
    """Return ``None`` when the batched engine can run ``network``, else why not.

    The single eligibility rule shared by ``engine="batched"`` (where a
    non-``None`` reason becomes a ``ValueError``) and ``engine="auto"``
    (where it falls back to the boundary engine).
    """
    if not isinstance(network, StaticDynamicNetwork):
        return (
            "engine='batched' requires a static network (the batch shares one "
            f"snapshot across all trials); got {type(network).__name__}"
        )
    return None


def _steps_used(completed: bool, spread_time: float, limit: float) -> int:
    """Snapshot count matching the boundary engine's integer-boundary walk."""
    if completed:
        return int(math.floor(spread_time)) + 1
    return int(limit) if float(limit).is_integer() else int(math.ceil(limit))


class BatchedRumorSpreading:
    """Asynchronous push–pull (and variants) batched over many trials.

    Parameters
    ----------
    variant:
        Which contacts carry the rumor (:class:`repro.core.variants.Variant`);
        enters only through its rate coefficients, so every variant the
        boundary engine supports is supported here.
    faults:
        Optional :class:`repro.core.faults.FaultModel`.  Message drops scale
        every rate; initially-crashed nodes are masked out; scheduled crashes
        split the batch race into segments.
    """

    def __init__(
        self,
        variant: Variant = Variant.PUSH_PULL,
        faults: Optional[FaultModel] = None,
    ):
        self.variant = variant
        self.faults = faults if faults is not None else FaultModel.none()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        network: DynamicNetwork,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_time: Optional[float] = None,
        recorder=None,
        observer=None,
    ) -> SpreadResult:
        """Run a single trial (the batch engine's process-protocol adapter).

        Streaming hooks are incompatible with batching — per-event callbacks
        would serialise exactly the loop the engine vectorises away — so
        ``recorder`` / ``observer`` must be ``None``.
        """
        require(
            recorder is None and observer is None,
            "engine='batched' does not support recorders or observers; "
            "use engine='boundary' (or 'jit') for streaming hooks",
        )
        return self.run_batch(network, 1, source=source, rng=rng, max_time=max_time)[0]

    def run_batch(
        self,
        network: DynamicNetwork,
        trials: int,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_time: Optional[float] = None,
    ) -> List[SpreadResult]:
        """Run ``trials`` independent trials on one network realisation.

        Every trial starts from the same ``source`` on the same static
        snapshot and shares the crash schedule; the randomness of the races
        is independent across trials.  Returns one :class:`SpreadResult` per
        trial, in trial order.
        """
        require_node_count(trials, minimum=1, name="trials")
        reason = batched_supported(network)
        require(reason is None, reason or "")
        gen = ensure_rng(rng)
        source = network.default_source() if source is None else source
        require(source in network.node_set, f"source {source!r} is not a node of the network")
        limit = default_time_limit(network.n) if max_time is None else max_time
        require_positive(limit, "max_time")

        network.reset(gen)
        nodes = network.nodes
        index_of = {label: i for i, label in enumerate(nodes)}
        source_id = index_of[source]
        snapshot = network.snapshot_for_step(0, {source})
        down = _initial_down_mask(self.faults, nodes)
        pending = _pending_crashes(self.faults, index_of)

        n = snapshot.n
        is_complete = snapshot.indices.size == n * (n - 1)
        if is_complete and not pending and not down[source_id]:
            return self._run_clique_batch(
                snapshot, nodes, source_id, down, trials, gen, limit
            )
        return self._run_general_batch(
            snapshot, nodes, source_id, down, pending, trials, gen, limit
        )

    # ------------------------------------------------------------------
    # complete-graph closed form
    # ------------------------------------------------------------------

    def _run_clique_batch(
        self,
        snapshot: CsrSnapshot,
        nodes: Tuple[Hashable, ...],
        source_id: int,
        down: np.ndarray,
        trials: int,
        gen: np.random.Generator,
        limit: float,
    ) -> List[SpreadResult]:
        n = snapshot.n
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()
        eligible = np.nonzero(~down)[0]
        eligible = eligible[eligible != source_id]
        m = int(eligible.size)
        if m == 0 or delivery <= 0.0:
            # Nothing to inform (or nothing can ever be delivered).
            completed = m == 0
            return [
                self._build_result(
                    nodes,
                    source_id,
                    np.empty(0, dtype=np.int64),
                    np.empty(0),
                    completed,
                    limit,
                )
                for _ in range(trials)
            ]

        # Stage rates: before the j-th informing event (j = 1..m) there are j
        # informed and m - j + 1 eligible uninformed nodes, every cross pair
        # contributing delivery·(a+b)/(n-1).
        stage = np.arange(1, m + 1, dtype=np.float64)
        rate = (delivery * (a + b) / (n - 1)) * stage * (m - stage + 1.0)
        waits = gen.standard_exponential((trials, m)) / rate[None, :]
        times = np.cumsum(waits, axis=1)
        order = np.tile(eligible, (trials, 1))
        gen.permuted(order, axis=1, out=order)

        event_counts = (times < limit).sum(axis=1)
        results = []
        for t in range(trials):
            k = int(event_counts[t])
            results.append(
                self._build_result(
                    nodes, source_id, order[t, :k], times[t, :k], k == m, limit
                )
            )
        return results

    # ------------------------------------------------------------------
    # general static path
    # ------------------------------------------------------------------

    def _batch_rates(
        self, snapshot: CsrSnapshot, informed: np.ndarray, down: np.ndarray
    ) -> np.ndarray:
        """``(T, n)`` informing rates — the vectorised rebuild over all trials.

        The batched analogue of ``AsynchronousRumorSpreading._build_rates``:
        an adjacency entry ``(v, u)`` contributes ``a/d_u + b/d_v`` to
        ``rates[t, v]`` exactly when, in trial ``t``, ``u`` is informed-and-up
        and ``v`` is uninformed-and-up.  The per-owner reduction uses
        ``np.add.reduceat`` over the CSR row boundaries.
        """
        T = informed.shape[0]
        n = snapshot.n
        edges = snapshot.indices
        if edges.size == 0:
            return np.zeros((T, n))
        owner = snapshot.row_owner
        up = ~down
        a, b = self.variant.rate_coefficients()
        inv = snapshot.inverse_degrees
        crossing = (
            informed[:, edges]
            & up[edges][None, :]
            & ~informed[:, owner]
            & up[owner][None, :]
        )
        contribution = (a * inv[edges] + b * inv[owner])[None, :] * crossing
        delivery = self.faults.delivery_probability()
        if delivery != 1.0:
            contribution *= delivery
        starts = np.minimum(snapshot.indptr[:-1], edges.size - 1)
        rates = np.add.reduceat(contribution, starts, axis=1)
        empty = snapshot.indptr[:-1] == snapshot.indptr[1:]
        if empty.any():
            # reduceat yields the element at a repeated index, not a zero sum.
            rates[:, empty] = 0.0
        return np.ascontiguousarray(rates)

    def _run_general_batch(
        self,
        snapshot: CsrSnapshot,
        nodes: Tuple[Hashable, ...],
        source_id: int,
        down: np.ndarray,
        pending: List[Tuple[float, int]],
        trials: int,
        gen: np.random.Generator,
        limit: float,
    ) -> List[SpreadResult]:
        n = snapshot.n
        T = trials
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()
        inv = snapshot.inverse_degrees
        indptr = snapshot.indptr
        indices = snapshot.indices
        degrees = snapshot.degrees

        informed = np.zeros((T, n), dtype=bool)
        informed[:, source_id] = True
        informed_time = np.full((T, n), np.nan)
        informed_time[:, source_id] = 0.0
        down = down.copy()
        remaining = np.full(
            T, int(np.count_nonzero(~informed[0] & ~down)), dtype=np.int64
        )
        tau = np.zeros(T)

        # √n-blocked rate rows: selection walks nb block sums, then one block.
        block = max(1, math.isqrt(n))
        nb = -(-n // block)
        rates = np.zeros((T, nb * block))
        rates[:, :n] = self._batch_rates(snapshot, informed, down)
        block_sums = rates.reshape(T, nb, block).sum(axis=2)
        totals = block_sums.sum(axis=1)

        def refresh() -> None:
            np.sum(rates.reshape(T, nb, block), axis=2, out=block_sums)
            np.sum(block_sums, axis=1, out=totals)

        # Scheduled crashes split the race into segments ending at each crash
        # time (grouped, in case several nodes crash simultaneously) and
        # finally at the horizon.
        boundaries: List[Tuple[float, List[int]]] = []
        for time, node_id in pending:
            if boundaries and math.isclose(boundaries[-1][0], time):
                boundaries[-1][1].append(node_id)
            else:
                boundaries.append((time, [node_id]))
        boundaries.append((limit, []))

        since_refresh = 0
        for seg_end, crashing in boundaries:
            while True:
                active = np.nonzero((remaining > 0) & (tau < seg_end))[0]
                if active.size == 0:
                    break
                act_totals = totals[active]
                waits = np.where(
                    act_totals > RATE_EPSILON,
                    gen.standard_exponential(active.size)
                    / np.maximum(act_totals, RATE_EPSILON),
                    np.inf,
                )
                new_tau = tau[active] + waits
                fires = new_tau < seg_end
                tau[active] = np.where(fires, new_tau, seg_end)
                firing = active[fires]
                if firing.size == 0:
                    continue
                event_time = new_tau[fires]

                # Two-level weighted draw: pick the block by its partial sum,
                # then the entry inside the block.
                thresholds = gen.random(firing.size) * totals[firing]
                block_cum = np.cumsum(block_sums[firing], axis=1)
                chosen_block = np.minimum(
                    (block_cum < thresholds[:, None]).sum(axis=1), nb - 1
                )
                rows = np.arange(firing.size)
                prefix = (
                    block_cum[rows, chosen_block]
                    - block_sums[firing, chosen_block]
                )
                inner = rates[
                    firing[:, None],
                    (chosen_block * block)[:, None] + np.arange(block)[None, :],
                ]
                inner_cum = np.cumsum(inner, axis=1)
                offset = np.minimum(
                    (inner_cum < (thresholds - prefix)[:, None]).sum(axis=1),
                    block - 1,
                )
                new_ids = chosen_block * block + offset
                bad = np.nonzero(
                    (new_ids >= n) | (rates[firing, new_ids] <= 0.0)
                )[0]
                for i in bad:
                    # Floating-point drift pushed the draw off a live entry;
                    # clamp onto any positive rate (same as the serial engine).
                    positive = np.nonzero(rates[firing[i], :n] > 0.0)[0]
                    if positive.size == 0:
                        # The tracked total drifted above a truly empty cut:
                        # zero it so the trial stalls to the segment end.
                        totals[firing[i]] = 0.0
                        block_sums[firing[i]] = 0.0
                        new_ids[i] = -1
                        continue
                    new_ids[i] = positive[0] if new_ids[i] >= n else positive[-1]
                if bad.size:
                    live = new_ids >= 0
                    if not live.all():
                        firing = firing[live]
                        new_ids = new_ids[live]
                        event_time = event_time[live]
                        if firing.size == 0:
                            continue

                old = rates[firing, new_ids]
                totals[firing] -= old
                np.subtract.at(block_sums, (firing, new_ids // block), old)
                rates[firing, new_ids] = 0.0
                informed[firing, new_ids] = True
                informed_time[firing, new_ids] = event_time
                remaining[firing] -= 1

                counts = degrees[new_ids]
                if counts.sum():
                    trial_rep = np.repeat(firing, counts)
                    source_rep = np.repeat(new_ids, counts)
                    shifts = np.repeat(np.cumsum(counts) - counts, counts)
                    gather = (
                        np.arange(counts.sum())
                        - shifts
                        + np.repeat(indptr[new_ids], counts)
                    )
                    neighbour = indices[gather]
                    open_mask = ~informed[trial_rep, neighbour] & ~down[neighbour]
                    if open_mask.any():
                        trial_rep = trial_rep[open_mask]
                        neighbour = neighbour[open_mask]
                        source_rep = source_rep[open_mask]
                        extra = delivery * (a * inv[source_rep] + b * inv[neighbour])
                        # (trial, neighbour) pairs are unique within a batch —
                        # one informing node per trial, simple graph — so the
                        # fancy-indexed += is exact; block ids can repeat.
                        rates[trial_rep, neighbour] += extra
                        np.add.at(
                            block_sums, (trial_rep, neighbour // block), extra
                        )
                        totals += np.bincount(trial_rep, weights=extra, minlength=T)

                since_refresh += 1
                if since_refresh >= REFRESH_INTERVAL:
                    refresh()
                    since_refresh = 0

            if crashing:
                fresh = [c for c in crashing if not down[c]]
                for crashed_id in fresh:
                    down[crashed_id] = True
                if fresh:
                    remaining -= (~informed[:, fresh]).sum(axis=1)
                    rates[:, :n] = self._batch_rates(snapshot, informed, down)
                    refresh()
                    since_refresh = 0

        results = []
        completed = remaining == 0
        for t in range(T):
            ids = np.nonzero(informed[t])[0]
            ids = ids[ids != source_id]
            results.append(
                self._build_result(
                    nodes,
                    source_id,
                    ids,
                    informed_time[t, ids],
                    bool(completed[t]),
                    limit,
                )
            )
        return results

    # ------------------------------------------------------------------
    # result construction
    # ------------------------------------------------------------------

    @staticmethod
    def _build_result(
        nodes: Tuple[Hashable, ...],
        source_id: int,
        informed_ids: np.ndarray,
        informed_at: np.ndarray,
        completed: bool,
        limit: float,
    ) -> SpreadResult:
        informed_times = {nodes[source_id]: 0.0}
        for node_id, time in zip(informed_ids, informed_at):
            informed_times[nodes[int(node_id)]] = float(time)
        spread_time = max(informed_times.values()) if completed else math.inf
        return SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=len(nodes),
            steps_used=_steps_used(completed, spread_time, limit),
            source=nodes[source_id],
            synchronous=False,
            events=len(informed_times) - 1,
        )


__all__ = ["BatchedRumorSpreading", "batched_supported", "REFRESH_INTERVAL"]
