"""Trial-batched asynchronous engine: many boundary races in one numpy sweep.

``engine="batched"`` runs ``T`` independent trials of the boundary race of
Definition 1 *simultaneously*, stacking the per-trial state — informed
bitmask, informing-rate array, clock — as 2-D ``(trials, n)`` arrays so the
per-event work is a handful of large vectorised operations instead of ``T``
Python event loops.  It produces the same :class:`repro.core.state.SpreadResult`
objects as :class:`repro.core.asynchronous.AsynchronousRumorSpreading` and
matches the boundary engine *in distribution* (individual trial results
differ from the serial engines for a fixed seed while every statistic
agrees; the test-suite checks agreement including drop and crash faults).

Randomness is organised as **one spawned generator per trial**
(:func:`repro.utils.rng.spawn_rngs`), and every trial's draw counts are a
deterministic function of that trial's own state — never of the batch
layout.  Consequence: running trials ``[0..T)`` in one batch, or as any
contiguous sharding of sub-batches fed the same spawned generators (see
``run_batch``'s ``generators`` parameter and
``repro.api._exec.execute_batched``), produces bit-identical results, which
is what lets ``workers=k`` shard the trial axis across the fork pool.

Three execution paths, chosen per batch by the ``method`` knob:

**Complete-graph closed form** (``method="auto"`` on cliques).  On a clique
every informed/uninformed pair contributes the same rate
``delivery·(a+b)/(n-1)``, so with ``m`` eligible (up, uninformed) nodes the
wait before the ``j``-th informing event is ``Exp(λ_j)`` with
``λ_j = c·j·(m-j+1)`` and the informing order is a uniform random
permutation of the eligible nodes.  Used whenever the snapshot is complete,
the source is up and no crash is *scheduled* (initially-down nodes are fine —
they only shrink ``m``; degrees still count them).

**First-passage percolation** (``method="auto"`` elsewhere, or
``method="percolation"``).  The race is *exactly* equivalent in distribution
to single-source shortest paths under independent ``Exp(rate)`` delays on the
directed adjacency entries — see :mod:`repro.core.percolation` for the
argument, including why drop faults (rate scaling), scheduled crashes
(per-entry clips) and the time horizon (monotone censoring) all stay exact.
One ``(T, m)`` exponential draw plus a vectorised frontier relaxation
replaces the entire event loop; this is the path that closes the
general-graph batch gap (~30× over the event-lockstep path at n=10⁴).

**Event lockstep race** (``method="race"``).  The literal batched race:
advance every active trial one event per pass with a √n-blocked two-level
weighted draw over each trial's rate row.  The per-trial segment loop is a
single-source kernel in :mod:`repro.core.kernels` — numba-compiled scalar
loop when numba is importable, bit-identical numpy lockstep otherwise — with
all randomness pre-drawn per trial per segment.  Kept as the structural
cross-check of the percolation path (the test-suite pits the two against
each other distributionally) and for the compiled-kernel speed path.

Because all trials share one network realisation, the engine requires a
:class:`repro.dynamics.sequences.StaticDynamicNetwork` — snapshot changes at
integer times would need per-trial rebuilds, erasing the batching win.  For
static snapshots, skipping the integer boundaries entirely is exact: the
boundary engine's re-sampling there is a no-op by memorylessness.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.asynchronous import (
    _initial_down_mask,
    _pending_crashes,
    default_time_limit,
)
from repro.core.faults import FaultModel
from repro.core.percolation import entry_transmission_rates, first_passage_times
from repro.core.state import SpreadResult
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import require, require_node_count, require_positive

#: Recompute per-trial totals and block partial sums every this many of the
#: trial's own events to keep incremental floating-point drift bounded.
REFRESH_INTERVAL = 64

#: Engine-internal execution strategies for the general static path.
BATCH_METHODS = ("auto", "percolation", "race")


def batched_supported(network: DynamicNetwork) -> Optional[str]:
    """Return ``None`` when the batched engine can run ``network``, else why not.

    The single eligibility rule shared by ``engine="batched"`` (where a
    non-``None`` reason becomes a ``ValueError``) and ``engine="auto"``
    (where it falls back to the boundary engine).
    """
    if not isinstance(network, StaticDynamicNetwork):
        return (
            "engine='batched' requires a static network (the batch shares one "
            f"snapshot across all trials); got {type(network).__name__}"
        )
    return None


def _steps_used(completed: bool, spread_time: float, limit: float) -> int:
    """Snapshot count matching the boundary engine's integer-boundary walk."""
    if completed:
        return int(math.floor(spread_time)) + 1
    return int(limit) if float(limit).is_integer() else int(math.ceil(limit))


class BatchedRumorSpreading:
    """Asynchronous push–pull (and variants) batched over many trials.

    Parameters
    ----------
    variant:
        Which contacts carry the rumor (:class:`repro.core.variants.Variant`);
        enters only through its rate coefficients, so every variant the
        boundary engine supports is supported here.
    faults:
        Optional :class:`repro.core.faults.FaultModel`.  Message drops scale
        every rate; initially-crashed nodes are masked out; scheduled crashes
        split the batch race into segments (or clip percolation entries).
    method:
        General-path strategy: ``"auto"`` (clique closed form where it
        applies, first-passage percolation elsewhere), ``"percolation"``
        (force the first-passage solver), or ``"race"`` (force the
        event-lockstep kernel path).
    """

    def __init__(
        self,
        variant: Variant = Variant.PUSH_PULL,
        faults: Optional[FaultModel] = None,
        method: str = "auto",
    ):
        require(
            method in BATCH_METHODS,
            f"method must be one of {BATCH_METHODS}, got {method!r}",
        )
        self.variant = variant
        self.faults = faults if faults is not None else FaultModel.none()
        self.method = method

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        network: DynamicNetwork,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_time: Optional[float] = None,
        recorder=None,
        observer=None,
    ) -> SpreadResult:
        """Run a single trial (the batch engine's process-protocol adapter).

        Streaming hooks are incompatible with batching — per-event callbacks
        would serialise exactly the loop the engine vectorises away — so
        ``recorder`` / ``observer`` must be ``None``.
        """
        require(
            recorder is None and observer is None,
            "engine='batched' does not support recorders or observers; "
            "use engine='boundary' (or 'jit') for streaming hooks",
        )
        return self.run_batch(network, 1, source=source, rng=rng, max_time=max_time)[0]

    def run_batch(
        self,
        network: DynamicNetwork,
        trials: int,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_time: Optional[float] = None,
        generators: Optional[Sequence[np.random.Generator]] = None,
    ) -> List[SpreadResult]:
        """Run ``trials`` independent trials on one network realisation.

        Every trial starts from the same ``source`` on the same static
        snapshot and shares the crash schedule; the randomness of the races
        is independent across trials, driven by one spawned generator per
        trial.  ``generators`` overrides the spawn: passing
        ``spawn_rngs(rng, total)[lo:hi]`` for a contiguous span reproduces
        exactly trials ``lo..hi`` of the unsharded batch — the contract
        ``execute_batched`` relies on to split a batch across workers.
        Returns one :class:`SpreadResult` per trial, in trial order.
        """
        require_node_count(trials, minimum=1, name="trials")
        reason = batched_supported(network)
        require(reason is None, reason or "")
        if generators is not None:
            gens = list(generators)
            require(
                len(gens) == trials,
                f"generators must supply one generator per trial "
                f"({trials}), got {len(gens)}",
            )
        else:
            gens = spawn_rngs(rng, trials)
        source = network.default_source() if source is None else source
        require(source in network.node_set, f"source {source!r} is not a node of the network")
        limit = default_time_limit(network.n) if max_time is None else max_time
        require_positive(limit, "max_time")

        network.reset(None)
        nodes = network.nodes
        index_of = {label: i for i, label in enumerate(nodes)}
        source_id = index_of[source]
        snapshot = network.snapshot_for_step(0, {source})
        down = _initial_down_mask(self.faults, nodes)
        pending = _pending_crashes(self.faults, index_of)

        n = snapshot.n
        is_complete = snapshot.indices.size == n * (n - 1)
        if (
            self.method == "auto"
            and is_complete
            and not pending
            and not down[source_id]
        ):
            return self._run_clique_batch(snapshot, nodes, source_id, down, gens, limit)
        if self.method == "race":
            return self._run_race_batch(
                snapshot, nodes, source_id, down, pending, gens, limit
            )
        return self._run_percolation_batch(
            snapshot, nodes, source_id, down, pending, gens, limit
        )

    # ------------------------------------------------------------------
    # complete-graph closed form
    # ------------------------------------------------------------------

    def _run_clique_batch(
        self,
        snapshot: CsrSnapshot,
        nodes: Tuple[Hashable, ...],
        source_id: int,
        down: np.ndarray,
        gens: List[np.random.Generator],
        limit: float,
    ) -> List[SpreadResult]:
        n = snapshot.n
        trials = len(gens)
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()
        eligible = np.nonzero(~down)[0]
        eligible = eligible[eligible != source_id]
        m = int(eligible.size)
        if m == 0 or delivery <= 0.0:
            # Nothing to inform (or nothing can ever be delivered).
            completed = m == 0
            return [
                self._build_result(
                    nodes,
                    source_id,
                    np.empty(0, dtype=np.int64),
                    np.empty(0),
                    completed,
                    limit,
                )
                for _ in range(trials)
            ]

        # Stage rates: before the j-th informing event (j = 1..m) there are j
        # informed and m - j + 1 eligible uninformed nodes, every cross pair
        # contributing delivery·(a+b)/(n-1).
        stage = np.arange(1, m + 1, dtype=np.float64)
        rate = (delivery * (a + b) / (n - 1)) * stage * (m - stage + 1.0)
        waits = np.empty((trials, m))
        order = np.empty((trials, m), dtype=np.int64)
        for t, gen in enumerate(gens):
            waits[t] = gen.standard_exponential(m)
            order[t] = gen.permutation(eligible)
        waits /= rate[None, :]
        times = np.cumsum(waits, axis=1)

        event_counts = (times < limit).sum(axis=1)
        results = []
        for t in range(trials):
            k = int(event_counts[t])
            results.append(
                self._build_result(
                    nodes, source_id, order[t, :k], times[t, :k], k == m, limit
                )
            )
        return results

    # ------------------------------------------------------------------
    # first-passage percolation path (default for general static graphs)
    # ------------------------------------------------------------------

    def _run_percolation_batch(
        self,
        snapshot: CsrSnapshot,
        nodes: Tuple[Hashable, ...],
        source_id: int,
        down: np.ndarray,
        pending: List[Tuple[float, int]],
        gens: List[np.random.Generator],
        limit: float,
    ) -> List[SpreadResult]:
        n = snapshot.n
        trials = len(gens)
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()
        m = int(snapshot.indices.size)

        delays = np.empty((trials, m))
        for t, gen in enumerate(gens):
            delays[t] = gen.standard_exponential(m)
        if delivery <= 0.0:
            delays[:] = np.inf
        elif m:
            delays /= entry_transmission_rates(snapshot, a, b, delivery)[None, :]
        if down.any() and m:
            unusable = down[snapshot.row_owner] | down[snapshot.indices]
            delays[:, unusable] = np.inf

        theta = np.full(n, np.inf)
        for time, node_id in pending:
            theta[node_id] = min(theta[node_id], time)
        clip = None
        if pending and m:
            clip = np.minimum(theta[snapshot.row_owner], theta[snapshot.indices])

        times = first_passage_times(
            snapshot.indptr,
            snapshot.indices,
            snapshot.degrees,
            delays,
            source_id,
            clip=clip,
            limit=limit,
        )
        informed = np.isfinite(times)
        # A trial is complete when every node is informed or excused: down
        # from the start, or scheduled to crash strictly inside the horizon
        # (the event engines drop such nodes from `remaining` at the crash
        # boundary).
        excused = down | (theta < limit)
        completed = (informed | excused[None, :]).all(axis=1)

        results = []
        for t in range(trials):
            ids = np.nonzero(informed[t])[0]
            ids = ids[ids != source_id]
            results.append(
                self._build_result(
                    nodes, source_id, ids, times[t, ids], bool(completed[t]), limit
                )
            )
        return results

    # ------------------------------------------------------------------
    # event-lockstep race path (kernel-backed cross-check)
    # ------------------------------------------------------------------

    def _batch_rates(
        self, snapshot: CsrSnapshot, informed: np.ndarray, down: np.ndarray
    ) -> np.ndarray:
        """``(T, n)`` informing rates — the vectorised rebuild over all trials.

        The batched analogue of ``AsynchronousRumorSpreading._build_rates``:
        an adjacency entry ``(v, u)`` contributes ``a/d_u + b/d_v`` to
        ``rates[t, v]`` exactly when, in trial ``t``, ``u`` is informed-and-up
        and ``v`` is uninformed-and-up.  The per-owner reduction uses
        ``np.add.reduceat`` over the CSR row boundaries — a sequential
        left-to-right reduction, bit-identical to the compiled
        ``kernels.batched_rebuild`` (its skipped non-crossing entries are
        exact ``+ 0.0`` no-ops here).
        """
        T = informed.shape[0]
        n = snapshot.n
        edges = snapshot.indices
        if edges.size == 0:
            return np.zeros((T, n))
        owner = snapshot.row_owner
        up = ~down
        a, b = self.variant.rate_coefficients()
        inv = snapshot.inverse_degrees
        crossing = (
            informed[:, edges]
            & up[edges][None, :]
            & ~informed[:, owner]
            & up[owner][None, :]
        )
        contribution = (a * inv[edges] + b * inv[owner])[None, :] * crossing
        delivery = self.faults.delivery_probability()
        if delivery != 1.0:
            contribution *= delivery
        starts = np.minimum(snapshot.indptr[:-1], edges.size - 1)
        rates = np.add.reduceat(contribution, starts, axis=1)
        empty = snapshot.indptr[:-1] == snapshot.indptr[1:]
        if empty.any():
            # reduceat yields the element at a repeated index, not a zero sum.
            rates[:, empty] = 0.0
        return np.ascontiguousarray(rates)

    def _rebuild_rates(
        self, snapshot: CsrSnapshot, informed: np.ndarray, down: np.ndarray
    ) -> np.ndarray:
        """Crash-boundary rebuild: compiled kernel when available, else reduceat."""
        if kernels.HAVE_NUMBA:
            a, b = self.variant.rate_coefficients()
            out = np.empty((informed.shape[0], snapshot.n))
            kernels.batched_rebuild(
                snapshot.indptr,
                snapshot.indices,
                snapshot.inverse_degrees,
                informed,
                down,
                a,
                b,
                self.faults.delivery_probability(),
                out,
            )
            return out
        return self._batch_rates(snapshot, informed, down)

    def _run_race_batch(
        self,
        snapshot: CsrSnapshot,
        nodes: Tuple[Hashable, ...],
        source_id: int,
        down: np.ndarray,
        pending: List[Tuple[float, int]],
        gens: List[np.random.Generator],
        limit: float,
    ) -> List[SpreadResult]:
        n = snapshot.n
        T = len(gens)
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()
        inv = snapshot.inverse_degrees
        indptr = snapshot.indptr
        indices = snapshot.indices
        degrees = snapshot.degrees

        informed = np.zeros((T, n), dtype=bool)
        informed[:, source_id] = True
        informed_time = np.full((T, n), np.nan)
        informed_time[:, source_id] = 0.0
        down = down.copy()
        remaining = np.full(
            T, int(np.count_nonzero(~informed[0] & ~down)), dtype=np.int64
        )
        tau = np.zeros(T)

        # √n-blocked rate rows: selection walks nb block sums, then one block.
        block = max(1, math.isqrt(n))
        nb = -(-n // block)
        rates = np.zeros((T, nb * block))
        rates[:, :n] = self._rebuild_rates(snapshot, informed, down)
        # cumsum-take-last = the sequential sums the kernels' refresh uses.
        block_sums = np.ascontiguousarray(
            np.cumsum(rates.reshape(T, nb, block), axis=2)[:, :, -1]
        )
        totals = np.ascontiguousarray(np.cumsum(block_sums, axis=1)[:, -1])
        since_refresh = np.zeros(T, dtype=np.int64)

        # Scheduled crashes split the race into segments ending at each crash
        # time (grouped, in case several nodes crash simultaneously) and
        # finally at the horizon.  Crashes at or beyond the horizon never
        # happen inside a run, so they neither bound a segment nor excuse the
        # node from `remaining`.
        boundaries: List[Tuple[float, List[int]]] = []
        for time, node_id in pending:
            if time >= limit:
                continue
            if boundaries and math.isclose(boundaries[-1][0], time):
                boundaries[-1][1].append(node_id)
            else:
                boundaries.append((time, [node_id]))
        boundaries.append((limit, []))

        for seg_end, crashing in boundaries:
            # Pre-draw each trial's randomness for the whole segment: at most
            # remaining+2 exponentials and remaining+1 uniforms (events, one
            # drift clamp, the final over-the-horizon wait).  Sizes depend
            # only on the trial's own state, so sharded sub-batches draw the
            # same per-trial sequences.
            caps_e = remaining + 2
            caps_u = remaining + 1
            exponentials = np.zeros((T, int(caps_e.max())))
            uniforms = np.zeros((T, int(caps_u.max())))
            for t, gen in enumerate(gens):
                exponentials[t, : caps_e[t]] = gen.standard_exponential(int(caps_e[t]))
                uniforms[t, : caps_u[t]] = gen.random(int(caps_u[t]))

            if kernels.HAVE_NUMBA:
                fstate = np.empty(2)
                istate = np.empty(2, dtype=np.int64)
                for t in range(T):
                    fstate[0] = tau[t]
                    fstate[1] = totals[t]
                    istate[0] = remaining[t]
                    istate[1] = since_refresh[t]
                    kernels.batched_trial_segment(
                        indptr,
                        indices,
                        inv,
                        rates[t],
                        block_sums[t],
                        informed[t],
                        down,
                        informed_time[t],
                        exponentials[t],
                        uniforms[t],
                        fstate,
                        istate,
                        float(seg_end),
                        a,
                        b,
                        delivery,
                        block,
                        nb,
                        n,
                        REFRESH_INTERVAL,
                    )
                    tau[t] = fstate[0]
                    totals[t] = fstate[1]
                    remaining[t] = istate[0]
                    since_refresh[t] = istate[1]
            else:
                kernels.batched_segment_fallback(
                    indptr,
                    indices,
                    inv,
                    degrees,
                    rates,
                    block_sums,
                    totals,
                    informed,
                    down,
                    informed_time,
                    tau,
                    remaining,
                    since_refresh,
                    exponentials,
                    uniforms,
                    float(seg_end),
                    a,
                    b,
                    delivery,
                    block,
                    nb,
                    n,
                    REFRESH_INTERVAL,
                )

            if crashing:
                fresh = [c for c in crashing if not down[c]]
                for crashed_id in fresh:
                    down[crashed_id] = True
                if fresh:
                    remaining -= (~informed[:, fresh]).sum(axis=1)
                    rates[:, :n] = self._rebuild_rates(snapshot, informed, down)
                    block_sums[:] = np.cumsum(
                        rates.reshape(T, nb, block), axis=2
                    )[:, :, -1]
                    totals[:] = np.cumsum(block_sums, axis=1)[:, -1]
                    since_refresh[:] = 0

        results = []
        completed = remaining == 0
        for t in range(T):
            ids = np.nonzero(informed[t])[0]
            ids = ids[ids != source_id]
            results.append(
                self._build_result(
                    nodes,
                    source_id,
                    ids,
                    informed_time[t, ids],
                    bool(completed[t]),
                    limit,
                )
            )
        return results

    # ------------------------------------------------------------------
    # result construction
    # ------------------------------------------------------------------

    @staticmethod
    def _build_result(
        nodes: Tuple[Hashable, ...],
        source_id: int,
        informed_ids: np.ndarray,
        informed_at: np.ndarray,
        completed: bool,
        limit: float,
    ) -> SpreadResult:
        informed_times = {nodes[source_id]: 0.0}
        for node_id, time in zip(informed_ids, informed_at):
            informed_times[nodes[int(node_id)]] = float(time)
        spread_time = max(informed_times.values()) if completed else math.inf
        return SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=len(nodes),
            steps_used=_steps_used(completed, spread_time, limit),
            source=nodes[source_id],
            synchronous=False,
            events=len(informed_times) - 1,
        )


__all__ = [
    "BATCH_METHODS",
    "BatchedRumorSpreading",
    "batched_supported",
    "REFRESH_INTERVAL",
]
