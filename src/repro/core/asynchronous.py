"""The asynchronous rumor spreading algorithm on dynamic networks.

This is the process of Definition 1: every node carries an exponential clock
of rate 1 (rate 2 for the 2-push variant) and, when it rings, contacts a
uniformly random neighbour in the *current* snapshot ``G(⌊τ⌋)``; the rumor is
exchanged if at least one of the pair knows it.  Snapshots change at integer
times.

Two engines are provided; both run on the array-native
:class:`repro.graphs.csr.CsrSnapshot` representation that every
:class:`repro.dynamics.base.DynamicNetwork` emits via ``snapshot_for_step``.

**Boundary engine** (default, exact and fast).  Only contacts across the
informed/uninformed cut change the state, and the first such contact after
time ``γ`` occurs after an ``Exp(λ(γ))`` wait with
``λ(γ) = Σ_{{u,v}∈E(I,U)} (1/d_u + 1/d_v)`` (Equation (1) of the paper), the
newly informed node being chosen proportionally to its share of ``λ``.  The
engine simulates this exponential race over the cut, re-sampling (by
memorylessness) whenever a snapshot boundary or a scheduled node crash
intervenes.

Data layout: all per-node state is indexed by the compact node id of the
snapshot (position in ``network.nodes``) —

* ``rates``: ``float64[n]``, the informing rate of each uninformed node
  (0 for informed, crashed or cut-free nodes), plus its tracked sum;
* ``informed`` / ``down``: ``bool[n]`` masks;
* ``informed_time``: ``float64[n]`` (``nan`` until informed);
* an O(1) *uninformed-and-up* counter replaces any per-iteration scan for
  remaining targets.

Per informing event the work is a cumulative-sum + ``np.searchsorted``
weighted draw (O(n) vectorised, replacing the O(|U|) Python dict scan) and an
O(deg) incremental rate update over the new node's CSR neighbour slice.  Full
rate rebuilds — needed only at snapshot changes and crashes — are a single
vectorised pass over the directed edge arrays, O(n + m) with no Python loop.

**Naive engine** (reference implementation).  Simulates every clock tick of
every node, informative or not, walking CSR neighbour slices.  It is orders
of magnitude slower but is the literal transcription of Definition 1; the
test-suite checks that the two engines agree in distribution (including under
message drops and scheduled crashes).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.faults import FaultModel
from repro.core.state import SpreadResult
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.graphs.csr import CsrSnapshot
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_positive

if TYPE_CHECKING:  # pragma: no cover - type-only (repro.api imports this module)
    from repro.api.observers import RunObserver

#: Total-rate threshold below which the boundary engine treats the cut as empty.
RATE_EPSILON = 1e-15


def default_time_limit(n: int) -> float:
    """Default simulation horizon: comfortably above the universal O(n²) bound."""
    return 4.0 * n * n + 1000.0


def _initial_down_mask(faults: FaultModel, nodes: Tuple[Hashable, ...]) -> np.ndarray:
    """Boolean mask of nodes that are already down at time 0."""
    if not faults.has_faults:
        return np.zeros(len(nodes), dtype=bool)
    return np.fromiter(
        (faults.is_down(node, 0.0) for node in nodes), dtype=bool, count=len(nodes)
    )


def _pending_crashes(
    faults: FaultModel, index_of: Dict[Hashable, int]
) -> List[Tuple[float, int]]:
    """Scheduled ``(time, compact id)`` crashes, earliest first."""
    return sorted(
        (time, index_of[node])
        for node, time in faults.crash_times.items()
        if node not in faults.crashed_nodes and time > 0.0 and node in index_of
    )


class AsynchronousRumorSpreading:
    """Asynchronous push–pull (and variants) on a dynamic evolving network.

    Parameters
    ----------
    variant:
        Which contacts carry the rumor (:class:`repro.core.variants.Variant`).
    engine:
        ``"boundary"`` (exact cut-race simulation, default), ``"naive"``
        (every clock tick, reference implementation) or ``"jit"`` (the
        boundary race with its per-event loop extracted into the
        :mod:`repro.core.kernels` segment kernel, numba-compiled when numba
        is importable and running the identical function body under CPython
        otherwise).
    faults:
        Optional :class:`repro.core.faults.FaultModel`.
    """

    ENGINES = ("boundary", "naive", "jit")

    def __init__(
        self,
        variant: Variant = Variant.PUSH_PULL,
        engine: str = "boundary",
        faults: Optional[FaultModel] = None,
    ):
        require(engine in self.ENGINES, f"unknown engine {engine!r}")
        self.variant = variant
        self.engine = engine
        self.faults = faults if faults is not None else FaultModel.none()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        network: DynamicNetwork,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_time: Optional[float] = None,
        recorder: Optional[SnapshotRecorder] = None,
        observer: Optional["RunObserver"] = None,
    ) -> SpreadResult:
        """Run the process once and return its :class:`SpreadResult`.

        Parameters
        ----------
        network:
            The dynamic network; it is ``reset`` at the start of the run.
        source:
            The initially informed node; defaults to
            ``network.default_source()``.
        max_time:
            Simulation horizon; the run is reported as not completed if the
            rumor has not reached everyone by then.  Defaults to
            ``4 n² + 1000``.
        recorder:
            Optional :class:`SnapshotRecorder` fed every snapshot the run
            uses, for post-hoc evaluation of the paper's bounds.
        observer:
            Optional streaming :class:`repro.api.observers.RunObserver`:
            ``on_snapshot`` fires when a snapshot is exposed, ``on_event``
            when a node becomes informed, ``on_complete`` with the final
            result.
        """
        gen = ensure_rng(rng)
        source = network.default_source() if source is None else source
        require(source in network.node_set, f"source {source!r} is not a node of the network")
        limit = default_time_limit(network.n) if max_time is None else max_time
        require_positive(limit, "max_time")
        if self.engine == "boundary":
            return self._run_boundary(network, source, gen, limit, recorder, observer)
        if self.engine == "jit":
            return self._run_jit(network, source, gen, limit, recorder, observer)
        return self._run_naive(network, source, gen, limit, recorder, observer)

    # ------------------------------------------------------------------
    # boundary engine
    # ------------------------------------------------------------------

    def _build_rates(
        self,
        snapshot: CsrSnapshot,
        informed: np.ndarray,
        down: np.ndarray,
    ) -> Tuple[np.ndarray, float]:
        """Per-uninformed-node informing rates (indexed by compact id) and their sum.

        One vectorised pass over the directed edge arrays: an adjacency entry
        ``(v, u)`` contributes ``a/d_u + b/d_v`` to ``rates[v]`` exactly when
        ``u`` is informed-and-up and ``v`` is uninformed-and-up.
        """
        owner = snapshot.row_owner
        neighbour = snapshot.indices
        inv = snapshot.inverse_degrees
        crossing = (informed[neighbour] & ~down[neighbour]) & (
            ~informed[owner] & ~down[owner]
        )
        targets = owner[crossing]
        sources = neighbour[crossing]
        a, b = self.variant.rate_coefficients()
        contributions = a * inv[sources] + b * inv[targets]
        # bincount degrades to int64 zeros when no edge crosses the cut.
        rates = np.bincount(targets, weights=contributions, minlength=snapshot.n).astype(
            np.float64, copy=False
        )
        delivery = self.faults.delivery_probability()
        if delivery != 1.0:
            rates *= delivery
        return rates, float(rates.sum())

    @staticmethod
    def _choose_weighted(rates: np.ndarray, total_rate: float, gen: np.random.Generator) -> int:
        """Pick a compact id with probability proportional to ``rates``.

        Cumulative sum + ``searchsorted`` replaces the seed implementation's
        linear dict scan.  Floating-point drift between the tracked
        ``total_rate`` and the fresh cumulative sum is absorbed by clamping
        onto a positive-rate entry.
        """
        cumulative = np.cumsum(rates)
        threshold = gen.random() * total_rate
        index = int(np.searchsorted(cumulative, threshold, side="left"))
        if index >= len(rates) or rates[index] <= 0.0:
            positive = np.nonzero(rates > 0.0)[0]
            index = int(positive[-1] if index >= len(rates) else positive[0])
        return index

    def _run_boundary(
        self,
        network: DynamicNetwork,
        source: Hashable,
        gen: np.random.Generator,
        limit: float,
        recorder: Optional[SnapshotRecorder],
        observer: Optional["RunObserver"] = None,
    ) -> SpreadResult:
        network.reset(gen)
        nodes = network.nodes
        n = network.n
        index_of = {label: i for i, label in enumerate(nodes)}
        source_id = index_of[source]
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()

        informed = np.zeros(n, dtype=bool)
        informed[source_id] = True
        informed_time = np.full(n, np.nan)
        informed_time[source_id] = 0.0
        informed_labels = {source}
        down = _initial_down_mask(self.faults, nodes)
        pending_crashes = _pending_crashes(self.faults, index_of)
        remaining = int(np.count_nonzero(~informed & ~down))

        tau = 0.0
        step = 0
        events = 0
        snapshot = network.snapshot_for_step(step, informed_labels)
        if recorder is not None:
            recorder.record(network, step, snapshot, len(informed_labels))
        if observer is not None:
            observer.on_snapshot(step, snapshot, len(informed_labels))
        rates, total_rate = self._build_rates(snapshot, informed, down)

        while remaining > 0 and tau < limit:
            next_boundary = float(step + 1)
            next_crash_time = pending_crashes[0][0] if pending_crashes else math.inf
            horizon = min(next_boundary, next_crash_time, limit)

            advance_to_horizon = True
            if total_rate > RATE_EPSILON:
                wait = gen.exponential(1.0 / total_rate)
                if tau + wait < horizon:
                    # An informing contact happens before any interruption.
                    tau += wait
                    events += 1
                    new_id = self._choose_weighted(rates, total_rate, gen)
                    informed[new_id] = True
                    informed_time[new_id] = tau
                    informed_labels.add(nodes[new_id])
                    remaining -= 1
                    if observer is not None:
                        observer.on_event(tau, nodes[new_id], len(informed_labels))
                    total_rate -= float(rates[new_id])
                    rates[new_id] = 0.0
                    neighbours = snapshot.neighbors(new_id)
                    if neighbours.size:
                        open_targets = neighbours[
                            ~informed[neighbours] & ~down[neighbours]
                        ]
                        if open_targets.size:
                            inv = snapshot.inverse_degrees
                            extra = delivery * (a * inv[new_id] + b * inv[open_targets])
                            rates[open_targets] += extra
                            total_rate += float(extra.sum())
                    advance_to_horizon = False

            if advance_to_horizon:
                if horizon >= limit:
                    tau = limit
                    break
                tau = horizon
                if pending_crashes and math.isclose(horizon, next_crash_time):
                    _, crashed_id = pending_crashes.pop(0)
                    if not down[crashed_id]:
                        down[crashed_id] = True
                        if not informed[crashed_id]:
                            remaining -= 1
                    rates, total_rate = self._build_rates(snapshot, informed, down)
                else:
                    step += 1
                    previous_snapshot = snapshot
                    snapshot = network.snapshot_for_step(step, informed_labels)
                    if recorder is not None:
                        recorder.record(network, step, snapshot, len(informed_labels))
                    if observer is not None:
                        observer.on_snapshot(step, snapshot, len(informed_labels))
                    if snapshot is not previous_snapshot:
                        rates, total_rate = self._build_rates(snapshot, informed, down)

        completed = remaining == 0
        informed_ids = np.nonzero(informed)[0]
        informed_times = {
            nodes[int(i)]: float(informed_time[int(i)]) for i in informed_ids
        }
        spread_time = max(informed_times.values()) if completed else math.inf
        result = SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=n,
            steps_used=step + 1,
            source=source,
            synchronous=False,
            events=events,
        )
        if observer is not None:
            observer.on_complete(result)
        return result

    # ------------------------------------------------------------------
    # jit engine (boundary race through the extracted segment kernel)
    # ------------------------------------------------------------------

    def _run_jit(
        self,
        network: DynamicNetwork,
        source: Hashable,
        gen: np.random.Generator,
        limit: float,
        recorder: Optional[SnapshotRecorder],
        observer: Optional["RunObserver"] = None,
    ) -> SpreadResult:
        """The boundary race, advanced one segment at a time by the kernel.

        Identical simulation semantics to :meth:`_run_boundary` (it reuses
        ``_build_rates`` for the O(n + m) rebuilds at snapshot boundaries and
        crashes), but the per-event loop runs inside
        :func:`repro.core.kernels.boundary_segment`.  Randomness is pre-drawn
        per segment in blocks sized by the remaining uninformed count, so the
        generator stream — and therefore the result — is bit-identical
        whether or not numba compiled the kernel.  Observer hooks are
        *replayed* from the kernel's event log after each segment, preserving
        the boundary engine's hook ordering.
        """
        from repro.core.kernels import boundary_segment

        network.reset(gen)
        nodes = network.nodes
        n = network.n
        index_of = {label: i for i, label in enumerate(nodes)}
        source_id = index_of[source]
        a, b = self.variant.rate_coefficients()
        delivery = self.faults.delivery_probability()

        informed = np.zeros(n, dtype=bool)
        informed[source_id] = True
        informed_time = np.full(n, np.nan)
        informed_time[source_id] = 0.0
        informed_labels = {source}
        down = _initial_down_mask(self.faults, nodes)
        pending_crashes = _pending_crashes(self.faults, index_of)
        remaining = int(np.count_nonzero(~informed & ~down))

        tau = 0.0
        step = 0
        events = 0
        snapshot = network.snapshot_for_step(step, informed_labels)
        if recorder is not None:
            recorder.record(network, step, snapshot, len(informed_labels))
        if observer is not None:
            observer.on_snapshot(step, snapshot, len(informed_labels))
        rates, total_rate = self._build_rates(snapshot, informed, down)
        event_nodes = np.empty(n, dtype=np.int64)
        event_times = np.empty(n, dtype=np.float64)

        while remaining > 0 and tau < limit:
            next_boundary = float(step + 1)
            next_crash_time = pending_crashes[0][0] if pending_crashes else math.inf
            horizon = min(next_boundary, next_crash_time, limit)

            # Deterministically sized randomness block: at most `remaining`
            # events in this segment (one exponential + one uniform each) plus
            # one final horizon-crossing exponential.
            exponentials = gen.standard_exponential(remaining + 1)
            uniforms = gen.random(remaining)
            segment_events, tau, total_rate, remaining = boundary_segment(
                snapshot.indptr,
                snapshot.indices,
                snapshot.inverse_degrees,
                rates,
                informed,
                down,
                informed_time,
                event_nodes,
                event_times,
                exponentials,
                uniforms,
                tau,
                total_rate,
                horizon,
                remaining,
                float(a),
                float(b),
                float(delivery),
            )
            for i in range(segment_events):
                informed_labels.add(nodes[int(event_nodes[i])])
            if observer is not None:
                base = len(informed_labels) - segment_events
                for i in range(segment_events):
                    observer.on_event(
                        float(event_times[i]), nodes[int(event_nodes[i])], base + i + 1
                    )
            events += segment_events
            if remaining == 0:
                break

            # The kernel stopped at the horizon: crash, snapshot step or limit.
            if horizon >= limit:
                tau = limit
                break
            if pending_crashes and math.isclose(horizon, next_crash_time):
                _, crashed_id = pending_crashes.pop(0)
                if not down[crashed_id]:
                    down[crashed_id] = True
                    if not informed[crashed_id]:
                        remaining -= 1
                rates, total_rate = self._build_rates(snapshot, informed, down)
            else:
                step += 1
                previous_snapshot = snapshot
                snapshot = network.snapshot_for_step(step, informed_labels)
                if recorder is not None:
                    recorder.record(network, step, snapshot, len(informed_labels))
                if observer is not None:
                    observer.on_snapshot(step, snapshot, len(informed_labels))
                if snapshot is not previous_snapshot:
                    rates, total_rate = self._build_rates(snapshot, informed, down)

        completed = remaining == 0
        informed_ids = np.nonzero(informed)[0]
        informed_times = {
            nodes[int(i)]: float(informed_time[int(i)]) for i in informed_ids
        }
        spread_time = max(informed_times.values()) if completed else math.inf
        result = SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=n,
            steps_used=step + 1,
            source=source,
            synchronous=False,
            events=events,
        )
        if observer is not None:
            observer.on_complete(result)
        return result

    # ------------------------------------------------------------------
    # naive engine
    # ------------------------------------------------------------------

    def _run_naive(
        self,
        network: DynamicNetwork,
        source: Hashable,
        gen: np.random.Generator,
        limit: float,
        recorder: Optional[SnapshotRecorder],
        observer: Optional["RunObserver"] = None,
    ) -> SpreadResult:
        network.reset(gen)
        nodes = network.nodes
        n = network.n
        index_of = {label: i for i, label in enumerate(nodes)}
        source_id = index_of[source]
        per_node_rate = 2.0 if self.variant is Variant.TWO_PUSH else 1.0
        drop = self.faults.drop_probability

        informed = np.zeros(n, dtype=bool)
        informed[source_id] = True
        informed_time = np.full(n, np.nan)
        informed_time[source_id] = 0.0
        informed_labels = {source}
        down = _initial_down_mask(self.faults, nodes)
        pending_crashes = _pending_crashes(self.faults, index_of)
        remaining = int(np.count_nonzero(~informed & ~down))

        def apply_crashes(now: float) -> None:
            nonlocal remaining
            while pending_crashes and pending_crashes[0][0] <= now:
                _, crashed_id = pending_crashes.pop(0)
                if not down[crashed_id]:
                    down[crashed_id] = True
                    if not informed[crashed_id]:
                        remaining -= 1

        tau = 0.0
        step = 0
        events = 0
        snapshot = network.snapshot_for_step(step, informed_labels)
        if recorder is not None:
            recorder.record(network, step, snapshot, len(informed_labels))
        if observer is not None:
            observer.on_snapshot(step, snapshot, len(informed_labels))

        while remaining > 0 and tau < limit:
            total_rate = per_node_rate * n
            wait = gen.exponential(1.0 / total_rate)
            if tau + wait >= step + 1:
                tau = float(step + 1)
                apply_crashes(tau)
                if tau >= limit:
                    break
                step += 1
                snapshot = network.snapshot_for_step(step, informed_labels)
                if recorder is not None:
                    recorder.record(network, step, snapshot, len(informed_labels))
                if observer is not None:
                    observer.on_snapshot(step, snapshot, len(informed_labels))
                continue
            tau += wait
            apply_crashes(tau)
            events += 1
            caller = int(gen.integers(0, n))
            if down[caller]:
                continue
            neighbours = snapshot.neighbors(caller)
            if neighbours.size == 0:
                continue
            callee = int(neighbours[int(gen.integers(0, neighbours.size))])
            if down[callee]:
                continue
            if drop > 0 and gen.random() < drop:
                continue
            newly = self._exchange_ids(caller, callee, informed)
            if newly is not None:
                informed[newly] = True
                informed_time[newly] = tau
                informed_labels.add(nodes[newly])
                remaining -= 1
                if observer is not None:
                    observer.on_event(tau, nodes[newly], len(informed_labels))

        apply_crashes(tau)
        completed = remaining == 0
        informed_ids = np.nonzero(informed)[0]
        informed_times = {
            nodes[int(i)]: float(informed_time[int(i)]) for i in informed_ids
        }
        spread_time = max(informed_times.values()) if completed else math.inf
        result = SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=n,
            steps_used=step + 1,
            source=source,
            synchronous=False,
            events=events,
        )
        if observer is not None:
            observer.on_complete(result)
        return result

    def _exchange_ids(self, caller: int, callee: int, informed: np.ndarray) -> Optional[int]:
        """Return the compact id newly informed by one contact, or ``None``."""
        caller_knows = bool(informed[caller])
        callee_knows = bool(informed[callee])
        if caller_knows == callee_knows:
            return None
        if self.variant in (Variant.PUSH, Variant.TWO_PUSH):
            return callee if caller_knows else None
        if self.variant is Variant.PULL:
            return caller if callee_knows else None
        # push-pull: the rumor moves whichever direction is possible.
        return callee if caller_knows else caller


__all__ = ["AsynchronousRumorSpreading", "default_time_limit"]
