"""The asynchronous rumor spreading algorithm on dynamic networks.

This is the process of Definition 1: every node carries an exponential clock
of rate 1 (rate 2 for the 2-push variant) and, when it rings, contacts a
uniformly random neighbour in the *current* snapshot ``G(⌊τ⌋)``; the rumor is
exchanged if at least one of the pair knows it.  Snapshots change at integer
times.

Two engines are provided.

**Boundary engine** (default, exact and fast).  Only contacts across the
informed/uninformed cut change the state, and the first such contact after
time ``γ`` occurs after an ``Exp(λ(γ))`` wait with
``λ(γ) = Σ_{{u,v}∈E(I,U)} (1/d_u + 1/d_v)`` (Equation (1) of the paper), the
newly informed node being chosen proportionally to its share of ``λ``.  The
engine therefore simulates an exponential race over the cut, re-sampling (by
memorylessness) whenever a snapshot boundary or a scheduled node crash
intervenes.  Per informing event the work is ``O(deg)`` for the incremental
rate update plus ``O(|U|)`` for the weighted choice of the new node.

**Naive engine** (reference implementation).  Simulates every clock tick of
every node, informative or not.  It is orders of magnitude slower but is the
literal transcription of Definition 1; the test-suite checks that the two
engines agree in distribution.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.faults import FaultModel
from repro.core.state import SpreadResult
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_positive


def default_time_limit(n: int) -> float:
    """Default simulation horizon: comfortably above the universal O(n²) bound."""
    return 4.0 * n * n + 1000.0


class AsynchronousRumorSpreading:
    """Asynchronous push–pull (and variants) on a dynamic evolving network.

    Parameters
    ----------
    variant:
        Which contacts carry the rumor (:class:`repro.core.variants.Variant`).
    engine:
        ``"boundary"`` (exact cut-race simulation, default) or ``"naive"``
        (every clock tick, reference implementation).
    faults:
        Optional :class:`repro.core.faults.FaultModel`.
    """

    def __init__(
        self,
        variant: Variant = Variant.PUSH_PULL,
        engine: str = "boundary",
        faults: Optional[FaultModel] = None,
    ):
        require(engine in ("boundary", "naive"), f"unknown engine {engine!r}")
        self.variant = variant
        self.engine = engine
        self.faults = faults if faults is not None else FaultModel.none()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        network: DynamicNetwork,
        source: Optional[Hashable] = None,
        rng: RngLike = None,
        max_time: Optional[float] = None,
        recorder: Optional[SnapshotRecorder] = None,
    ) -> SpreadResult:
        """Run the process once and return its :class:`SpreadResult`.

        Parameters
        ----------
        network:
            The dynamic network; it is ``reset`` at the start of the run.
        source:
            The initially informed node; defaults to
            ``network.default_source()``.
        max_time:
            Simulation horizon; the run is reported as not completed if the
            rumor has not reached everyone by then.  Defaults to
            ``4 n² + 1000``.
        recorder:
            Optional :class:`SnapshotRecorder` fed every snapshot the run
            uses, for post-hoc evaluation of the paper's bounds.
        """
        gen = ensure_rng(rng)
        source = network.default_source() if source is None else source
        require(source in set(network.nodes), f"source {source!r} is not a node of the network")
        limit = default_time_limit(network.n) if max_time is None else max_time
        require_positive(limit, "max_time")
        if self.engine == "boundary":
            return self._run_boundary(network, source, gen, limit, recorder)
        return self._run_naive(network, source, gen, limit, recorder)

    # ------------------------------------------------------------------
    # boundary engine
    # ------------------------------------------------------------------

    def _edge_rate(self, graph: nx.Graph, informed_node, uninformed_node) -> float:
        return self.variant.edge_rate(
            graph.degree(informed_node), graph.degree(uninformed_node)
        )

    def _build_rates(
        self,
        graph: nx.Graph,
        informed: set,
        down: set,
    ) -> Tuple[Dict[Hashable, float], float]:
        """Per-uninformed-node informing rates and their total."""
        delivery = self.faults.delivery_probability()
        rates: Dict[Hashable, float] = {}
        total = 0.0
        for v in graph.nodes():
            if v in informed or v in down:
                continue
            rate = 0.0
            for u in graph.neighbors(v):
                if u in informed and u not in down:
                    rate += self._edge_rate(graph, u, v)
            if rate > 0:
                rate *= delivery
                rates[v] = rate
                total += rate
        return rates, total

    def _run_boundary(
        self,
        network: DynamicNetwork,
        source: Hashable,
        gen: np.random.Generator,
        limit: float,
        recorder: Optional[SnapshotRecorder],
    ) -> SpreadResult:
        network.reset(gen)
        informed = {source}
        informed_times: Dict[Hashable, float] = {source: 0.0}
        down = {node for node in network.nodes if self.faults.is_down(node, 0.0)}
        pending_crashes = sorted(
            (time, node)
            for node, time in self.faults.crash_times.items()
            if node not in self.faults.crashed_nodes and time > 0.0
        )
        delivery = self.faults.delivery_probability()

        tau = 0.0
        step = 0
        events = 0
        graph = network.graph_for_step(step, informed)
        if recorder is not None:
            recorder.record(network, step, graph, len(informed))
        rates, total_rate = self._build_rates(graph, informed, down)

        def targets_remaining() -> int:
            return sum(
                1 for node in network.nodes if node not in informed and node not in down
            )

        while targets_remaining() > 0 and tau < limit:
            next_boundary = float(step + 1)
            next_crash_time = pending_crashes[0][0] if pending_crashes else math.inf
            horizon = min(next_boundary, next_crash_time, limit)

            advance_to_horizon = True
            if total_rate > 1e-15:
                wait = gen.exponential(1.0 / total_rate)
                if tau + wait < horizon:
                    # An informing contact happens before any interruption.
                    tau += wait
                    events += 1
                    new_node = self._choose_weighted(rates, total_rate, gen)
                    informed.add(new_node)
                    informed_times[new_node] = tau
                    removed = rates.pop(new_node)
                    total_rate -= removed
                    if new_node in graph and new_node not in down:
                        for neighbour in graph.neighbors(new_node):
                            if neighbour in informed or neighbour in down:
                                continue
                            extra = self._edge_rate(graph, new_node, neighbour) * delivery
                            rates[neighbour] = rates.get(neighbour, 0.0) + extra
                            total_rate += extra
                    advance_to_horizon = False

            if advance_to_horizon:
                if horizon >= limit:
                    tau = limit
                    break
                tau = horizon
                if pending_crashes and math.isclose(horizon, next_crash_time):
                    crash_time, crashed = pending_crashes.pop(0)
                    down.add(crashed)
                    rates, total_rate = self._build_rates(graph, informed, down)
                else:
                    step += 1
                    previous_graph = graph
                    graph = network.graph_for_step(step, informed)
                    if recorder is not None:
                        recorder.record(network, step, graph, len(informed))
                    if graph is not previous_graph:
                        rates, total_rate = self._build_rates(graph, informed, down)

        completed = targets_remaining() == 0
        spread_time = max(informed_times.values()) if completed else math.inf
        return SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=network.n,
            steps_used=step + 1,
            source=source,
            synchronous=False,
            events=events,
        )

    @staticmethod
    def _choose_weighted(
        rates: Dict[Hashable, float], total_rate: float, gen: np.random.Generator
    ) -> Hashable:
        """Pick a key of ``rates`` with probability proportional to its value."""
        threshold = gen.random() * total_rate
        cumulative = 0.0
        last = None
        for node, rate in rates.items():
            cumulative += rate
            last = node
            if cumulative >= threshold:
                return node
        # Floating point drift can leave threshold marginally above the sum.
        return last

    # ------------------------------------------------------------------
    # naive engine
    # ------------------------------------------------------------------

    def _run_naive(
        self,
        network: DynamicNetwork,
        source: Hashable,
        gen: np.random.Generator,
        limit: float,
        recorder: Optional[SnapshotRecorder],
    ) -> SpreadResult:
        network.reset(gen)
        informed = {source}
        informed_times: Dict[Hashable, float] = {source: 0.0}
        nodes = list(network.nodes)
        n = len(nodes)
        per_node_rate = 2.0 if self.variant is Variant.TWO_PUSH else 1.0

        tau = 0.0
        step = 0
        events = 0
        graph = network.graph_for_step(step, informed)
        if recorder is not None:
            recorder.record(network, step, graph, len(informed))

        def down(node: Hashable, time: float) -> bool:
            return self.faults.is_down(node, time)

        def targets_remaining(time: float) -> int:
            return sum(1 for node in nodes if node not in informed and not down(node, time))

        while targets_remaining(tau) > 0 and tau < limit:
            total_rate = per_node_rate * n
            wait = gen.exponential(1.0 / total_rate)
            if tau + wait >= step + 1:
                tau = float(step + 1)
                if tau >= limit:
                    break
                step += 1
                graph = network.graph_for_step(step, informed)
                if recorder is not None:
                    recorder.record(network, step, graph, len(informed))
                continue
            tau += wait
            events += 1
            caller = nodes[int(gen.integers(0, n))]
            if down(caller, tau):
                continue
            neighbours = list(graph.neighbors(caller))
            if not neighbours:
                continue
            callee = neighbours[int(gen.integers(0, len(neighbours)))]
            if down(callee, tau):
                continue
            if self.faults.drop_probability > 0 and gen.random() < self.faults.drop_probability:
                continue
            self._exchange(caller, callee, informed, informed_times, tau)

        completed = targets_remaining(tau) == 0
        spread_time = max(informed_times.values()) if completed else math.inf
        return SpreadResult(
            spread_time=spread_time,
            informed_times=informed_times,
            completed=completed,
            n=network.n,
            steps_used=step + 1,
            source=source,
            synchronous=False,
            events=events,
        )

    def _exchange(
        self,
        caller: Hashable,
        callee: Hashable,
        informed: set,
        informed_times: Dict[Hashable, float],
        tau: float,
    ) -> None:
        """Apply one contact between ``caller`` and ``callee`` at time ``tau``."""
        caller_knows = caller in informed
        callee_knows = callee in informed
        if caller_knows == callee_knows:
            return
        if self.variant in (Variant.PUSH, Variant.TWO_PUSH):
            if caller_knows and not callee_knows:
                informed.add(callee)
                informed_times[callee] = tau
            return
        if self.variant is Variant.PULL:
            if callee_knows and not caller_knows:
                informed.add(caller)
                informed_times[caller] = tau
            return
        # push-pull: the rumor moves whichever direction is possible.
        newly = callee if caller_knows else caller
        informed.add(newly)
        informed_times[newly] = tau


__all__ = ["AsynchronousRumorSpreading", "default_time_limit"]
