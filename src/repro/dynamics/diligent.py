"""The Θ(ρ)-diligent lower-bound family ``G(n, ρ)`` of Theorem 1.2.

Construction (Section 4, "ρ-Diligent Dynamic Network G(n, ρ)"):

* ``Δ = ⌈1/ρ⌉`` and ``k = Θ(log n / log log n)``.
* ``G(0) = H_{k,Δ}(A₀, B₀)`` with ``|A₀| = n/4`` and ``|B₀| = 3n/4``; the rumor
  starts at a node of ``A₀``.
* At every step boundary ``t + 1`` the adversary removes the freshly informed
  nodes from the ``B`` side: ``B_{t+1} = B_t \\ I_{t+1}`` and
  ``A_{t+1} = V \\ B_{t+1}``.  If ``|B_{t+1}| ≥ n/4`` and the ``B`` side
  actually shrank, the snapshot is rebuilt as ``H_{k,Δ}(A_{t+1}, B_{t+1})``;
  otherwise the previous snapshot is kept.

Intuitively the adversary keeps re-drawing the ``k``-hop bipartite bottleneck
between the informed territory and the uninformed territory, so the rumor must
cross the full chain over and over; Lemma 4.2 shows one unit of time almost
never suffices to cross it, giving the ``Ω(nρ/k)`` lower bound.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence

import networkx as nx

from repro.dynamics.base import DynamicNetwork
from repro.graphs.hk_delta import HkDeltaGraph, build_hk_delta, minimum_side_sizes
from repro.graphs.metrics import GraphMetrics
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count


def default_chain_length(n: int) -> int:
    """Return the paper's choice ``k = Θ(log n / log log n)`` (at least 1)."""
    require_node_count(n, minimum=3)
    if n < 8:
        return 1
    return max(1, round(math.log(n) / math.log(math.log(n))))


class DiligentDynamicNetwork(DynamicNetwork):
    """The adaptive dynamic network ``G(n, ρ)`` of Theorem 1.2.

    Parameters
    ----------
    n:
        Total number of nodes.
    rho:
        Target diligence ``ρ ∈ [1/√n, 1]``; the cluster size is ``Δ = ⌈1/ρ⌉``.
    k:
        Chain length; defaults to ``Θ(log n / log log n)``.
    rng:
        Seed / generator for the expander components.  ``reset`` re-derives a
        per-run generator so independent trials see independent expanders.
    """

    def __init__(
        self,
        n: int,
        rho: float,
        k: Optional[int] = None,
        rng: RngLike = None,
    ):
        require_node_count(n, minimum=40)
        require(0 < rho <= 1, f"rho must lie in (0, 1], got {rho}")
        delta = math.ceil(1.0 / rho)
        k = default_chain_length(n) if k is None else k
        require_node_count(k, minimum=1, name="k")
        min_a, min_b = minimum_side_sizes(k, delta)
        size_a = n // 4
        size_b = n - size_a
        require(
            size_a >= min_a and size_b >= min_b,
            f"n = {n} is too small for rho = {rho} and k = {k}: the construction needs "
            f"|A| >= {min_a} and |B| >= {min_b} but has |A| = {size_a}, |B| = {size_b}. "
            "Increase n, increase rho, or decrease k.",
        )
        super().__init__(list(range(n)))
        self.rho = rho
        self.delta = delta
        self.k = k
        self._size_a0 = size_a
        self._base_rng = ensure_rng(rng)
        self._run_rng = None
        self._part_b: Optional[frozenset] = None
        self._current: Optional[HkDeltaGraph] = None

    # -- construction ---------------------------------------------------------

    def default_source(self) -> Hashable:
        """A node of the ``A₀``-side expander (outside the cluster chain)."""
        return self.delta  # nodes 0..delta-1 form S_0; node `delta` is in the expander

    def _on_reset(self, rng) -> None:
        self._run_rng = rng
        self._part_b = frozenset(range(self._size_a0, self.n))
        self._current = None

    def _rebuild(self, part_b: frozenset) -> HkDeltaGraph:
        part_a = [u for u in self.nodes if u not in part_b]
        return build_hk_delta(
            part_a=part_a,
            part_b=sorted(part_b),
            k=self.k,
            delta=self.delta,
            rng=self._run_rng,
        )

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        if t == 0 or self._current is None:
            self._current = self._rebuild(self._part_b)
            return self._current.graph
        new_b = self._part_b - informed
        min_a, min_b = minimum_side_sizes(self.k, self.delta)
        shrank = len(new_b) < len(self._part_b)
        big_enough = len(new_b) >= max(self.n // 4, min_b)
        if shrank and big_enough:
            self._part_b = new_b
            self._current = self._rebuild(new_b)
        return self._current.graph

    # -- analytic metrics ------------------------------------------------------

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        """Observation 4.1 values for the current snapshot (Θ-level)."""
        if self._current is None:
            return None
        snapshot = self._current
        return GraphMetrics(
            conductance=snapshot.analytic_conductance(),
            diligence=snapshot.analytic_diligence(),
            absolute_diligence=snapshot.analytic_absolute_diligence(),
            connected=True,
            n=self.n,
            exact=False,
        )

    # -- theoretical predictions ------------------------------------------------

    def predicted_lower_bound(self) -> float:
        """The Theorem 1.2 lower bound ``n / (4 k ⌈1/ρ⌉)`` on the spread time."""
        return self.n / (4.0 * self.k * self.delta)

    def predicted_upper_bound(self, log_factor: float = 1.0) -> float:
        """The Theorem 1.1 upper bound ``O((ρn + k/ρ) log n)`` for this family."""
        n = self.n
        return log_factor * (self.rho * n + self.k / self.rho) * math.log(n)


__all__ = ["DiligentDynamicNetwork", "default_chain_length"]
