"""Mobile-agent proximity networks (Pettarin et al. / Lam et al. baselines).

The related work of the paper (Section 1.2) considers information
dissemination among mobile agents performing independent random walks on a
2-dimensional grid, where two agents can communicate whenever they are within
a fixed transmission radius.  We model this directly: the dynamic network's
nodes are the agents, and snapshot ``t`` connects every pair of agents whose
Chebyshev (or Manhattan) distance on the grid is at most ``radius`` after the
``t``-th simultaneous random-walk step.

Snapshots may be disconnected — this is the main practical difference from
the adversarial constructions, and it exercises the ``⌈Φ⌉`` indicator of
Theorem 1.3 (disconnected steps contribute nothing to the bound's budget).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.dynamics.base import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count, require_positive

#: The four axis-aligned moves plus "stay put" (lazy walk keeps the chain aperiodic).
_MOVES = np.array([(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)], dtype=np.int64)


class MobileAgentsNetwork(DynamicNetwork):
    """Agents performing lazy random walks on a ``side × side`` torus/grid.

    Parameters
    ----------
    agents:
        Number of agents (= nodes of the dynamic network).
    side:
        Side length of the square grid.
    radius:
        Communication radius: agents at Chebyshev distance at most ``radius``
        are joined by an edge in the snapshot.
    torus:
        If True (default) the grid wraps around; otherwise walks reflect at
        the boundary.
    rng:
        Seed / generator for initial placement and the walks.
    """

    def __init__(
        self,
        agents: int,
        side: int,
        radius: int = 1,
        torus: bool = True,
        rng: RngLike = None,
    ):
        require_node_count(agents, minimum=2, name="agents")
        require_node_count(side, minimum=2, name="side")
        require_node_count(radius, minimum=0, name="radius")
        super().__init__(list(range(agents)))
        self.side = side
        self.radius = radius
        self.torus = torus
        self._base_rng = ensure_rng(rng)
        self._run_rng = None
        self._positions: Optional[np.ndarray] = None

    def _on_reset(self, rng) -> None:
        self._run_rng = rng
        self._positions = rng.integers(0, self.side, size=(self.n, 2))

    def positions(self) -> np.ndarray:
        """Return a copy of the current agent positions (``n × 2`` array)."""
        require(self._positions is not None, "call reset() before reading positions")
        return self._positions.copy()

    def _step_walk(self) -> None:
        moves = _MOVES[self._run_rng.integers(0, len(_MOVES), size=self.n)]
        new_positions = self._positions + moves
        if self.torus:
            new_positions %= self.side
        else:
            new_positions = np.clip(new_positions, 0, self.side - 1)
        self._positions = new_positions

    def _proximity_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        positions = self._positions
        # Bucket agents by cell, then only compare agents in nearby buckets.
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for agent in range(self.n):
            cell = (int(positions[agent, 0]), int(positions[agent, 1]))
            buckets.setdefault(cell, []).append(agent)
        radius = self.radius
        for (x, y), members in buckets.items():
            for dx in range(-radius, radius + 1):
                for dy in range(-radius, radius + 1):
                    if self.torus:
                        other_cell = ((x + dx) % self.side, (y + dy) % self.side)
                    else:
                        other_cell = (x + dx, y + dy)
                    if other_cell not in buckets:
                        continue
                    for a in members:
                        for b in buckets[other_cell]:
                            if a < b:
                                graph.add_edge(a, b)
        return graph

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        require(self._positions is not None, "call reset() before requesting snapshots")
        if t > 0:
            self._step_walk()
        return self._proximity_graph()


__all__ = ["MobileAgentsNetwork"]
