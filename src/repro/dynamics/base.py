"""The dynamic evolving network interface.

A *dynamic evolving network* is a sequence of simple graphs over a fixed node
set, one exposed per discrete time step ``t = 0, 1, ...`` (Definition 1 of the
paper).  Crucially, the adversary producing snapshot ``G(t)`` may look at the
set of informed nodes at the beginning of step ``t`` — the paper's lower-bound
constructions (Sections 4, 5.1 and 6) all do.  The interface therefore hands
the informed set to :meth:`DynamicNetwork.graph_for_step`.

Simulators drive a network like this::

    network.reset(rng)
    g0 = network.graph_for_step(0, informed)
    ... simulate continuous time in [0, 1) on g0 ...
    g1 = network.graph_for_step(1, informed)
    ... and so on ...

``reset`` must be called before each independent run; ``graph_for_step`` must
be called with strictly increasing ``t`` within a run (adaptive constructions
keep per-run state such as "re-use the previous snapshot").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.graphs.csr import CsrSnapshot
from repro.graphs.metrics import GraphMetrics, absolute_diligence, measure_graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require


class DynamicNetwork(ABC):
    """Abstract base class for dynamic evolving networks.

    Subclasses must implement :meth:`_build_step`; the base class enforces the
    call protocol (reset before use, non-decreasing time steps) and offers
    optional analytic metrics for the bounds of Theorems 1.1 and 1.3.
    """

    def __init__(self, nodes: Sequence[Hashable]):
        nodes = tuple(nodes)
        require(len(nodes) >= 1, "a dynamic network needs at least one node")
        node_set = frozenset(nodes)
        require(len(node_set) == len(nodes), "node labels must be distinct")
        self._nodes: Tuple[Hashable, ...] = nodes
        self._node_set: FrozenSet[Hashable] = node_set
        self._last_step: Optional[int] = None
        self._was_reset = False
        # One-entry cache for the default nx -> CSR snapshot adapter.
        self._adapter_graph: Optional[nx.Graph] = None
        self._adapter_snapshot: Optional[CsrSnapshot] = None

    # -- structure ---------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """The fixed node set shared by every snapshot."""
        return self._nodes

    @property
    def node_set(self) -> FrozenSet[Hashable]:
        """The node labels as a cached frozenset (for O(1) membership tests)."""
        return self._node_set

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def default_source(self) -> Hashable:
        """The node the construction intends to start the rumor at.

        Defaults to the first node; lower-bound constructions override this
        (e.g. the pendant node of ``G1``, a leaf of the dynamic star, a node
        of part ``A`` for the Theorem 1.2 family).
        """
        return self._nodes[0]

    # -- run protocol ------------------------------------------------------

    def reset(self, rng: RngLike = None) -> None:
        """Prepare the network for a fresh, independent run."""
        self._last_step = None
        self._was_reset = True
        self._on_reset(ensure_rng(rng))

    def _on_reset(self, rng) -> None:
        """Hook for subclasses to clear per-run state; default does nothing."""

    def _advance_step(self, t: int) -> None:
        """Enforce the snapshot call protocol (reset first, increasing ``t``)."""
        require(self._was_reset, "call reset() before requesting snapshots")
        require(isinstance(t, int) and t >= 0, f"t must be a non-negative integer, got {t!r}")
        if self._last_step is not None:
            require(
                t > self._last_step,
                f"graph_for_step must be called with increasing t "
                f"(got {t} after {self._last_step})",
            )
        self._last_step = t

    def graph_for_step(self, t: int, informed: AbstractSet[Hashable]) -> nx.Graph:
        """Return the snapshot ``G(t)`` governing the interval ``[t, t+1)``.

        ``informed`` is the set of informed nodes at the beginning of step
        ``t``; oblivious networks ignore it, adaptive ones may not.
        """
        self._advance_step(t)
        graph = self._build_step(t, frozenset(informed))
        self._check_snapshot(graph)
        return graph

    def snapshot_for_step(self, t: int, informed: AbstractSet[Hashable]) -> CsrSnapshot:
        """Return snapshot ``G(t)`` as a :class:`CsrSnapshot` (engine fast path).

        Compact ids follow :attr:`nodes` order, so they are stable across all
        snapshots of a run.  The default implementation adapts
        :meth:`_build_step`'s networkx output; constructions with an obvious
        array form override :meth:`_build_snapshot_step` to emit CSR directly
        and never materialise a dict-of-dict graph on the hot path.
        """
        self._advance_step(t)
        snapshot = self._build_snapshot_step(t, frozenset(informed))
        # Engines index per-node state by position in self._nodes, so the
        # snapshot's node order (not just its count) must match exactly.
        require(
            snapshot.nodes is self._nodes or snapshot.nodes == self._nodes,
            "snapshot node order differs from the dynamic network's node tuple",
        )
        return snapshot

    @abstractmethod
    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        """Build (or retrieve) the snapshot for step ``t``."""

    def _build_snapshot_step(self, t: int, informed: frozenset) -> CsrSnapshot:
        """Build the CSR snapshot for step ``t`` (default: adapt ``_build_step``).

        The adapter caches the last conversion keyed by graph identity, so
        networks that return the same graph object across steps (static and
        explicit-sequence networks) pay the conversion once, and the engines'
        ``snapshot is previous_snapshot`` rebuild-elision keeps working.
        """
        graph = self._build_step(t, informed)
        if graph is not None and graph is self._adapter_graph:
            return self._adapter_snapshot
        self._check_snapshot(graph)
        snapshot = CsrSnapshot.from_networkx(graph, nodes=self._nodes)
        self._adapter_graph = graph
        self._adapter_snapshot = snapshot
        return snapshot

    def _check_snapshot(self, graph: nx.Graph) -> None:
        require(
            graph.number_of_nodes() == self.n and self._node_set.issuperset(graph.nodes()),
            "snapshot node set differs from the dynamic network's node set",
        )

    # -- analytic metrics ----------------------------------------------------

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        """Analytic ``(Φ, ρ, ρ̄)`` of snapshot ``t``, if the construction knows them.

        Returns ``None`` when no closed form is available, in which case the
        bounds fall back to measuring the recorded snapshots.
        """
        return None


@dataclass(frozen=True)
class RecordedStep:
    """One snapshot observed during a run, with its measured metrics."""

    t: int
    metrics: GraphMetrics
    informed_count: int


class SnapshotRecorder:
    """Records per-step metrics of the snapshots a simulator actually used.

    The upper bounds ``T(G, c)`` and ``T_abs(G)`` are defined on the realised
    sequence of snapshots; for adaptive constructions that sequence depends on
    the run.  Simulators accept an optional recorder and feed it every
    snapshot, so bound evaluation can be done post hoc on exactly the graphs
    the rumor traversed.
    """

    #: Accepted measurement modes: "full" computes conductance and diligence
    #: (exact or estimated) for snapshots without analytic metrics; "cheap"
    #: only computes connectivity and absolute diligence (sufficient for the
    #: Theorem 1.3 bound and orders of magnitude faster on large snapshots).
    MODES = ("full", "cheap")

    def __init__(
        self,
        mode: str = "full",
        prefer_known: bool = True,
        sampled_cuts: int = 100,
        track_degrees: bool = True,
        rng: RngLike = None,
    ):
        require(mode in self.MODES, f"mode must be one of {self.MODES}, got {mode!r}")
        self._mode = mode
        self._prefer_known = prefer_known
        self._sampled_cuts = sampled_cuts
        self._track_degrees = track_degrees
        self._rng = ensure_rng(rng)
        self.steps: List[RecordedStep] = []
        self.degree_history: Dict[Hashable, List[int]] = {}

    def record(
        self,
        network: DynamicNetwork,
        t: int,
        graph: Union[nx.Graph, CsrSnapshot],
        informed_count: int,
    ) -> None:
        """Record snapshot ``graph`` used at step ``t``.

        Accepts either representation a simulator may be driving: a networkx
        graph or a :class:`CsrSnapshot`.  CSR snapshots are measured with the
        array-native cheap metrics and only converted to networkx when the
        "full" mode needs conductance / diligence estimation.
        """
        snapshot = graph if isinstance(graph, CsrSnapshot) else None
        metrics: Optional[GraphMetrics] = None
        if self._prefer_known:
            metrics = network.known_step_metrics(t)
        if metrics is None and self._mode == "full":
            nx_graph = snapshot.to_networkx() if snapshot is not None else graph
            metrics = measure_graph(nx_graph, sampled_cuts=self._sampled_cuts, rng=self._rng)
        if metrics is None:
            # Cheap record: only the quantities Theorem 1.3 needs.
            if snapshot is not None:
                connected = snapshot.is_connected()
                rho_abs = snapshot.absolute_diligence()
                n = snapshot.n
            else:
                connected = graph.number_of_edges() > 0 and nx.is_connected(graph)
                rho_abs = absolute_diligence(graph)
                n = graph.number_of_nodes()
            metrics = GraphMetrics(
                conductance=float("nan"),
                diligence=float("nan"),
                absolute_diligence=rho_abs,
                connected=connected,
                n=n,
                exact=False,
            )
        self.steps.append(RecordedStep(t=t, metrics=metrics, informed_count=informed_count))
        if self._track_degrees:
            if snapshot is not None:
                for node, degree in zip(snapshot.nodes, snapshot.degrees):
                    self.degree_history.setdefault(node, []).append(int(degree))
            else:
                for node in graph.nodes():
                    self.degree_history.setdefault(node, []).append(graph.degree(node))

    def conductance_series(self) -> List[float]:
        """Per-step conductance values in step order."""
        return [step.metrics.conductance for step in self.steps]

    def diligence_series(self) -> List[float]:
        """Per-step diligence values in step order."""
        return [step.metrics.diligence for step in self.steps]

    def absolute_diligence_series(self) -> List[float]:
        """Per-step absolute diligence values in step order."""
        return [step.metrics.absolute_diligence for step in self.steps]

    def connectivity_series(self) -> List[int]:
        """Per-step ``⌈Φ⌉`` indicators (1 when connected, else 0)."""
        return [step.metrics.conductance_indicator() for step in self.steps]


__all__ = ["DynamicNetwork", "RecordedStep", "SnapshotRecorder"]
