"""Edge-Markovian evolving graphs (Clementi et al., related work baseline).

In the edge-Markovian model each potential edge evolves as an independent
two-state Markov chain: a non-edge is *born* with probability ``p`` at each
step and an existing edge *dies* with probability ``q``.  The paper's related
work (Section 1.2) cites the result that the push algorithm finishes in
``O(log n)`` rounds when ``p = Ω(1/n)`` and ``q`` is constant; we include the
model as a realistic random dynamic substrate for exercising Theorem 1.1's
bound on networks that are neither static nor adversarial.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.dynamics.base import DynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.graphs.generators import condensed_to_pair, pair_to_condensed
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count, require_probability


class EdgeMarkovianNetwork(DynamicNetwork):
    """A dynamic network whose edges flip on and off as independent Markov chains.

    Parameters
    ----------
    n:
        Number of nodes (labelled ``0..n-1``).
    birth_probability:
        Probability ``p`` that a currently absent edge appears at the next step.
    death_probability:
        Probability ``q`` that a currently present edge disappears at the next
        step.
    initial_graph:
        Snapshot at ``t = 0``.  Defaults to a sample from the stationary
        distribution, an Erdős–Rényi graph with edge probability
        ``p / (p + q)``.
    rng:
        Seed / generator.  ``reset`` derives a per-run generator, so repeated
        runs see independent trajectories unless seeded explicitly.
    """

    def __init__(
        self,
        n: int,
        birth_probability: float,
        death_probability: float,
        initial_graph: Optional[nx.Graph] = None,
        rng: RngLike = None,
    ):
        require_node_count(n, minimum=2)
        require_probability(birth_probability, "birth_probability")
        require_probability(death_probability, "death_probability")
        require(
            birth_probability + death_probability > 0,
            "birth_probability and death_probability cannot both be zero",
        )
        super().__init__(list(range(n)))
        self.birth_probability = birth_probability
        self.death_probability = death_probability
        self._initial_graph = None
        if initial_graph is not None:
            require(
                set(initial_graph.nodes()) == set(self.nodes),
                "initial_graph must be on nodes 0..n-1",
            )
            self._initial_graph = initial_graph.copy()
        self._base_rng = ensure_rng(rng)
        self._run_rng = None
        self._current: Optional[nx.Graph] = None
        # Condensed upper-triangle edge state for the vectorised CSR fast path.
        self._edge_state: Optional[np.ndarray] = None

    def stationary_edge_probability(self) -> float:
        """Return the stationary probability ``p / (p + q)`` of an edge existing."""
        return self.birth_probability / (self.birth_probability + self.death_probability)

    def _on_reset(self, rng) -> None:
        self._run_rng = rng
        self._current = None
        self._edge_state = None

    def _sample_initial(self) -> nx.Graph:
        if self._initial_graph is not None:
            return self._initial_graph.copy()
        probability = self.stationary_edge_probability()
        seed = int(self._run_rng.integers(0, 2**32 - 1))
        graph = nx.gnp_random_graph(self.n, probability, seed=seed)
        return graph

    def _evolve(self, graph: nx.Graph) -> nx.Graph:
        nxt = nx.Graph()
        nxt.add_nodes_from(self.nodes)
        nodes = list(self.nodes)
        rng = self._run_rng
        p = self.birth_probability
        q = self.death_probability
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if graph.has_edge(u, v):
                    if rng.random() >= q:
                        nxt.add_edge(u, v)
                else:
                    if rng.random() < p:
                        nxt.add_edge(u, v)
        return nxt

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        if t == 0 or self._current is None:
            self._current = self._sample_initial()
        else:
            self._current = self._evolve(self._current)
        return self._current

    # -- CSR fast path -----------------------------------------------------

    def _initial_edge_state(self) -> np.ndarray:
        """Condensed (upper-triangle) boolean edge state for ``t = 0``."""
        pair_count = self.n * (self.n - 1) // 2
        if self._initial_graph is not None:
            state = np.zeros(pair_count, dtype=bool)
            if self._initial_graph.number_of_edges():
                endpoints = np.array(
                    [sorted((u, v)) for u, v in self._initial_graph.edges()], dtype=np.int64
                )
                state[pair_to_condensed(endpoints[:, 0], endpoints[:, 1], self.n)] = True
            return state
        return self._run_rng.random(pair_count) < self.stationary_edge_probability()

    def _build_snapshot_step(self, t: int, informed: frozenset) -> CsrSnapshot:
        """Evolve every potential edge's Markov chain in one vectorised sweep.

        The chain is kept as a condensed boolean vector over the ``n(n-1)/2``
        node pairs; one uniform draw per pair decides survival (``r ≥ q``) or
        birth (``r < p``), exactly the per-pair law of :meth:`_evolve` without
        the O(n²) Python loop, and the snapshot is emitted directly in CSR.
        """
        if t == 0 or self._edge_state is None:
            self._edge_state = self._initial_edge_state()
        else:
            draws = self._run_rng.random(len(self._edge_state))
            self._edge_state = np.where(
                self._edge_state,
                draws >= self.death_probability,
                draws < self.birth_probability,
            )
        live = np.nonzero(self._edge_state)[0]
        u_ids, v_ids = condensed_to_pair(live, self.n)
        return CsrSnapshot.from_edge_arrays(self.nodes, u_ids, v_ids)


__all__ = ["EdgeMarkovianNetwork"]
