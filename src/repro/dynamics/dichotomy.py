"""The dichotomy networks ``G1`` and ``G2`` of Figure 1 / Theorem 1.7.

``G1`` (Figure 1(a), oblivious):
    ``G(0)`` is an ``n``-node clique ``{1..n}`` with a pendant edge to node
    ``n+1``, which holds the rumor.  Every later snapshot is two equally-sized
    cliques joined by the bridge ``{1, n+1}``, with node 1 in the left clique
    and node ``n+1`` in the right clique.  The asynchronous algorithm misses
    the one-unit window to cross the pendant edge with constant probability
    and then needs ``Ω(n)`` time to cross the bridge, while the synchronous
    algorithm crosses the pendant edge deterministically in round 1 and
    finishes in ``Θ(log n)`` rounds.

``G2`` (Figure 1(b), adaptive):
    Every snapshot is a star on ``n+1`` nodes; the centre of snapshot ``t+1``
    is chosen to be an *uninformed* node (an arbitrary node when none remain).
    The synchronous algorithm informs exactly one node per round (the centre,
    which is immediately rotated out), so ``Ts(G2) = n``; the asynchronous
    algorithm finishes in ``Θ(log n)`` time, and Theorem 1.7(iii) gives the
    quantitative tail ``Pr[spread > 2k] ≤ e^{-k/2-o(1)} + e^{-k-o(1)}``.
"""

from __future__ import annotations

from typing import Hashable, Optional

import networkx as nx

from repro.dynamics.base import DynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.graphs.generators import (
    bridged_double_clique,
    bridged_double_clique_csr,
    clique_with_pendant,
    clique_with_pendant_csr,
    dynamic_star_csr,
    dynamic_star_graph,
)
from repro.graphs.metrics import GraphMetrics
from repro.utils.validation import require_node_count


class CliqueBridgeNetwork(DynamicNetwork):
    """``G1``: clique with a pendant rumor holder, then two bridged cliques.

    Nodes are labelled ``1..n+1``; the pendant / bridge endpoint carrying the
    rumor is node ``n+1`` and its only neighbour is node ``1``.
    """

    def __init__(self, n: int):
        require_node_count(n, minimum=4)
        self._clique_size = n
        super().__init__(list(range(1, n + 2)))
        self._initial = clique_with_pendant(n)
        self._later = bridged_double_clique(n)
        self._initial_csr: Optional[CsrSnapshot] = None
        self._later_csr: Optional[CsrSnapshot] = None

    def default_source(self) -> Hashable:
        """The pendant node ``n + 1`` (the square node of Figure 1(a))."""
        return self._clique_size + 1

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        return self._initial if t == 0 else self._later

    def _build_snapshot_step(self, t: int, informed: frozenset) -> CsrSnapshot:
        # Both snapshots are clique assemblies with an obvious array form;
        # built lazily once, then reused so engines skip rate rebuilds.
        if t == 0:
            if self._initial_csr is None:
                self._initial_csr = clique_with_pendant_csr(self._clique_size)
            return self._initial_csr
        if self._later_csr is None:
            self._later_csr = bridged_double_clique_csr(self._clique_size)
        return self._later_csr

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        n = self._clique_size
        if t == 0:
            # Clique plus pendant: the sparsest cut is a balanced clique split
            # (Θ(1) conductance); the pendant edge fixes ρ̄ = 1.
            return GraphMetrics(
                conductance=0.5,
                diligence=1.0,
                absolute_diligence=1.0,
                connected=True,
                n=n + 1,
                exact=False,
            )
        # Two bridged cliques: the bridge cut has one edge against volume Θ(n²).
        half = (n + 1) // 2
        return GraphMetrics(
            conductance=1.0 / (half * (half - 1)),
            diligence=2.0 / half,
            absolute_diligence=2.0 / (n + 1),
            connected=True,
            n=n + 1,
            exact=False,
        )


class DynamicStarNetwork(DynamicNetwork):
    """``G2``: the adaptive dynamic star of Figure 1(b).

    Nodes are labelled ``0..n``; snapshot 0 is centred at node 0 and the rumor
    starts at leaf node 1.  The centre of every later snapshot is an
    uninformed node when one exists (the lowest-labelled one by default, or a
    uniformly random one when ``randomize=True``), otherwise a random node.
    """

    def __init__(self, n: int, randomize: bool = True):
        require_node_count(n, minimum=2)
        self._leaves = n
        self._randomize = randomize
        super().__init__(list(range(n + 1)))
        self._run_rng = None
        self._last_center: Optional[int] = None

    def default_source(self) -> Hashable:
        """Leaf node 1 (snapshot 0 is centred at node 0)."""
        return 1

    def _on_reset(self, rng) -> None:
        self._run_rng = rng
        self._last_center = None

    def _pick_center(self, informed: frozenset) -> int:
        uninformed = [u for u in self.nodes if u not in informed]
        if uninformed:
            if self._randomize and self._run_rng is not None:
                return int(self._run_rng.choice(uninformed))
            return uninformed[0]
        candidates = [u for u in self.nodes if u != self._last_center]
        if self._randomize and self._run_rng is not None:
            return int(self._run_rng.choice(candidates))
        return candidates[0]

    def _center_for(self, t: int, informed: frozenset) -> int:
        center = 0 if t == 0 else self._pick_center(informed)
        self._last_center = center
        return center

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        return dynamic_star_graph(self._leaves + 1, self._center_for(t, informed))

    def _build_snapshot_step(self, t: int, informed: frozenset) -> CsrSnapshot:
        # Same centre-selection logic (and RNG draws) as the networkx path,
        # but the star snapshot is emitted directly in CSR form.
        return dynamic_star_csr(self._leaves + 1, self._center_for(t, informed))

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        # Every snapshot is a star: Φ = 1, ρ = 1 and ρ̄ = 1 (the paper notes a
        # sequence of stars is 1-diligent and absolutely 1-diligent).
        return GraphMetrics(
            conductance=1.0,
            diligence=1.0,
            absolute_diligence=1.0,
            connected=True,
            n=self._leaves + 1,
            exact=True,
        )


__all__ = ["CliqueBridgeNetwork", "DynamicStarNetwork"]
