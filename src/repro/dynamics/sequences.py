"""Oblivious dynamic networks built from pre-specified snapshots.

These are the simplest instances of the model: the snapshot at step ``t`` does
not depend on the informed set.  They cover

* a static graph viewed as a dynamic network (every snapshot identical) —
  the setting of the classical static results the paper compares against;
* an explicit finite sequence of snapshots, either held at the last graph or
  cycled;
* a periodic alternation of snapshots (used by the Section 1.2 example where
  3-regular graphs alternate with complete graphs);
* an arbitrary callable ``t -> graph`` for bespoke oblivious adversaries.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Union

import networkx as nx

from repro.dynamics.base import DynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.graphs.metrics import GraphMetrics, measure_graph
from repro.utils.validation import require


class StaticDynamicNetwork(DynamicNetwork):
    """A static graph exposed at every time step.

    Accepts either a ``networkx.Graph`` or a :class:`CsrSnapshot` (so the
    CSR-native generators feed the engines without ever building a
    dict-of-dict graph); the other representation is derived lazily on first
    use.  Precomputes the snapshot metrics once (they never change), so bound
    evaluation on small static-as-dynamic networks is cheap.
    """

    def __init__(
        self,
        graph: Union[nx.Graph, CsrSnapshot],
        precompute_metrics: bool = True,
        metrics: Optional[GraphMetrics] = None,
    ):
        if isinstance(graph, CsrSnapshot):
            require(graph.n >= 1, "graph must have at least one node")
            super().__init__(graph.nodes)
            self._graph: Optional[nx.Graph] = None
            self._snapshot: Optional[CsrSnapshot] = graph
            self._metrics: Optional[GraphMetrics] = metrics
            return
        require(graph.number_of_nodes() >= 1, "graph must have at least one node")
        super().__init__(list(graph.nodes()))
        self._graph = graph.copy()
        self._snapshot = None
        self._metrics = metrics
        if metrics is None and precompute_metrics and graph.number_of_nodes() <= 18:
            self._metrics = measure_graph(graph)

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        return self.graph

    def _build_snapshot_step(self, t: int, informed: frozenset) -> CsrSnapshot:
        return self.materialise()

    def materialise(self) -> CsrSnapshot:
        """Convert to CSR now (idempotent) and return the cached snapshot.

        The cache is identity-keyed on this network object and survives
        ``reset``, so converting once in a parent process before forking
        means every worker inherits the adapter through copy-on-write
        instead of re-deriving it per sub-batch.
        """
        if self._snapshot is None:
            self._snapshot = CsrSnapshot.from_networkx(self._graph, nodes=self._nodes)
        return self._snapshot

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        return self._metrics

    @property
    def graph(self) -> nx.Graph:
        """The underlying static graph (shared, do not mutate)."""
        if self._graph is None:
            self._graph = self._snapshot.to_networkx()
        return self._graph


class ExplicitSequenceNetwork(DynamicNetwork):
    """A dynamic network given by an explicit list of snapshots.

    After the list is exhausted the network either holds the last snapshot
    (``cycle=False``, the default — matching the paper's constructions where
    ``G(t) = G(1)`` for all ``t ≥ 1``) or cycles through the list again
    (``cycle=True``).
    """

    def __init__(
        self,
        graphs: Sequence[nx.Graph],
        cycle: bool = False,
        metrics: Optional[Sequence[Optional[GraphMetrics]]] = None,
    ):
        graphs = list(graphs)
        require(len(graphs) >= 1, "need at least one snapshot")
        node_set = set(graphs[0].nodes())
        for index, graph in enumerate(graphs):
            require(
                set(graph.nodes()) == node_set,
                f"snapshot {index} has a different node set from snapshot 0",
            )
        super().__init__(list(graphs[0].nodes()))
        self._graphs = [g.copy() for g in graphs]
        self._snapshots: List[Optional[CsrSnapshot]] = [None] * len(graphs)
        self._cycle = cycle
        if metrics is not None:
            require(len(metrics) == len(graphs), "metrics must align with graphs")
            self._metrics = list(metrics)
        else:
            self._metrics = [None] * len(graphs)

    def _index_for(self, t: int) -> int:
        if t < len(self._graphs):
            return t
        if self._cycle:
            return t % len(self._graphs)
        return len(self._graphs) - 1

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        return self._graphs[self._index_for(t)]

    def _build_snapshot_step(self, t: int, informed: frozenset) -> CsrSnapshot:
        # Per-index cache so periodic alternations keep snapshot identity
        # stable (the engines skip rate rebuilds on identical snapshots).
        index = self._index_for(t)
        if self._snapshots[index] is None:
            self._snapshots[index] = CsrSnapshot.from_networkx(
                self._graphs[index], nodes=self._nodes
            )
        return self._snapshots[index]

    def known_step_metrics(self, t: int):
        return self._metrics[self._index_for(t)]


class PeriodicSequenceNetwork(ExplicitSequenceNetwork):
    """A dynamic network cycling through a fixed list of snapshots forever."""

    def __init__(self, graphs: Sequence[nx.Graph], metrics=None):
        super().__init__(graphs, cycle=True, metrics=metrics)


class CallableDynamicNetwork(DynamicNetwork):
    """A dynamic network defined by an arbitrary oblivious function of ``t``.

    ``builder(t)`` must return a graph on exactly the declared node set.  An
    optional ``metrics(t)`` callable can supply analytic per-step metrics.
    """

    def __init__(
        self,
        nodes: Sequence[Hashable],
        builder: Callable[[int], nx.Graph],
        metrics: Optional[Callable[[int], Optional[GraphMetrics]]] = None,
    ):
        super().__init__(nodes)
        self._builder = builder
        self._metrics_fn = metrics

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        return self._builder(t)

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        if self._metrics_fn is None:
            return None
        return self._metrics_fn(t)


__all__ = [
    "CallableDynamicNetwork",
    "ExplicitSequenceNetwork",
    "PeriodicSequenceNetwork",
    "StaticDynamicNetwork",
]
