"""Dynamic evolving networks ``G = {G(t)}_{t≥0}``.

The paper's model exposes an arbitrary graph on a fixed node set at every
discrete time step; the rumor propagates in continuous time in between.  The
adversary choosing ``G(t+1)`` may be *adaptive* — the constructions of
Theorems 1.2, 1.5 and 1.7(ii) inspect the informed set at the step boundary —
so the interface hands the current informed set to the network.

Contents:

* :mod:`repro.dynamics.base` — the :class:`DynamicNetwork` interface and the
  snapshot-recording machinery used by the bounds.
* :mod:`repro.dynamics.sequences` — oblivious networks: a static graph viewed
  as dynamic, explicit finite sequences, periodic alternation, callables.
* :mod:`repro.dynamics.diligent` — the Θ(ρ)-diligent family of Theorem 1.2.
* :mod:`repro.dynamics.absolute_diligent` — the absolutely Θ(ρ)-diligent
  family of Theorem 1.5.
* :mod:`repro.dynamics.dichotomy` — ``G1`` and ``G2`` of Figure 1 /
  Theorem 1.7.
* :mod:`repro.dynamics.edge_markovian` — the edge-Markovian evolving graphs of
  Clementi et al. (related work baseline).
* :mod:`repro.dynamics.mobile_agents` — random-walk mobile agents on a grid
  with proximity-based communication (related work baseline).
"""

from repro.dynamics.base import DynamicNetwork, RecordedStep, SnapshotRecorder
from repro.dynamics.sequences import (
    CallableDynamicNetwork,
    ExplicitSequenceNetwork,
    PeriodicSequenceNetwork,
    StaticDynamicNetwork,
)
from repro.dynamics.diligent import DiligentDynamicNetwork
from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.dynamics.mobile_agents import MobileAgentsNetwork

__all__ = [
    "DynamicNetwork",
    "RecordedStep",
    "SnapshotRecorder",
    "CallableDynamicNetwork",
    "ExplicitSequenceNetwork",
    "PeriodicSequenceNetwork",
    "StaticDynamicNetwork",
    "DiligentDynamicNetwork",
    "AbsolutelyDiligentNetwork",
    "CliqueBridgeNetwork",
    "DynamicStarNetwork",
    "EdgeMarkovianNetwork",
    "MobileAgentsNetwork",
]
