"""The absolutely Θ(ρ)-diligent lower-bound family of Theorem 1.5.

Construction (Section 5.1, "Absolutely ρ-Diligent Dynamic Network G(n, ρ)"):

* ``Δ`` is the even member of ``{⌈1/ρ⌉, ⌈1/ρ⌉ + 1}``.
* ``G(0)`` consists of ``G(A₀, 4, Δ)`` — a connected graph on ``⌊n/2⌋`` nodes
  where every node has degree 4 except one hub of degree ``Δ`` — and
  ``G(B₀, Δ)`` — a connected ``Δ``-regular graph on ``⌈n/2⌉`` nodes — joined
  by a single bridge edge from the hub to an arbitrary node of ``G(B₀, Δ)``.
  The rumor starts inside ``G(A₀, 4, Δ)``.
* At every step boundary the adversary strips the informed nodes out of the
  ``B`` side (``B_{t+1} = B_t \\ I_t``) and, as long as ``|B_{t+1}| ≥ n/6``
  and the side actually shrank, rebuilds both components and a fresh bridge
  whose ``B``-endpoint is uninformed.  Otherwise the previous snapshot is
  kept.

Every snapshot has absolute diligence ``ρ̄ = 1/(Δ + 1)`` (the bridge edge) and
``Φ = Θ(1/n)``; the single bridge, constantly re-rooted at an uninformed node,
forces the rumor to pay ``Θ(Δ)`` expected time per new ``B``-side node, giving
the ``Ω(n/ρ)`` lower bound that matches Theorem 1.3 up to a constant.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Tuple

import networkx as nx

from repro.dynamics.base import DynamicNetwork
from repro.graphs.generators import near_regular_with_hub, regular_connected_graph
from repro.graphs.metrics import GraphMetrics
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count


def even_delta_for_rho(rho: float) -> int:
    """Return the even ``Δ ∈ {⌈1/ρ⌉, ⌈1/ρ⌉+1}`` used by the construction."""
    require(0 < rho <= 1, f"rho must lie in (0, 1], got {rho}")
    delta = math.ceil(1.0 / rho)
    if delta % 2 == 1:
        delta += 1
    return max(delta, 2)


class AbsolutelyDiligentNetwork(DynamicNetwork):
    """The adaptive dynamic network of Theorem 1.5.

    Parameters
    ----------
    n:
        Total number of nodes (must be large enough that both halves can host
        their regular components: roughly ``n ≥ 6(Δ + 1)``).
    rho:
        Target absolute diligence; ``Δ`` is the even member of
        ``{⌈1/ρ⌉, ⌈1/ρ⌉+1}`` so every snapshot is absolutely ``1/(Δ+1)``-diligent.
    rng:
        Seed / generator for the random components of the regular graphs.
    """

    def __init__(self, n: int, rho: float, rng: RngLike = None):
        require_node_count(n, minimum=24)
        delta = even_delta_for_rho(rho)
        size_a = n // 2
        size_b = n - size_a
        require(
            delta + 1 < min(size_a, size_b) and size_b // 3 > delta,
            f"n = {n} is too small for rho = {rho} (Δ = {delta}): both halves must "
            f"exceed Δ+1 nodes and the B side must stay Δ-regular down to n/6 nodes.",
        )
        super().__init__(list(range(n)))
        self.rho = rho
        self.delta = delta
        self._size_a0 = size_a
        self._base_rng = ensure_rng(rng)
        self._run_rng = None
        self._part_b: Optional[frozenset] = None
        self._current_graph: Optional[nx.Graph] = None
        self._hub: Optional[Hashable] = None

    def default_source(self) -> Hashable:
        """A non-hub node of the ``A₀`` component."""
        return 1

    def _on_reset(self, rng) -> None:
        self._run_rng = rng
        self._part_b = frozenset(range(self._size_a0, self.n))
        self._current_graph = None
        self._hub = None

    # -- construction ---------------------------------------------------------

    def _build_snapshot(self, part_b: frozenset, informed: frozenset) -> nx.Graph:
        part_a = [u for u in self.nodes if u not in part_b]
        part_b_sorted = sorted(part_b)
        # The paper uses G(A, 4, Δ); for large rho (Δ < 4) the hub degree would
        # drop below the base degree, so the base degree is capped at Δ — the
        # A side then degenerates to a Δ-regular connected graph, which still
        # has constant degree and a single bridge, preserving the lower bound.
        base_degree_a = min(4, self.delta)
        graph_a, hub = near_regular_with_hub(
            part_a,
            base_degree=base_degree_a,
            hub_degree=self.delta,
            hub=part_a[0],
            rng=self._run_rng,
        )
        degree_b = min(self.delta, len(part_b_sorted) - 1)
        if degree_b % 2 == 1:
            degree_b -= 1
        degree_b = max(degree_b, 2)
        graph_b = regular_connected_graph(part_b_sorted, degree_b, rng=self._run_rng)
        graph = nx.compose(graph_a, graph_b)
        # Bridge from the hub to an uninformed node of B when one exists.
        uninformed_b = [u for u in part_b_sorted if u not in informed]
        bridge_target = uninformed_b[0] if uninformed_b else part_b_sorted[0]
        graph.add_edge(hub, bridge_target)
        self._hub = hub
        return graph

    def _build_step(self, t: int, informed: frozenset) -> nx.Graph:
        if t == 0 or self._current_graph is None:
            self._current_graph = self._build_snapshot(self._part_b, informed)
            return self._current_graph
        new_b = self._part_b - informed
        shrank = len(new_b) < len(self._part_b)
        big_enough = len(new_b) >= max(self.n // 6, self.delta + 2)
        if shrank and big_enough:
            self._part_b = new_b
            self._current_graph = self._build_snapshot(new_b, informed)
        return self._current_graph

    # -- analytic metrics ------------------------------------------------------

    def known_step_metrics(self, t: int) -> Optional[GraphMetrics]:
        """Per-snapshot analytic metrics: ``ρ̄ = 1/(Δ+1)``, ``Φ = Θ(1/n)``."""
        return GraphMetrics(
            conductance=1.0 / (2.0 * self.n),
            diligence=4.0 / (self.delta + 1.0),
            absolute_diligence=1.0 / (self.delta + 1.0),
            connected=True,
            n=self.n,
            exact=False,
        )

    # -- theoretical predictions ------------------------------------------------

    def predicted_lower_bound(self) -> float:
        """The Theorem 1.5 lower bound ``Ω(n/ρ)``: ``n Δ / 20`` informative waits."""
        return self.n * self.delta / 20.0

    def predicted_absolute_upper_bound(self) -> float:
        """The Theorem 1.3 bound ``T_abs = 2n(Δ+1)`` for this family."""
        return 2.0 * self.n * (self.delta + 1.0)


__all__ = ["AbsolutelyDiligentNetwork", "even_delta_for_rho"]
