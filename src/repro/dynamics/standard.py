"""Standard oblivious dynamic networks with analytic per-step metrics.

The bound-validation experiments exercise Theorem 1.1 on well-understood
topologies at sizes where exact cut enumeration is infeasible; this module
builds those networks together with their (asymptotically exact) analytic
``Φ``, ``ρ`` and ``ρ̄`` values so bound evaluation stays cheap.  It lives in
the dynamics layer so the scenario network registry can use it without
pulling in the experiment modules.

Values used (all standard):

* complete graph ``K_n``: ``Φ ≈ 1/2``, ``ρ = 1`` (regular), ``ρ̄ = 1/(n−1)``;
* star ``K_{1,n−1}``: ``Φ = 1``, ``ρ = 1``, ``ρ̄ = 1``;
* cycle ``C_n``: ``Φ = 1/⌊n/2⌋``, ``ρ = 1``, ``ρ̄ = 1/2``;
* random ``d``-regular graph: ``Φ = Θ(1)`` (a conservative 0.2 is used),
  ``ρ = 1``, ``ρ̄ = 1/d``.
"""

from __future__ import annotations

from repro.dynamics.sequences import PeriodicSequenceNetwork, StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, random_regular_expander, star
from repro.graphs.metrics import GraphMetrics
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require, require_node_count

#: Conservative Θ(1) conductance used for random regular expanders.
EXPANDER_CONDUCTANCE = 0.2


def clique_metrics(n: int) -> GraphMetrics:
    """Analytic metrics of the complete graph ``K_n``."""
    require_node_count(n, minimum=2)
    return GraphMetrics(
        conductance=0.5,
        diligence=1.0,
        absolute_diligence=1.0 / (n - 1),
        connected=True,
        n=n,
        exact=False,
    )


def star_metrics(n: int) -> GraphMetrics:
    """Analytic metrics of the star on ``n`` nodes (1 centre, ``n−1`` leaves)."""
    require_node_count(n, minimum=2)
    return GraphMetrics(
        conductance=1.0,
        diligence=1.0,
        absolute_diligence=1.0,
        connected=True,
        n=n,
        exact=True,
    )


def cycle_metrics(n: int) -> GraphMetrics:
    """Analytic metrics of the cycle ``C_n``."""
    require_node_count(n, minimum=3)
    return GraphMetrics(
        conductance=1.0 / (n // 2),
        diligence=1.0,
        absolute_diligence=0.5,
        connected=True,
        n=n,
        exact=True,
    )


def regular_metrics(n: int, degree: int, conductance: float = EXPANDER_CONDUCTANCE) -> GraphMetrics:
    """Analytic (Θ-level) metrics of a random ``degree``-regular expander."""
    require_node_count(n, minimum=degree + 1)
    return GraphMetrics(
        conductance=conductance,
        diligence=1.0,
        absolute_diligence=1.0 / degree,
        connected=True,
        n=n,
        exact=False,
    )


def static_clique_network(n: int) -> StaticDynamicNetwork:
    """``K_n`` exposed at every step, with analytic metrics attached."""
    return StaticDynamicNetwork(clique(range(n)), metrics=clique_metrics(n))


def static_star_network(n: int) -> StaticDynamicNetwork:
    """A static star on ``n`` nodes (centre 0), with analytic metrics attached."""
    return StaticDynamicNetwork(star(0, range(1, n)), metrics=star_metrics(n))


def static_cycle_network(n: int) -> StaticDynamicNetwork:
    """A static cycle on ``n`` nodes, with analytic metrics attached."""
    return StaticDynamicNetwork(cycle(range(n)), metrics=cycle_metrics(n))


def alternating_regular_complete_network(
    n: int, degree: int = 3, rng: RngLike = None
) -> PeriodicSequenceNetwork:
    """The Section 1.2 example: a ``d``-regular graph alternating with ``K_n``.

    On this sequence the degree-variation ratio ``M(G)`` of the Giakkoupis et
    al. bound is ``(n−1)/d = Θ(n)`` while both snapshots are 1-diligent, so
    the diligence-based bound of Theorem 1.1 is a factor Θ(n) tighter.
    """
    require_node_count(n, minimum=degree + 2)
    require(degree * n % 2 == 0, "degree * n must be even")
    gen = ensure_rng(rng)
    regular = random_regular_expander(degree, range(n), rng=gen)
    complete = clique(range(n))
    return PeriodicSequenceNetwork(
        [regular, complete],
        metrics=[regular_metrics(n, degree), clique_metrics(n)],
    )


__all__ = [
    "EXPANDER_CONDUCTANCE",
    "alternating_regular_complete_network",
    "clique_metrics",
    "cycle_metrics",
    "regular_metrics",
    "star_metrics",
    "static_clique_network",
    "static_cycle_network",
    "static_star_network",
]
