"""Experiment harness: repeated trials, parameter sweeps, tables and fits.

* :mod:`repro.analysis.trials` — run a process many times on (fresh copies
  of) a dynamic network and summarise the spread time distribution.
* :mod:`repro.analysis.sweep` — sweep a parameter (``n``, ``ρ``, ``k``, ...)
  and collect one :class:`TrialSummary` per point.
* :mod:`repro.analysis.tables` — render sweep results as plain-text tables /
  CSV, the format EXPERIMENTS.md and the benchmark harness print.
* :mod:`repro.analysis.regression` — log–log slope fits used to check growth
  exponents (Θ(n), Θ(log n), Θ(n²), ...).
"""

from repro.analysis.trials import TrialSummary, run_trials
from repro.analysis.sweep import SweepResult, sweep
from repro.analysis.tables import format_table, to_csv
from repro.analysis.regression import loglog_slope, semilog_slope
from repro.analysis.distribution import (
    EmpiricalDistribution,
    mean_difference_z_score,
    theorem_1_7_iii_tail,
)

__all__ = [
    "TrialSummary",
    "run_trials",
    "SweepResult",
    "sweep",
    "format_table",
    "to_csv",
    "loglog_slope",
    "semilog_slope",
    "EmpiricalDistribution",
    "mean_difference_z_score",
    "theorem_1_7_iii_tail",
]
