"""Parameter sweeps over dynamic networks and processes.

A sweep runs the trial runner at every value of a single parameter and
collects a table of summary statistics; this is the shape of every experiment
in the paper's reproduction ("spread time versus ``n``", "spread time versus
``ρ``", ...).

:func:`sweep` is now a deprecated adapter over
:meth:`repro.api.RunBuilder.sweep` — the fluent builder accepts
engine/variant/fault options identically for single runs, trials and sweeps,
and returns a columnar :class:`repro.api.SweepFrame`.  The adapter preserves
the historical signature and seed consumption exactly and converts the frame
back to a :class:`SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.analysis.trials import DEFAULT_WHP_QUANTILE, TrialSummary
from repro.core.state import SpreadResult
from repro.dynamics.base import DynamicNetwork
from repro.utils.rng import RngLike
from repro.utils.validation import require


@dataclass
class SweepPoint:
    """One row of a sweep: the parameter value, its summary and extra columns."""

    value: Any
    summary: TrialSummary
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self, parameter_name: str = "value") -> Dict[str, Any]:
        """Flatten the point into a dict suitable for table rendering."""
        row: Dict[str, Any] = {parameter_name: self.value}
        row.update(self.summary.as_dict())
        row.update(self.extras)
        return row


@dataclass
class SweepResult:
    """All rows of a sweep, in the order the parameter values were given."""

    parameter_name: str
    points: List[SweepPoint]

    def rows(self) -> List[Dict[str, Any]]:
        """Return the sweep as a list of flat dictionaries."""
        return [point.as_row(self.parameter_name) for point in self.points]

    def values(self) -> List[Any]:
        """The swept parameter values."""
        return [point.value for point in self.points]

    def series(self, column: str) -> List[float]:
        """Extract one numeric column across the sweep (e.g. ``"mean"``)."""
        rows = self.rows()
        require(all(column in row for row in rows), f"unknown column {column!r}")
        return [row[column] for row in rows]


def sweep(
    parameter_name: str,
    values: Sequence[Any],
    network_factory: Callable[[Any], DynamicNetwork],
    runner: Callable[..., SpreadResult],
    trials: int,
    rng: RngLike = None,
    source_for: Optional[Callable[[Any, DynamicNetwork], Hashable]] = None,
    extras_for: Optional[Callable[[Any, TrialSummary], Dict[str, float]]] = None,
    whp_quantile: float = DEFAULT_WHP_QUANTILE,
    workers: Optional[int] = None,
    **run_kwargs,
) -> SweepResult:
    """Run a one-dimensional parameter sweep.

    Parameters
    ----------
    parameter_name:
        Name of the swept parameter (used as the first table column).
    values:
        Parameter values, swept in order.
    network_factory:
        ``value -> DynamicNetwork`` builder called once per trial.
    runner:
        Process runner (e.g. ``AsynchronousRumorSpreading().run``).
    trials:
        Trials per parameter value.
    source_for:
        Optional ``(value, network) -> source`` override; by default each
        network's :meth:`default_source` is used.
    extras_for:
        Optional ``(value, summary) -> dict`` adding derived columns (e.g.
        theoretical bounds) to each row.
    workers:
        Number of worker processes running each point's trials concurrently.

    .. deprecated::
        ``sweep`` is a thin adapter over
        ``repro.api.run(network=factory, ...).trials(k).sweep(values)``; the
        builder validates engine/variant/fault options identically everywhere
        and returns a columnar :class:`repro.api.SweepFrame`.
    """
    from repro.api._deprecation import warn_once
    from repro.api.builder import run as api_run

    warn_once(
        "sweep",
        "sweep is deprecated; use repro.api.run(network=factory)"
        ".trials(k).sweep(values) instead",
    )
    builder = (
        api_run(network=network_factory)
        ._with_runner(runner)
        .trials(trials)
        .seed(rng)
        .whp_quantile(whp_quantile)
        .keep_results(bool(run_kwargs.pop("keep_results", False)))
    )
    if workers is not None:
        builder = builder.workers(workers)
    if run_kwargs:
        builder = builder._with_run_kwargs(**run_kwargs)
    frame = builder.sweep(
        values, name=parameter_name, source_for=source_for, extras_for=extras_for
    )
    return frame.to_sweep_result()


__all__ = ["SweepPoint", "SweepResult", "sweep"]
