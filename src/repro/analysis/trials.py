"""Repeated-trial runner and spread-time statistics.

The paper's statements are "with high probability" statements about the
spread time; at finite ``n`` we estimate the w.h.p. spread time as an upper
quantile (by default the 90th percentile) of the empirical distribution over
independent trials, alongside the mean, median and a normal-approximation
confidence interval for the mean.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.core.state import SpreadResult
from repro.dynamics.base import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import require, require_node_count, require_probability

#: Default quantile used as the finite-n stand-in for the w.h.p. spread time.
DEFAULT_WHP_QUANTILE = 0.9


@dataclass
class TrialSummary:
    """Summary statistics of the spread time over repeated trials.

    ``spread_times`` keeps the raw per-trial values (``inf`` for timed-out
    runs); all statistics are computed over the *completed* trials, and
    ``completion_rate`` reports how many completed.
    """

    spread_times: List[float]
    results: List[SpreadResult] = field(default_factory=list, repr=False)
    whp_quantile: float = DEFAULT_WHP_QUANTILE

    def __post_init__(self):
        require(len(self.spread_times) > 0, "TrialSummary needs at least one trial")
        require_probability(self.whp_quantile, "whp_quantile")

    @property
    def trials(self) -> int:
        """Total number of trials."""
        return len(self.spread_times)

    @property
    def completed_times(self) -> List[float]:
        """Spread times of the trials that finished before their time limit."""
        return [value for value in self.spread_times if math.isfinite(value)]

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that completed."""
        return len(self.completed_times) / self.trials

    @property
    def mean(self) -> float:
        """Mean spread time over completed trials (``inf`` if none completed)."""
        completed = self.completed_times
        return statistics.fmean(completed) if completed else math.inf

    @property
    def median(self) -> float:
        """Median spread time over completed trials (``inf`` if none completed)."""
        completed = self.completed_times
        return statistics.median(completed) if completed else math.inf

    @property
    def minimum(self) -> float:
        """Fastest completed trial (``inf`` if none completed)."""
        completed = self.completed_times
        return min(completed) if completed else math.inf

    @property
    def maximum(self) -> float:
        """Slowest completed trial (``inf`` if none completed)."""
        completed = self.completed_times
        return max(completed) if completed else math.inf

    @property
    def std(self) -> float:
        """Sample standard deviation over completed trials (0 for a single trial)."""
        completed = self.completed_times
        if len(completed) < 2:
            return 0.0
        return statistics.stdev(completed)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the spread time (timed-out trials count as ``inf``)."""
        require_probability(q, "q")
        ordered = sorted(self.spread_times)
        index = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(index, 0)]

    @property
    def whp_spread_time(self) -> float:
        """The finite-n stand-in for the w.h.p. spread time (upper quantile)."""
        return self.quantile(self.whp_quantile)

    def mean_confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval for the mean spread time."""
        completed = self.completed_times
        if not completed:
            return (math.inf, math.inf)
        half_width = z * self.std / math.sqrt(len(completed))
        centre = self.mean
        return (centre - half_width, centre + half_width)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline statistics (for tables / CSV)."""
        return {
            "trials": self.trials,
            "completion_rate": self.completion_rate,
            "mean": self.mean,
            "median": self.median,
            "whp": self.whp_spread_time,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
        }


def run_trials(
    runner: Callable[..., SpreadResult],
    network_factory: Callable[[], DynamicNetwork],
    trials: int,
    rng: RngLike = None,
    source: Optional[Hashable] = None,
    whp_quantile: float = DEFAULT_WHP_QUANTILE,
    keep_results: bool = False,
    **run_kwargs,
) -> TrialSummary:
    """Run ``trials`` independent runs and summarise their spread times.

    Parameters
    ----------
    runner:
        A bound method such as ``AsynchronousRumorSpreading(...).run`` — any
        callable accepting ``(network, source=..., rng=..., **run_kwargs)``
        and returning a :class:`SpreadResult`.
    network_factory:
        Zero-argument callable producing a fresh (or reusable — networks are
        reset per run) dynamic network for each trial.
    trials:
        Number of independent runs.
    rng:
        Master seed; per-trial generators are derived from it so results are
        reproducible and independent of ``trials``.
    keep_results:
        When True, the full :class:`SpreadResult` objects are retained on the
        summary (memory heavy for large sweeps).
    """
    require_node_count(trials, minimum=1, name="trials")
    generators = spawn_rngs(rng, trials)
    spread_times: List[float] = []
    results: List[SpreadResult] = []
    for trial_rng in generators:
        network = network_factory()
        result = runner(network, source=source, rng=trial_rng, **run_kwargs)
        spread_times.append(result.spread_time)
        if keep_results:
            results.append(result)
    return TrialSummary(spread_times=spread_times, results=results, whp_quantile=whp_quantile)


__all__ = ["DEFAULT_WHP_QUANTILE", "TrialSummary", "run_trials"]
