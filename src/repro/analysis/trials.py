"""Repeated-trial runner and spread-time statistics.

The paper's statements are "with high probability" statements about the
spread time; at finite ``n`` we estimate the w.h.p. spread time as an upper
quantile (by default the 90th percentile) of the empirical distribution over
independent trials, alongside the mean, median and a normal-approximation
confidence interval for the mean.

Trials are independent by construction (per-trial generators are spawned from
the master seed), so :func:`run_trials` can fan them out over a process pool:
pass ``workers=k`` to run ``k`` trials concurrently.  ``workers=1`` (the
default) is the plain serial loop, and because every trial uses the same
derived generator either way, the parallel path returns bit-identical results
on platforms with the ``fork`` start method.

:func:`run_trials` is now a deprecated adapter over the unified execution
path in :mod:`repro.api` (same semantics, same spread times for a fixed
seed); :class:`TrialSummary` remains the canonical statistics object and
backs :meth:`repro.api.TrialSet.summary`.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from repro.core.state import SpreadResult
from repro.dynamics.base import DynamicNetwork
from repro.utils.rng import RngLike
from repro.utils.validation import require, require_probability

#: Default quantile used as the finite-n stand-in for the w.h.p. spread time.
DEFAULT_WHP_QUANTILE = 0.9


@dataclass
class TrialSummary:
    """Summary statistics of the spread time over repeated trials.

    ``spread_times`` keeps the raw per-trial values (``inf`` for timed-out
    runs); all statistics are computed over the *completed* trials, and
    ``completion_rate`` reports how many completed.
    """

    spread_times: List[float]
    results: List[SpreadResult] = field(default_factory=list, repr=False)
    whp_quantile: float = DEFAULT_WHP_QUANTILE

    def __post_init__(self):
        require(len(self.spread_times) > 0, "TrialSummary needs at least one trial")
        require_probability(self.whp_quantile, "whp_quantile")

    @property
    def trials(self) -> int:
        """Total number of trials."""
        return len(self.spread_times)

    @property
    def completed_times(self) -> List[float]:
        """Spread times of the trials that finished before their time limit."""
        return [value for value in self.spread_times if math.isfinite(value)]

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that completed."""
        return len(self.completed_times) / self.trials

    @property
    def mean(self) -> float:
        """Mean spread time over completed trials (``inf`` if none completed)."""
        completed = self.completed_times
        return statistics.fmean(completed) if completed else math.inf

    @property
    def median(self) -> float:
        """Median spread time over completed trials (``inf`` if none completed)."""
        completed = self.completed_times
        return statistics.median(completed) if completed else math.inf

    @property
    def minimum(self) -> float:
        """Fastest completed trial (``inf`` if none completed)."""
        completed = self.completed_times
        return min(completed) if completed else math.inf

    @property
    def maximum(self) -> float:
        """Slowest completed trial (``inf`` if none completed)."""
        completed = self.completed_times
        return max(completed) if completed else math.inf

    @property
    def std(self) -> float:
        """Sample standard deviation over completed trials (0 for a single trial)."""
        completed = self.completed_times
        if len(completed) < 2:
            return 0.0
        return statistics.stdev(completed)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the spread time (timed-out trials count as ``inf``).

        Uses the same linear-interpolation index arithmetic as
        ``numpy.quantile`` (the default "linear" method): the virtual index is
        ``q · (trials − 1)`` and fractional positions interpolate between the
        two bracketing order statistics.  The previous ``ceil``-based index
        was off by one for small ``q`` with few trials (e.g. ``q = 0.1`` over
        3 trials returned the minimum); infinite (timed-out) order statistics
        are propagated instead of producing ``nan``.
        """
        require_probability(q, "q")
        ordered = sorted(self.spread_times)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low_index = int(math.floor(position))
        high_index = int(math.ceil(position))
        low_value, high_value = ordered[low_index], ordered[high_index]
        fraction = position - low_index
        if fraction == 0.0 or low_value == high_value:
            return low_value
        if math.isinf(high_value):
            return high_value
        return low_value + fraction * (high_value - low_value)

    @property
    def whp_spread_time(self) -> float:
        """The finite-n stand-in for the w.h.p. spread time (upper quantile).

        Defined as ``quantile(whp_quantile)`` — by default the 90th
        percentile of the raw per-trial spread times, with timed-out trials
        participating as ``inf`` so chronic non-completion shows up here.
        """
        return self.quantile(self.whp_quantile)

    def mean_confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval for the mean spread time."""
        completed = self.completed_times
        if not completed:
            return (math.inf, math.inf)
        half_width = z * self.std / math.sqrt(len(completed))
        centre = self.mean
        return (centre - half_width, centre + half_width)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline statistics (for tables / CSV)."""
        return {
            "trials": self.trials,
            "completion_rate": self.completion_rate,
            "mean": self.mean,
            "median": self.median,
            "whp": self.whp_spread_time,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
        }


def run_trials(
    runner: Callable[..., SpreadResult],
    network_factory: Callable[[], DynamicNetwork],
    trials: int,
    rng: RngLike = None,
    source: Optional[Hashable] = None,
    whp_quantile: float = DEFAULT_WHP_QUANTILE,
    keep_results: bool = False,
    workers: Optional[int] = None,
    **run_kwargs,
) -> TrialSummary:
    """Run ``trials`` independent runs and summarise their spread times.

    .. deprecated::
        ``run_trials`` is a thin adapter over :mod:`repro.api` — prefer
        ``repro.api.run(network=...).trials(k).workers(w).collect()``, which
        returns a typed :class:`repro.api.TrialSet` and supports observers
        and adaptive stopping.  The adapter is exact: for a fixed seed it
        returns the same spread times as it always has.

    Parameters
    ----------
    runner:
        A bound method such as ``AsynchronousRumorSpreading(...).run`` — any
        callable accepting ``(network, source=..., rng=..., **run_kwargs)``
        and returning a :class:`SpreadResult`.
    network_factory:
        Zero-argument callable producing a fresh (or reusable — networks are
        reset per run) dynamic network for each trial.
    trials:
        Number of independent runs.
    rng:
        Master seed; per-trial generators are derived from it so results are
        reproducible and independent of ``trials`` *and* of ``workers``.
    keep_results:
        When True, the full :class:`SpreadResult` objects are retained on the
        summary (memory heavy for large sweeps).
    workers:
        Number of worker processes.  ``None`` or ``1`` runs the plain serial
        loop; ``k > 1`` distributes trials over ``k`` forked processes.
        Trial ``i`` consumes the same derived generator either way, so for a
        fixed master seed ``workers=1`` is bit-identical to the serial seed
        behaviour and ``workers>1`` returns the same spread times in the same
        order (on fork platforms; elsewhere the serial loop is used).  Note
        that a ``network_factory`` closing over a *shared* generator is only
        reproducible serially.
    """
    from repro.api._deprecation import warn_once
    from repro.api._exec import execute_trials

    warn_once(
        "run_trials",
        "run_trials is deprecated; use repro.api.run(network=...)"
        ".trials(k).workers(w).collect() instead",
    )
    spread_times, results, _ = execute_trials(
        runner=runner,
        factory=network_factory,
        trials=trials,
        rng=rng,
        source=source,
        workers=1 if workers is None else workers,
        run_kwargs=run_kwargs,
        keep_results=keep_results,
    )
    return TrialSummary(spread_times=spread_times, results=results, whp_quantile=whp_quantile)


__all__ = ["DEFAULT_WHP_QUANTILE", "TrialSummary", "run_trials"]
