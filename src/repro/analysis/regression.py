"""Growth-exponent fits for sweep results.

The theorems make order-of-growth claims (``Θ(n)``, ``Θ(log n)``, ``Θ(n²)``,
``Ω(n/ρ)``, ...).  At finite scale we verify the *shape* by fitting slopes:

* :func:`loglog_slope` — slope of ``log(y)`` against ``log(x)``; ≈ 1 for
  linear growth, ≈ 2 for quadratic growth, ≈ 0 for polylogarithmic growth.
* :func:`semilog_slope` — slope of ``y`` against ``log(x)``; finite and stable
  for ``Θ(log n)`` quantities.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import require


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    require(xs.shape == ys.shape, "x and y series must have equal length")
    require(xs.size >= 2, "need at least two points to fit a slope")
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(slope), float(intercept)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Return the least-squares slope of ``log y`` versus ``log x``.

    All values must be strictly positive and finite.
    """
    require(all(x > 0 and math.isfinite(x) for x in xs), "x values must be positive and finite")
    require(all(y > 0 and math.isfinite(y) for y in ys), "y values must be positive and finite")
    slope, _ = _least_squares_slope([math.log(x) for x in xs], [math.log(y) for y in ys])
    return slope


def semilog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Return the least-squares slope of ``y`` versus ``log x``."""
    require(all(x > 0 and math.isfinite(x) for x in xs), "x values must be positive and finite")
    require(all(math.isfinite(y) for y in ys), "y values must be finite")
    slope, _ = _least_squares_slope([math.log(x) for x in xs], list(ys))
    return slope


def ratio_is_bounded(ys: Sequence[float], tolerance: float = 10.0) -> bool:
    """Return True when ``max(y)/min(y)`` stays below ``tolerance``.

    A cheap check that a quantity is Θ(1) across a sweep.
    """
    finite = [y for y in ys if math.isfinite(y)]
    require(len(finite) > 0, "need at least one finite value")
    low = min(finite)
    require(low > 0, "values must be positive")
    return max(finite) / low <= tolerance


__all__ = ["loglog_slope", "semilog_slope", "ratio_is_bounded"]
