"""Empirical distribution utilities for spread times.

Theorem 1.7(iii) and the w.h.p. statements of the paper are claims about the
*tail* of the spread-time distribution, not just its mean.  This module
provides the small amount of distribution machinery the experiments and tests
need:

* an empirical CDF / survival function over trial outcomes (timed-out trials
  count as ``+inf`` and therefore always sit in the tail);
* comparison of an empirical survival function against an analytic tail bound
  on a grid of points;
* a two-sample mean-difference z-score (used by the engine-agreement checks).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.utils.validation import require


@dataclass(frozen=True)
class EmpiricalDistribution:
    """An empirical distribution over (possibly infinite) trial outcomes."""

    samples: Tuple[float, ...]

    def __post_init__(self):
        require(len(self.samples) > 0, "need at least one sample")
        object.__setattr__(self, "samples", tuple(sorted(self.samples)))

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalDistribution":
        """Build a distribution from raw samples (``inf`` allowed)."""
        return cls(samples=tuple(samples))

    @property
    def size(self) -> int:
        """Number of samples."""
        return len(self.samples)

    def cdf(self, value: float) -> float:
        """Return ``P[X ≤ value]`` under the empirical distribution."""
        count = sum(1 for sample in self.samples if sample <= value)
        return count / self.size

    def survival(self, value: float) -> float:
        """Return ``P[X > value]``; timed-out (infinite) samples always count."""
        return 1.0 - self.cdf(value)

    def quantile(self, q: float) -> float:
        """Return the smallest sample ``x`` with ``cdf(x) ≥ q``."""
        require(0 < q <= 1, f"q must lie in (0, 1], got {q}")
        index = min(self.size - 1, max(0, math.ceil(q * self.size) - 1))
        return self.samples[index]

    def finite_mean(self) -> float:
        """Mean over the finite samples (``inf`` if none are finite)."""
        finite = [sample for sample in self.samples if math.isfinite(sample)]
        return statistics.fmean(finite) if finite else math.inf

    def exceeds_tail_bound(
        self,
        bound: Callable[[float], float],
        points: Sequence[float],
        slack: float = 0.0,
    ) -> List[Tuple[float, float, float]]:
        """Return the points where the empirical tail exceeds ``bound`` + ``slack``.

        ``bound(x)`` should return the claimed upper bound on ``P[X > x]``.
        The return value lists ``(point, empirical_tail, claimed_bound)`` for
        every violating point; an empty list means the tail bound held
        everywhere it was checked.
        """
        require(len(points) > 0, "need at least one evaluation point")
        violations = []
        for point in points:
            empirical = self.survival(point)
            claimed = min(1.0, bound(point))
            if empirical > claimed + slack:
                violations.append((point, empirical, claimed))
        return violations


def mean_difference_z_score(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample z-score of the difference between two sample means.

    Used to decide whether two engines / variants produce statistically
    indistinguishable spread times.  Returns 0 when both samples have zero
    variance and identical means.
    """
    require(len(first) >= 2 and len(second) >= 2, "need at least two samples per group")
    mean_first = statistics.fmean(first)
    mean_second = statistics.fmean(second)
    variance_first = statistics.variance(first)
    variance_second = statistics.variance(second)
    standard_error = math.sqrt(variance_first / len(first) + variance_second / len(second))
    if standard_error == 0:
        return 0.0 if mean_first == mean_second else math.inf
    return abs(mean_first - mean_second) / standard_error


def theorem_1_7_iii_tail(k: float) -> float:
    """The Theorem 1.7(iii) tail bound ``e^{-k/2} + e^{-k}`` (capped at 1)."""
    require(k >= 0, "k must be non-negative")
    return min(1.0, math.exp(-k / 2.0) + math.exp(-k))


__all__ = ["EmpiricalDistribution", "mean_difference_z_score", "theorem_1_7_iii_tail"]
