"""Plain-text table and CSV rendering of experiment results.

Experiments and benchmarks print their output through these helpers so that
every table in EXPERIMENTS.md has a single canonical format.
"""

from __future__ import annotations

import io
import math
from typing import Any, Dict, List, Optional, Sequence

from repro.utils.validation import require


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 10**6 or abs(value) < 10**-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    require(len(rows) > 0, "format_table requires at least one row")
    if columns is None:
        # Union of keys across all rows, in order of first appearance, so
        # heterogeneous row groups (e.g. two parts of one experiment) render.
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = [str(column) for column in columns]
    body = [[_format_cell(row.get(column, ""), precision) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    buffer = io.StringIO()
    if title:
        buffer.write(title + "\n")
    buffer.write("  ".join(header[i].ljust(widths[i]) for i in range(len(header))).rstrip() + "\n")
    buffer.write("  ".join("-" * widths[i] for i in range(len(header))) + "\n")
    for line in body:
        buffer.write("  ".join(line[i].ljust(widths[i]) for i in range(len(header))).rstrip() + "\n")
    return buffer.getvalue()


def to_csv(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as CSV text (no quoting; values must be simple)."""
    require(len(rows) > 0, "to_csv requires at least one row")
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(column) for column in columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            cell = str(value)
            require("," not in cell and "\n" not in cell, f"cell {cell!r} is not CSV-safe")
            cells.append(cell)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


__all__ = ["format_table", "to_csv"]
