#!/usr/bin/env python
"""Rumor spreading among mobile agents on a grid (related-work baseline).

Models the setting of Pettarin et al. / Lam et al. cited in the paper's
related work: agents perform lazy random walks on a 2-D torus and can exchange
the rumor whenever they are within one cell of each other.  Snapshots are
frequently disconnected, so this is also a nice illustration of the ``⌈Φ⌉``
indicator in the Theorem 1.3 bound — disconnected steps contribute nothing to
the budget.

The script sweeps the grid side length at a fixed number of agents (sparser
grids → rarer encounters → slower spreading) and reports the mean spread time
together with the fraction of snapshots that were connected.

Run with::

    python examples/mobile_gossip.py [--agents 24] [--trials 5]
"""

import argparse

from repro import AsynchronousRumorSpreading, MobileAgentsNetwork, SnapshotRecorder
from repro.analysis.tables import format_table
from repro.utils.rng import spawn_rngs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--agents", type=int, default=24)
    parser.add_argument("--sides", type=int, nargs="+", default=[5, 8, 12])
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    process = AsynchronousRumorSpreading()
    rows = []
    for side in args.sides:
        seeds = spawn_rngs(args.seed + side, args.trials)
        spread_times = []
        connected_fraction = []
        for trial_rng in seeds:
            network = MobileAgentsNetwork(args.agents, side=side, radius=1)
            recorder = SnapshotRecorder(mode="cheap", prefer_known=False, track_degrees=False)
            result = process.run(network, rng=trial_rng, recorder=recorder, max_time=5000.0)
            spread_times.append(result.spread_time)
            indicators = recorder.connectivity_series()
            connected_fraction.append(sum(indicators) / max(len(indicators), 1))
        finite = [value for value in spread_times if value != float("inf")]
        rows.append(
            {
                "grid side": side,
                "completed": f"{len(finite)}/{args.trials}",
                "mean spread time": sum(finite) / len(finite) if finite else float("inf"),
                "connected snapshot fraction": sum(connected_fraction) / len(connected_fraction),
            }
        )
    print(format_table(rows, title=f"{args.agents} mobile agents, radius-1 communication"))


if __name__ == "__main__":
    main()
