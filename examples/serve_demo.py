#!/usr/bin/env python
"""The README "Experiment service" walkthrough, runnable end to end.

Starts the HTTP service in-process on an ephemeral port, then does exactly
what the curl transcript in the README does: submit a scenario, follow the
SSE event feed to completion, fetch the run's artifact by content hash, and
scrape ``/metrics``.  CI executes this script (the ``examples-smoke`` job),
so the README's service snippets can never silently rot.  Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import json
import threading
import urllib.request

from repro.service import ExperimentService, ServiceConfig, create_server

SCENARIO = {
    "label": "clique-demo",
    "kind": "trials",
    "network": "clique",
    "params": {"n": 32},
    "trials": 3,
    "seed": 0,
}


def main() -> None:
    service = ExperimentService(ServiceConfig(workers=1))
    server = create_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"service listening on {base}")

    # 1. submit a run (POST /runs, 202 accepted)
    request = urllib.request.Request(
        f"{base}/runs",
        data=json.dumps(SCENARIO).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        submitted = json.loads(response.read())
    print(f"submitted {submitted['id']} (state={submitted['state']})")

    # 2. stream its events (GET /runs/{id}/events, Server-Sent-Events)
    counts = {}
    with urllib.request.urlopen(
        f"{base}/runs/{submitted['id']}/events", timeout=60
    ) as response:
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("data: "):
                event = json.loads(line[len("data: "):])
                counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    print(f"streamed events: {counts}")
    assert counts["state"] >= 3 and counts.get("trial", 0) == 3

    # 3. read the finished run and fetch its artifact by content hash
    with urllib.request.urlopen(f"{base}/runs/{submitted['id']}", timeout=30) as response:
        detail = json.loads(response.read())
    assert detail["state"] == "completed", detail
    point = detail["result"]["points"][0]
    with urllib.request.urlopen(f"{base}/artifacts/{point['key']}", timeout=30) as response:
        artifact = json.loads(response.read())
    assert artifact["checksum"] == point["checksum"]
    print(f"artifact {point['key'][:12]}… mean spread time "
          f"{artifact['payload']['summary']['mean']:.2f}")

    # 4. scrape the Prometheus metrics
    with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
        metrics = response.read().decode("utf-8")
    interesting = [line for line in metrics.splitlines()
                   if line.startswith(("repro_runs_", "repro_execution_items",
                                       "repro_execution_succeeded"))]
    print("\n".join(interesting))
    assert "repro_runs_completed_total 1" in interesting

    server.shutdown()
    server.server_close()
    service.shutdown()
    print("serve_demo: service walkthrough ran")


if __name__ == "__main__":
    main()
