#!/usr/bin/env python
"""The README "Experiment service" walkthrough, runnable end to end.

Starts the HTTP service in-process on an ephemeral port, then does exactly
what the README transcript does — submit a scenario, follow the SSE event
feed to completion, fetch the run's artifact by content hash, and scrape
``/metrics`` — through the typed :class:`repro.api.ServiceClient` instead of
hand-rolled ``urllib`` calls.  CI executes this script (the
``examples-smoke`` job), so the README's service snippets can never silently
rot.  Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import threading

from repro.api import ServiceClient
from repro.service import ExperimentService, ServiceConfig, create_server

SCENARIO = {
    "label": "clique-demo",
    "kind": "trials",
    "network": "clique",
    "params": {"n": 32},
    "trials": 3,
    "seed": 0,
}


def main() -> None:
    service = ExperimentService(ServiceConfig(workers=1))
    server = create_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"service listening on {base}")
    client = ServiceClient(base)

    # 1. submit a run (POST /runs, 202 accepted)
    submitted = client.submit(SCENARIO)
    print(f"submitted {submitted['id']} (state={submitted['state']})")

    # 2. stream its events (GET /runs/{id}/events, Server-Sent-Events)
    counts = {}
    for event in client.events(submitted["id"], timeout=60):
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    print(f"streamed events: {counts}")
    assert counts["state"] >= 3 and counts.get("trial", 0) == 3

    # 3. read the finished run and fetch its artifact by content hash
    detail = client.run(submitted["id"])
    assert detail["state"] == "completed", detail
    point = detail["result"]["points"][0]
    artifact = client.artifact(point["key"])
    assert artifact["checksum"] == point["checksum"]
    print(f"artifact {point['key'][:12]}… mean spread time "
          f"{artifact['payload']['summary']['mean']:.2f}")

    # 4. scrape the Prometheus metrics
    metrics = client.metrics()
    interesting = [line for line in metrics.splitlines()
                   if line.startswith(("repro_runs_", "repro_execution_items",
                                       "repro_execution_succeeded"))]
    print("\n".join(interesting))
    assert "repro_runs_completed_total 1" in interesting

    server.shutdown()
    server.server_close()
    service.shutdown()
    print("serve_demo: service walkthrough ran")


if __name__ == "__main__":
    main()
