#!/usr/bin/env python
"""Gossip averaging and resource discovery on dynamic networks.

The paper motivates the asynchronous time model with the applications that
introduced it (randomized gossip averaging, Boyd et al.) and classical uses of
epidemic protocols (resource discovery).  This example runs both applications
on top of the same dynamic-network substrate used by the rumor experiments:

* pairwise averaging on a static expander versus an edge-Markovian evolving
  graph — prints how fast the sum of squared deviations from the mean decays;
* set-union resource discovery on the edge-Markovian graph — prints the time
  until every node knows every resource.

Run with::

    python examples/averaging_demo.py [--n 40]
"""

import argparse

from repro import EdgeMarkovianNetwork, StaticDynamicNetwork
from repro.analysis.tables import format_table
from repro.apps.averaging import run_gossip_averaging
from repro.apps.resource_discovery import run_resource_discovery
from repro.graphs.generators import random_regular_expander


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    n = args.n

    initial_values = {node: float(node % 7) for node in range(n)}
    networks = {
        "static 4-regular expander": StaticDynamicNetwork(
            random_regular_expander(4, range(n), rng=args.seed)
        ),
        "edge-Markovian (p=0.1, q=0.4)": EdgeMarkovianNetwork(n, 0.1, 0.4, rng=args.seed),
    }

    rows = []
    for name, network in networks.items():
        result = run_gossip_averaging(
            network, initial_values, max_time=80.0, tolerance=1e-3, rng=args.seed
        )
        rows.append(
            {
                "network": name,
                "converged": result.converged,
                "convergence time": result.convergence_time,
                "final deviation": result.final_deviation(),
                "contacts": result.contacts,
            }
        )
    print(format_table(rows, title=f"Gossip averaging to the mean on {n} nodes"))
    print()

    discovery_network = EdgeMarkovianNetwork(n, 0.1, 0.4, rng=args.seed + 1)
    discovery = run_resource_discovery(discovery_network, rng=args.seed + 2)
    print("Resource discovery on the edge-Markovian network:")
    print(f"  completed: {discovery.completed}")
    print(f"  time until every node knew all {n} resources: {discovery.full_knowledge_time:.2f}")
    print(f"  informative contacts: {discovery.contacts}")


if __name__ == "__main__":
    main()
