#!/usr/bin/env python
"""Quickstart: asynchronous rumor spreading on a static and a dynamic network.

Runs the asynchronous push–pull algorithm of Pourmiri & Mans (PODC 2020) on

1. a static 100-node clique viewed as a dynamic network, and
2. the adaptive dynamic star ``G2`` of Figure 1(b),

then evaluates the paper's two upper bounds (Theorem 1.1 and Theorem 1.3) on
the realised snapshot sequence of a third run and prints everything as a small
report.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AsynchronousRumorSpreading,
    DynamicStarNetwork,
    SnapshotRecorder,
    StaticDynamicNetwork,
    SynchronousRumorSpreading,
    api,
)
from repro.analysis.tables import format_table
from repro.bounds.theorems import bounds_from_recorder
from repro.graphs import clique


def main() -> None:
    process = AsynchronousRumorSpreading()

    # 1. A static clique: the classical Θ(log n) behaviour.
    clique_network = StaticDynamicNetwork(clique(range(100)))
    result = process.run(clique_network, rng=0)
    print("Asynchronous push-pull on K_100:")
    print("  " + result.summary())
    print(f"  half the network was informed by t = {result.time_to_fraction(0.5):.2f}")
    print()

    # 2. The dynamic star G2: asynchronous finishes in Θ(log n) time while the
    #    synchronous algorithm needs exactly n rounds (Theorem 1.7(ii)).
    star = DynamicStarNetwork(100)
    async_summary = (
        api.run(network=lambda: DynamicStarNetwork(100), seed=1).trials(10).collect()
    )
    sync_result = SynchronousRumorSpreading().run(DynamicStarNetwork(100), rng=2)
    print("Dynamic star G2 with 101 nodes:")
    print(f"  asynchronous mean spread time over 10 runs: {async_summary.mean:.2f}")
    print(f"  synchronous spread time: {sync_result.spread_time:.0f} rounds (always n)")
    print()

    # 3. Evaluate the paper's bounds on the snapshots one run actually used.
    recorder = SnapshotRecorder(mode="cheap")
    traced = process.run(star, rng=3, recorder=recorder)
    bounds = bounds_from_recorder(recorder, star.n)
    rows = [
        {
            "quantity": "measured spread time",
            "value": traced.spread_time,
        },
        {
            "quantity": "Theorem 1.3 budget accumulated over the run",
            "value": bounds["theorem_1_3"].accumulated,
        },
        {
            "quantity": "Theorem 1.3 budget target (2n)",
            "value": bounds["theorem_1_3"].threshold,
        },
    ]
    print(format_table(rows, title="Bound bookkeeping for one G2 run"))


if __name__ == "__main__":
    main()
