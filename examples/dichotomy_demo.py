#!/usr/bin/env python
"""Reproduce the Figure 1 / Theorem 1.7 dichotomies at a chosen scale.

For a sweep of network sizes this script measures the mean spread time of the
asynchronous and synchronous push–pull algorithms on

* ``G1`` — an ``n``-clique with a pendant rumor holder that turns into two
  bridged cliques (asynchronous is Ω(n), synchronous is Θ(log n));
* ``G2`` — the adaptive dynamic star (asynchronous is Θ(log n), synchronous is
  exactly ``n`` rounds),

and prints the resulting table plus fitted growth exponents.

Run with::

    python examples/dichotomy_demo.py [--sizes 32 64 128] [--trials 20]
"""

import argparse

from repro import CliqueBridgeNetwork, DynamicStarNetwork, api
from repro.analysis.regression import loglog_slope
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 64, 128])
    parser.add_argument("--trials", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    g1_async, g2_async = [], []

    for n in args.sizes:
        trials = args.trials
        async_g1 = (
            api.run(network=lambda n=n: CliqueBridgeNetwork(n), seed=args.seed)
            .trials(trials).collect()
        )
        sync_g1 = (
            api.run(network=lambda n=n: CliqueBridgeNetwork(n), algorithm="sync",
                    seed=args.seed + 1)
            .trials(trials).collect()
        )
        async_g2 = (
            api.run(network=lambda n=n: DynamicStarNetwork(n), seed=args.seed + 2)
            .trials(trials).collect()
        )
        sync_g2 = (
            api.run(network=lambda n=n: DynamicStarNetwork(n), algorithm="sync",
                    seed=args.seed + 3)
            .trials(trials).collect()
        )
        g1_async.append(async_g1.mean)
        g2_async.append(async_g2.mean)
        rows.append(
            {
                "n": n,
                "G1 async (Ω(n))": async_g1.mean,
                "G1 sync (Θ(log n))": sync_g1.mean,
                "G2 async (Θ(log n))": async_g2.mean,
                "G2 sync (= n)": sync_g2.mean,
            }
        )

    print(format_table(rows, title="Theorem 1.7 dichotomies"))
    if len(args.sizes) >= 2:
        print(f"G1 asynchronous log-log slope vs n: {loglog_slope(args.sizes, g1_async):.2f}"
              " (tends to 1 as n grows)")
        print(f"G2 asynchronous log-log slope vs n: {loglog_slope(args.sizes, g2_async):.2f}"
              " (stays near 0)")


if __name__ == "__main__":
    main()
