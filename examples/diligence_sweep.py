#!/usr/bin/env python
"""Sweep the diligence parameter ρ of the Theorem 1.2 / 1.5 lower-bound families.

For a fixed ``n`` this script builds the two adaptive adversarial families of
the paper at several values of ``ρ``, measures the asynchronous spread time,
and prints it next to the paper's predictions:

* Theorem 1.2 family ``G(n, ρ)`` (chain of complete bipartite clusters):
  spread time ``Ω(nρ/k)`` versus the Theorem 1.1 budget ``O((ρn + k/ρ) log n)``;
* Theorem 1.5 family (two near-regular graphs joined by one re-rooted bridge):
  spread time ``Ω(n/ρ)`` versus the Theorem 1.3 budget ``2n(Δ+1)``.

Run with::

    python examples/diligence_sweep.py [--n 160] [--trials 5]
"""

import argparse

from repro import AbsolutelyDiligentNetwork, DiligentDynamicNetwork, api
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=160)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--rhos", type=float, nargs="+", default=[0.5, 0.25, 0.125])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    for rho in args.rhos:
        factory = lambda rho=rho: DiligentDynamicNetwork(args.n, rho, rng=args.seed)
        probe = factory()
        summary = (
            api.run(network=factory, seed=args.seed + 1).trials(args.trials).collect()
        )
        rows.append(
            {
                "rho": rho,
                "delta": probe.delta,
                "k": probe.k,
                "measured mean": summary.mean,
                "Ω(nρ/k) prediction": probe.predicted_lower_bound(),
                "Thm 1.1 budget": probe.predicted_upper_bound(),
            }
        )
    print(format_table(rows, title=f"Theorem 1.2 family at n = {args.n}"))
    print()

    rows = []
    for rho in args.rhos:
        if 1.0 / rho > args.n // 6 - 1:
            continue
        factory = lambda rho=rho: AbsolutelyDiligentNetwork(args.n, rho, rng=args.seed)
        probe = factory()
        summary = (
            api.run(network=factory, seed=args.seed + 2).trials(args.trials).collect()
        )
        rows.append(
            {
                "rho": rho,
                "delta": probe.delta,
                "measured mean": summary.mean,
                "Ω(n/ρ) prediction": probe.predicted_lower_bound(),
                "T_abs = 2n(Δ+1)": probe.predicted_absolute_upper_bound(),
            }
        )
    print(format_table(rows, title=f"Theorem 1.5 family at n = {args.n}"))


if __name__ == "__main__":
    main()
