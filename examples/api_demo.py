#!/usr/bin/env python
"""The three README "Library API" examples, runnable end to end.

1. a single run through the fluent builder,
2. parallel trials with adaptive CI-width stopping,
3. a scenario file executed into a columnar ``SweepFrame``.

CI executes this script (the ``examples-smoke`` job), so the README snippets
can never silently rot.  Run with::

    PYTHONPATH=src python examples/api_demo.py
"""

import json
import pathlib

from repro import Scenario, api


def single_run() -> None:
    """Example 1 — one run, typed result."""
    result = api.run(network="clique", n=200, seed=0).once()
    print(f"K_200 spread time: {result.spread_time:.2f} (completed={result.completed})")
    assert result.completed and result.n == 200


def adaptive_parallel_trials() -> None:
    """Example 2 — parallel trials that stop once the mean is pinned down."""
    trials = (
        api.run(network="edge-markovian", n=128, birth=0.4, death=0.2, seed=7)
        .trials(until_ci_width=2.0, max_trials=200)
        .workers(4)
        .collect()
    )
    print(
        f"edge-Markovian n=128: mean={trials.mean:.2f} over {trials.trials} trials "
        f"(CI width {trials.ci_width():.2f})"
    )
    assert 2 <= trials.trials <= 200
    assert trials.ci_width() <= 2.0 or trials.trials == 200


def scenario_file_to_sweep_frame() -> None:
    """Example 3 — a declarative scenario file becomes aligned columns."""
    document = json.loads(
        (pathlib.Path(__file__).parent / "scenarios_demo.json").read_text()
    )
    scenario = Scenario.from_dict(document["scenarios"][0])  # the clique size sweep
    frame = api.sweep_scenario(scenario)
    for n, mean, whp in zip(frame.values, frame.column("mean"), frame.column("whp")):
        print(f"n={n:>4}  mean={mean:6.2f}  whp={whp:6.2f}")
    assert list(frame.values) == [64, 128, 256]
    assert (frame.column("mean") > 0).all()


if __name__ == "__main__":
    single_run()
    adaptive_parallel_trials()
    scenario_file_to_sweep_frame()
    print("api_demo: all examples ran")
