"""Benchmark E4 — Theorem 1.5 absolutely Θ(ρ)-diligent lower-bound family."""

from conftest import run_experiment_benchmark

from repro.experiments import theorem_1_5


def test_bench_theorem_1_5(benchmark):
    result = run_experiment_benchmark(benchmark, theorem_1_5.run, scale="small", rng=2023)
    assert result.passed, "the Ω(n/ρ) growth of Theorem 1.5 was not observed"
