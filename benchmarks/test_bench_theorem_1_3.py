"""Benchmark E3 — Theorem 1.3 / Remark 1.4 absolute-diligence bound."""

from conftest import run_experiment_benchmark

from repro.experiments import theorem_1_3


def test_bench_theorem_1_3(benchmark):
    result = run_experiment_benchmark(benchmark, theorem_1_3.run, scale="small", rng=2022)
    assert result.passed, "a run exceeded T_abs or the universal 2n(n-1) cap"
