"""Benchmark E7 — comparison against the Giakkoupis et al. degree-variation bound."""

from conftest import run_experiment_benchmark

from repro.experiments import related_work


def test_bench_related_work(benchmark):
    result = run_experiment_benchmark(benchmark, related_work.run, scale="small", rng=2026)
    assert result.passed, "the M(G) inflation of the [17] bound did not appear"
