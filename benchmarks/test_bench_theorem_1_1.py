"""Benchmark E1 — Theorem 1.1 upper bound validation (see DESIGN.md)."""

from conftest import run_experiment_benchmark

from repro.experiments import theorem_1_1


def test_bench_theorem_1_1(benchmark):
    result = run_experiment_benchmark(benchmark, theorem_1_1.run, scale="small", rng=2020)
    assert result.passed, "a measured spread time exceeded the Theorem 1.1 / 1.3 bound"
