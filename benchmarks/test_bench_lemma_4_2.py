"""Benchmark E8 — Lemma 4.2 forward 2-push chain crossing probability."""

from conftest import run_experiment_benchmark

from repro.experiments import lemma_4_2


def test_bench_lemma_4_2(benchmark):
    result = run_experiment_benchmark(benchmark, lemma_4_2.run, scale="small", rng=2025)
    assert result.passed, "the (2^k/k!)Δ bound of Lemma 4.2 was violated"
