"""Print the change between two pytest-benchmark JSON files.

Usage::

    python benchmarks/bench_delta.py benchmarks/BENCH_baseline.json BENCH_engines.json

Matches benchmarks by name and prints the mean runtime of each side plus the
relative delta (negative = faster than the committed baseline).  Benchmarks
present on only one side are listed separately.  The script is informational:
it always exits 0 so CI surfaces regressions in the log without going red on
noisy runners (the committed baseline was recorded on different hardware than
the CI machines).
"""

from __future__ import annotations

import json
import sys
from typing import Dict


def _load_means(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in document.get("benchmarks", [])
    }


def main(argv) -> int:
    if len(argv) != 3:
        print(f"usage: {argv[0]} BASELINE.json CURRENT.json", file=sys.stderr)
        return 2
    baseline = _load_means(argv[1])
    current = _load_means(argv[2])

    shared = sorted(set(baseline) & set(current))
    width = max((len(name) for name in shared), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    print(f"{'-' * width}  {'-' * 12}  {'-' * 12}  {'-' * 8}")
    for name in shared:
        base_ms = baseline[name] * 1000.0
        curr_ms = current[name] * 1000.0
        delta = (curr_ms - base_ms) / base_ms * 100.0
        print(f"{name:<{width}}  {base_ms:>10.2f}ms  {curr_ms:>10.2f}ms  {delta:>+7.1f}%")

    for label, names in (
        ("only in baseline", sorted(set(baseline) - set(current))),
        ("only in current", sorted(set(current) - set(baseline))),
    ):
        for name in names:
            print(f"{label}: {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
