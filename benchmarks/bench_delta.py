"""Compare two pytest-benchmark JSON files, optionally gating on regressions.

Usage::

    python benchmarks/bench_delta.py benchmarks/BENCH_baseline.json BENCH_engines.json \
        [--threshold 30] [--gate NAME_OR_GLOB ...] [--json PATH]

Matches benchmarks by name and prints the mean runtime of each side plus the
relative delta (negative = faster than the committed baseline).  Benchmarks
present on only one side are listed separately.

Without ``--gate`` the script is informational and always exits 0.  With one
or more ``--gate`` patterns (exact names or ``fnmatch`` globs naming the hot
benchmarks), it exits non-zero when any gated benchmark is slower than the
baseline by more than ``--threshold`` percent (default 30%).  A pattern that
matches no benchmark *shared* by both files is warned about and skipped
rather than failed: a freshly added benchmark is gated from the moment both
sides record it, without breaking the delta job on the run that introduces
it (or on a stale baseline).

``--json PATH`` additionally writes a machine-readable delta document
(``-`` for stdout): per-benchmark baseline/current means, percentage delta
and gate flag, the one-sided name lists, the gate failures and the overall
verdict — the exit code in data form, for CI summaries and tooling.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from typing import Dict, List


def _load_means(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in document.get("benchmarks", [])
    }


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog=argv[0], description="benchmark delta (and optional regression gate)"
    )
    parser.add_argument("baseline", help="committed baseline pytest-benchmark JSON")
    parser.add_argument("current", help="freshly recorded pytest-benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=30.0, metavar="PCT",
        help="maximum allowed slowdown for gated benchmarks, in percent (default 30)",
    )
    parser.add_argument(
        "--gate", action="append", default=[], metavar="NAME",
        help="benchmark name or fnmatch glob to gate on (repeatable); "
        "without any, the script only prints deltas",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="write a machine-readable delta document to PATH ('-' for stdout)",
    )
    return parser.parse_args(argv[1:])


def main(argv) -> int:
    args = _parse_args(list(argv))
    baseline = _load_means(args.baseline)
    current = _load_means(args.current)

    shared = sorted(set(baseline) & set(current))
    # One matching pass serves both the table markers and the gate verdicts.
    matches_by_pattern = {
        pattern: [name for name in shared if fnmatch.fnmatch(name, pattern)]
        for pattern in args.gate
    }
    gated = {name for matched in matches_by_pattern.values() for name in matched}
    deltas: Dict[str, float] = {}
    width = max((len(name) for name in shared), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}  gate")
    print(f"{'-' * width}  {'-' * 12}  {'-' * 12}  {'-' * 8}  ----")
    for name in shared:
        base_ms = baseline[name] * 1000.0
        curr_ms = current[name] * 1000.0
        delta = (curr_ms - base_ms) / base_ms * 100.0
        deltas[name] = delta
        marker = "*" if name in gated else ""
        print(f"{name:<{width}}  {base_ms:>10.2f}ms  {curr_ms:>10.2f}ms  {delta:>+7.1f}%  {marker}")

    for label, names in (
        ("only in baseline", sorted(set(baseline) - set(current))),
        ("only in current", sorted(set(current) - set(baseline))),
    ):
        for name in names:
            print(f"{label}: {name}")

    failures = []
    for pattern, matched in matches_by_pattern.items():
        if not matched:
            # A gated benchmark missing from one side (new benchmark, stale
            # baseline) must not break the job: warn and gate it once both
            # sides record it.
            unshared = sorted(
                name
                for name in (set(baseline) | set(current)) - set(shared)
                if fnmatch.fnmatch(name, pattern)
            )
            if unshared:
                print(
                    f"WARN: gate pattern {pattern!r} matched only unshared "
                    f"benchmark(s) ({', '.join(unshared)}); skipping until both "
                    "sides record them",
                    file=sys.stderr,
                )
            else:
                print(
                    f"WARN: gate pattern {pattern!r} matched no benchmark on "
                    "either side; skipping",
                    file=sys.stderr,
                )
    for name in sorted(gated):
        if deltas[name] > args.threshold:
            failures.append(
                f"{name} regressed {deltas[name]:+.1f}% "
                f"(threshold {args.threshold:.0f}%)"
            )

    if args.json_path is not None:
        document = {
            "baseline": args.baseline,
            "current": args.current,
            "threshold_pct": args.threshold,
            "benchmarks": {
                name: {
                    "baseline_s": baseline[name],
                    "current_s": current[name],
                    "delta_pct": deltas[name],
                    "gated": name in gated,
                }
                for name in shared
            },
            "only_in_baseline": sorted(set(baseline) - set(current)),
            "only_in_current": sorted(set(current) - set(baseline)),
            "failures": list(failures),
            "ok": not failures,
        }
        if args.json_path == "-":
            json.dump(document, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if gated:
        print(f"\ngate OK: {len(gated)} benchmark(s) within {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
