"""Benchmark E2 — Theorem 1.2 / Observation 4.1 lower-bound family."""

from conftest import run_experiment_benchmark

from repro.experiments import theorem_1_2


def test_bench_theorem_1_2(benchmark):
    result = run_experiment_benchmark(benchmark, theorem_1_2.run, scale="small", rng=2021)
    assert result.passed, "the Θ(ρ)-diligent family did not show the predicted shape"
