"""Shared helpers for the benchmark harness.

Every benchmark runs one reproduction experiment (DESIGN.md's E1–E9) exactly
once under pytest-benchmark, prints the regenerated table (so
``pytest benchmarks/ --benchmark-only -s`` reproduces every "table/figure" of
the paper in one go), and asserts the experiment's shape check.
"""

from __future__ import annotations

import pytest

from repro.experiments.result import ExperimentResult


def run_experiment_benchmark(benchmark, runner, **kwargs) -> ExperimentResult:
    """Run ``runner(**kwargs)`` once under the benchmark fixture and report it."""
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print()
    print(result.report())
    return result
