"""Benchmarks E5/E6 — Theorem 1.7 dichotomies on G1 and G2 (Figure 1)."""

from conftest import run_experiment_benchmark

from repro.experiments import theorem_1_7


def test_bench_dichotomies_g1_g2(benchmark):
    result = run_experiment_benchmark(benchmark, theorem_1_7.run, scale="small", rng=2024)
    assert result.passed, "the synchronous/asynchronous dichotomy did not appear"


def test_bench_g2_tail_bound(benchmark):
    rows = benchmark.pedantic(
        lambda: theorem_1_7.part_iii_rows(n=96, ks=[4, 6, 8], trials=80, rng=7),
        rounds=1,
        iterations=1,
    )
    assert all(row["within_bound"] for row in rows)
