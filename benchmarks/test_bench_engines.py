"""Benchmark E9 — boundary vs naive engine ablation, plus raw engine throughput."""

from conftest import run_experiment_benchmark

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.experiments import engine_validation
from repro.graphs.generators import clique


def test_bench_engine_agreement(benchmark):
    result = run_experiment_benchmark(benchmark, engine_validation.run, scale="small", rng=2027)
    assert result.passed, "boundary and naive engines disagree in distribution"


def test_bench_boundary_engine_throughput(benchmark):
    """Raw speed of the boundary engine on a 200-node clique."""
    network = StaticDynamicNetwork(clique(range(200)))
    process = AsynchronousRumorSpreading()
    result = benchmark(lambda: process.run(network, rng=0))
    assert result.completed


def test_bench_naive_engine_throughput(benchmark):
    """Raw speed of the naive engine on a 60-node clique (reference point)."""
    network = StaticDynamicNetwork(clique(range(60)))
    process = AsynchronousRumorSpreading(engine="naive")
    result = benchmark(lambda: process.run(network, rng=0))
    assert result.completed
