"""Benchmark E9 — boundary vs naive engine ablation, plus raw engine throughput.

The throughput cases track the array-native boundary engine across scales:
the n=200 clique case is the historical baseline (its runtime is the number
guarded by the CSR refactor's ≥3× speedup acceptance), and the large-n cases
(n=2000 clique, n=5000 Erdős–Rényi) exercise the CSR-native constructors so
the whole path — generation, snapshotting, rate updates, weighted selection —
runs without ever materialising a networkx graph.
"""

from conftest import run_experiment_benchmark

from repro.analysis.trials import run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.batched import BatchedRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.experiments import engine_validation
from repro.graphs.generators import clique, clique_csr, erdos_renyi_csr


def test_bench_engine_agreement(benchmark):
    result = run_experiment_benchmark(benchmark, engine_validation.run, scale="small", rng=2027)
    assert result.passed, "boundary and naive engines disagree in distribution"


def test_bench_boundary_engine_throughput(benchmark):
    """Raw speed of the boundary engine on a 200-node clique."""
    network = StaticDynamicNetwork(clique(range(200)))
    process = AsynchronousRumorSpreading()
    result = benchmark(lambda: process.run(network, rng=0))
    assert result.completed


def test_bench_naive_engine_throughput(benchmark):
    """Raw speed of the naive engine on a 60-node clique (reference point)."""
    network = StaticDynamicNetwork(clique(range(60)))
    process = AsynchronousRumorSpreading(engine="naive")
    result = benchmark(lambda: process.run(network, rng=0))
    assert result.completed


def test_bench_boundary_engine_throughput_n2000_clique(benchmark):
    """Large-n boundary engine throughput on a CSR-native 2000-node clique."""
    network = StaticDynamicNetwork(clique_csr(range(2000)))
    process = AsynchronousRumorSpreading()
    result = benchmark.pedantic(lambda: process.run(network, rng=0), rounds=3, iterations=1)
    assert result.completed


def test_bench_boundary_engine_throughput_n5000_er(benchmark):
    """Large-n boundary engine throughput on a CSR-native G(5000, p) graph.

    ``p = 0.0035 ≈ 2.05 ln(n)/n`` keeps the sample connected w.h.p.; the
    fixed seed below was checked to produce a connected instance.
    """
    network = StaticDynamicNetwork(erdos_renyi_csr(5000, 0.0035, rng=7))
    process = AsynchronousRumorSpreading()
    result = benchmark.pedantic(lambda: process.run(network, rng=0), rounds=3, iterations=1)
    assert result.completed


def test_bench_batched_100_trials_n2000_clique(benchmark):
    """100 batched clique trials in one vectorised sweep.

    The headline number for the trial-batched engine: this whole batch should
    run *faster than a single* ``test_bench_boundary_engine_throughput_n2000_clique``
    trial (measured ≳200× per-trial throughput), because the clique closed
    form reduces the batch to a handful of ``(trials, n)`` array operations.
    """
    network = StaticDynamicNetwork(clique_csr(range(2000)))
    process = BatchedRumorSpreading()
    results = benchmark.pedantic(
        lambda: process.run_batch(network, 100, rng=0), rounds=3, iterations=1
    )
    assert len(results) == 100 and all(r.completed for r in results)


def test_bench_boundary_engine_throughput_n10000_er(benchmark):
    """Boundary engine on G(10⁴, p); p ≈ 2.0 ln(n)/n keeps it connected."""
    network = StaticDynamicNetwork(erdos_renyi_csr(10_000, 0.00184, rng=7))
    process = AsynchronousRumorSpreading()
    result = benchmark.pedantic(lambda: process.run(network, rng=0), rounds=3, iterations=1)
    assert result.completed


def test_bench_batched_10_trials_n10000_er(benchmark):
    """Batched general (non-clique) path: 10 trials on the same G(10⁴, p)."""
    network = StaticDynamicNetwork(erdos_renyi_csr(10_000, 0.00184, rng=7))
    process = BatchedRumorSpreading()
    results = benchmark.pedantic(
        lambda: process.run_batch(network, 10, rng=0), rounds=2, iterations=1
    )
    assert all(r.completed for r in results)


def test_bench_batched_10_trials_n10000_er_workers2(benchmark):
    """The same 10×G(10⁴, p) batch sharded over 2 workers.

    Exercises ``execute_batched``'s trial-axis sharding (contiguous spans of
    the spawned generator list over the fork pool); results are bit-identical
    to the unsharded batch, so the only interesting number is the wall-clock
    ratio to ``test_bench_batched_10_trials_n10000_er``.
    """
    from repro.api._exec import execute_batched

    network = StaticDynamicNetwork(erdos_renyi_csr(10_000, 0.00184, rng=7))
    process = BatchedRumorSpreading()
    spread_times, _, _ = benchmark.pedantic(
        lambda: execute_batched(process, network, 10, rng=0, workers=2),
        rounds=2,
        iterations=1,
    )
    assert len(spread_times) == 10 and all(t < float("inf") for t in spread_times)


def test_bench_batched_single_run_n100000_er(benchmark):
    """Mega-scale gate: one full spread on G(10⁵, p) must stay tractable.

    ``p = 0.00023 ≈ 2.0 ln(n)/n``; the fixed seed yields a connected sample
    with ~1.15M edges (generated by the geometric-skip sampler).  The
    acceptance bar is completion well under 30 s — measured ~8 s.
    """
    network = StaticDynamicNetwork(erdos_renyi_csr(100_000, 0.00023, rng=7))
    process = BatchedRumorSpreading()
    result = benchmark.pedantic(
        lambda: process.run_batch(network, 1, rng=0)[0], rounds=1, iterations=1
    )
    assert result.completed


def test_bench_parallel_trial_runner(benchmark):
    """Trial-runner fan-out: 8 trials on an n=300 clique across 2 workers."""
    process = AsynchronousRumorSpreading()
    factory = lambda: StaticDynamicNetwork(clique_csr(range(300)))
    summary = benchmark.pedantic(
        lambda: run_trials(process.run, factory, trials=8, rng=0, workers=2),
        rounds=1,
        iterations=1,
    )
    assert summary.completion_rate == 1.0


def test_bench_api_single_run_n2000_clique(benchmark):
    """Facade overhead check: the n=2000 clique run through ``repro.api``.

    Should track ``test_bench_boundary_engine_throughput_n2000_clique`` to
    within noise — the builder resolves the process and network factory once
    and then hands off to the same engine code.
    """
    from repro import api

    network = StaticDynamicNetwork(clique_csr(range(2000)))
    builder = api.run(network=network, seed=0)
    result = benchmark.pedantic(lambda: builder.once(rng=0), rounds=3, iterations=1)
    assert result.completed


def test_bench_api_parallel_trial_runner(benchmark):
    """The 8×n=300, workers=2 trial workload through ``repro.api``."""
    from repro import api

    factory = lambda: StaticDynamicNetwork(clique_csr(range(300)))
    builder = api.run(network=factory, seed=0).trials(8).workers(2)
    trial_set = benchmark.pedantic(builder.collect, rounds=1, iterations=1)
    assert trial_set.completion_rate == 1.0
