"""Unit tests for conductance, diligence and absolute diligence."""

import math

import networkx as nx
import pytest

from repro.graphs.generators import clique, cycle, path, star
from repro.graphs.metrics import (
    GraphMetrics,
    absolute_diligence,
    average_degree,
    conductance_estimate,
    conductance_exact,
    conductance_of_cut,
    conductance_spectral_bounds,
    cut_edges,
    degree_variation_ratio,
    diligence_exact,
    diligence_of_cut,
    diligence_sampled,
    measure_graph,
    volume,
)


class TestVolumeAndCuts:
    def test_volume_of_whole_graph_is_twice_edges(self):
        graph = clique(range(6))
        assert volume(graph) == 2 * graph.number_of_edges()

    def test_volume_of_subset(self):
        graph = star(0, range(1, 5))
        assert volume(graph, [0]) == 4
        assert volume(graph, [1, 2]) == 2

    def test_cut_edges_of_star_center(self):
        graph = star(0, range(1, 6))
        crossing = cut_edges(graph, {0})
        assert len(crossing) == 5
        assert all(edge[0] == 0 for edge in crossing)

    def test_cut_edges_unknown_node_raises(self):
        graph = path(range(4))
        with pytest.raises(ValueError):
            cut_edges(graph, {99})

    def test_average_degree(self):
        graph = star(0, range(1, 5))
        assert average_degree(graph, [1, 2, 3, 4]) == 1.0
        assert average_degree(graph, [0]) == 4.0


class TestConductance:
    def test_clique_conductance_is_about_half(self):
        graph = clique(range(8))
        phi = conductance_exact(graph)
        # Balanced cut of K_8: 16 crossing edges over volume 28.
        assert phi == pytest.approx(16 / 28)

    def test_cycle_conductance(self):
        graph = cycle(range(10))
        assert conductance_exact(graph) == pytest.approx(2 / 10)

    def test_star_conductance_is_one(self):
        graph = star(0, range(1, 8))
        assert conductance_exact(graph) == pytest.approx(1.0)

    def test_path_conductance(self):
        graph = path(range(6))
        # Cut in the middle: 1 edge over volume 5.
        assert conductance_exact(graph) == pytest.approx(1 / 5)

    def test_disconnected_graph_has_zero_conductance(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert conductance_exact(graph) == 0.0

    def test_conductance_of_specific_cut(self):
        graph = cycle(range(8))
        assert conductance_of_cut(graph, {0, 1, 2, 3}) == pytest.approx(2 / 8)

    def test_conductance_of_cut_rejects_zero_volume_side(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(ValueError):
            conductance_of_cut(graph, {2})

    def test_exact_conductance_rejects_large_graphs(self):
        graph = clique(range(25))
        with pytest.raises(ValueError):
            conductance_exact(graph)

    def test_spectral_bounds_bracket_exact_value(self):
        for graph in (clique(range(10)), cycle(range(12)), star(0, range(1, 10))):
            low, high = conductance_spectral_bounds(graph)
            exact = conductance_exact(graph)
            assert low <= exact + 1e-9
            assert exact <= high + 1e-9

    def test_spectral_bounds_zero_for_disconnected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert conductance_spectral_bounds(graph) == (0.0, 0.0)

    def test_conductance_estimate_matches_exact_for_small_graphs(self):
        graph = cycle(range(9))
        assert conductance_estimate(graph) == pytest.approx(conductance_exact(graph))


class TestDiligence:
    def test_star_is_one_diligent(self):
        graph = star(0, range(1, 10))
        assert diligence_exact(graph) == pytest.approx(1.0)

    def test_regular_graphs_are_one_diligent(self):
        for graph in (clique(range(7)), cycle(range(8))):
            assert diligence_exact(graph) == pytest.approx(1.0)

    def test_diligence_bounds_for_connected_graph(self):
        # 1/(n-1) <= rho(G) <= 1 for every connected G (paper, Section 1.1).
        graph = path(range(7))
        rho = diligence_exact(graph)
        n = graph.number_of_nodes()
        assert 1 / (n - 1) - 1e-12 <= rho <= 1 + 1e-12

    def test_disconnected_graph_has_zero_diligence(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert diligence_exact(graph) == 0.0

    def test_single_node_graph_has_diligence_one(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert diligence_exact(graph) == 1.0

    def test_diligence_of_cut_requires_smaller_side(self):
        graph = star(0, range(1, 8))
        with pytest.raises(ValueError):
            # The centre side has the larger volume... actually both have the
            # same volume here; use a clearly larger subset to trigger.
            diligence_of_cut(graph, set(range(8)) - {3})

    def test_diligence_of_cut_on_star_leaf(self):
        graph = star(0, range(1, 6))
        # Single leaf: average degree 1, crossing edge to the centre of degree 5.
        assert diligence_of_cut(graph, {1}) == pytest.approx(1.0)

    def test_sampled_diligence_upper_bounds_exact(self):
        graph = nx.lollipop_graph(6, 4)
        exact = diligence_exact(graph)
        sampled = diligence_sampled(graph, samples=300, rng=3)
        assert sampled >= exact - 1e-9

    def test_sampled_diligence_exactness_on_star(self):
        graph = star(0, range(1, 12))
        assert diligence_sampled(graph, samples=100, rng=1) == pytest.approx(1.0)


class TestAbsoluteDiligence:
    def test_star_absolute_diligence_is_one(self):
        graph = star(0, range(1, 9))
        assert absolute_diligence(graph) == pytest.approx(1.0)

    def test_clique_absolute_diligence(self):
        graph = clique(range(9))
        assert absolute_diligence(graph) == pytest.approx(1 / 8)

    def test_empty_graph_has_zero_absolute_diligence(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        assert absolute_diligence(graph) == 0.0

    def test_absolute_diligence_lower_bound(self):
        # For any nonempty graph, rho-bar >= 1/(n-1).
        graph = nx.lollipop_graph(5, 3)
        n = graph.number_of_nodes()
        assert absolute_diligence(graph) >= 1 / (n - 1) - 1e-12


class TestDegreeVariation:
    def test_constant_degrees_give_ratio_one(self):
        history = {0: [3, 3, 3], 1: [3, 3, 3]}
        assert degree_variation_ratio(history) == pytest.approx(1.0)

    def test_alternating_regular_complete_ratio(self):
        history = {u: [3, 99] for u in range(5)}
        assert degree_variation_ratio(history) == pytest.approx(33.0)

    def test_zero_degree_nodes_are_skipped(self):
        history = {0: [0, 5], 1: [2, 4]}
        assert degree_variation_ratio(history) == pytest.approx(2.0)

    def test_all_zero_minimum_raises(self):
        with pytest.raises(ValueError):
            degree_variation_ratio({0: [0, 3]})


class TestMeasureGraph:
    def test_small_graph_measured_exactly(self):
        metrics = measure_graph(star(0, range(1, 8)))
        assert metrics.exact
        assert metrics.connected
        assert metrics.conductance == pytest.approx(1.0)
        assert metrics.diligence == pytest.approx(1.0)
        assert metrics.absolute_diligence == pytest.approx(1.0)
        assert metrics.conductance_indicator() == 1

    def test_large_graph_uses_estimates(self):
        metrics = measure_graph(clique(range(30)), rng=0)
        assert not metrics.exact
        assert metrics.connected
        assert metrics.absolute_diligence == pytest.approx(1 / 29)

    def test_disconnected_indicator_is_zero(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        metrics = measure_graph(graph)
        assert not metrics.connected
        assert metrics.conductance_indicator() == 0
