"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, path, star


@pytest.fixture
def rng():
    """A deterministic generator shared by tests that need one."""
    return np.random.default_rng(12345)


@pytest.fixture
def async_process():
    """A default asynchronous push–pull process (boundary engine)."""
    return AsynchronousRumorSpreading()


@pytest.fixture
def sync_process():
    """A default synchronous push–pull process."""
    return SynchronousRumorSpreading()


@pytest.fixture
def small_clique_network():
    """K_10 viewed as a dynamic network."""
    return StaticDynamicNetwork(clique(range(10)))


@pytest.fixture
def small_path_network():
    """A 6-node path viewed as a dynamic network."""
    return StaticDynamicNetwork(path(range(6)))


@pytest.fixture
def small_star_network():
    """A 9-node star (centre 0) viewed as a dynamic network."""
    return StaticDynamicNetwork(star(0, range(1, 9)))


@pytest.fixture
def small_cycle_network():
    """An 8-node cycle viewed as a dynamic network."""
    return StaticDynamicNetwork(cycle(range(8)))
