"""Unit tests for the oblivious dynamic network wrappers."""

import networkx as nx
import pytest

from repro.dynamics.sequences import (
    CallableDynamicNetwork,
    ExplicitSequenceNetwork,
    PeriodicSequenceNetwork,
    StaticDynamicNetwork,
)
from repro.graphs.generators import clique, cycle, path, star
from repro.graphs.metrics import GraphMetrics


class TestStaticDynamicNetwork:
    def test_every_step_returns_the_same_graph(self):
        network = StaticDynamicNetwork(cycle(range(6)))
        network.reset(0)
        graphs = [network.graph_for_step(t, frozenset()) for t in range(3)]
        assert graphs[0] is graphs[1] is graphs[2]

    def test_small_graph_metrics_are_precomputed(self):
        network = StaticDynamicNetwork(star(0, range(1, 6)))
        metrics = network.known_step_metrics(0)
        assert metrics is not None
        assert metrics.conductance == pytest.approx(1.0)

    def test_explicit_metrics_override(self):
        metrics = GraphMetrics(
            conductance=0.1, diligence=0.2, absolute_diligence=0.3, connected=True, n=6
        )
        network = StaticDynamicNetwork(cycle(range(6)), metrics=metrics)
        assert network.known_step_metrics(5) is metrics

    def test_large_graph_metrics_not_precomputed(self):
        network = StaticDynamicNetwork(clique(range(30)))
        assert network.known_step_metrics(0) is None

    def test_input_graph_is_copied(self):
        graph = path(range(5))
        network = StaticDynamicNetwork(graph)
        graph.add_edge(0, 4)
        network.reset(0)
        assert not network.graph_for_step(0, frozenset()).has_edge(0, 4)


class TestExplicitSequenceNetwork:
    def test_holds_last_snapshot_by_default(self):
        graphs = [path(range(4)), cycle(range(4))]
        network = ExplicitSequenceNetwork(graphs)
        network.reset(0)
        assert network.graph_for_step(0, frozenset()).number_of_edges() == 3
        assert network.graph_for_step(1, frozenset()).number_of_edges() == 4
        assert network.graph_for_step(7, frozenset()).number_of_edges() == 4

    def test_cycle_mode_wraps_around(self):
        graphs = [path(range(4)), cycle(range(4))]
        network = ExplicitSequenceNetwork(graphs, cycle=True)
        network.reset(0)
        assert network.graph_for_step(2, frozenset()).number_of_edges() == 3
        assert network.graph_for_step(3, frozenset()).number_of_edges() == 4

    def test_rejects_mismatched_node_sets(self):
        with pytest.raises(ValueError):
            ExplicitSequenceNetwork([path(range(4)), path(range(5))])

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            ExplicitSequenceNetwork([])

    def test_metrics_align_with_snapshots(self):
        metrics = [
            GraphMetrics(conductance=0.5, diligence=1.0, absolute_diligence=0.5, connected=True, n=4),
            None,
        ]
        network = ExplicitSequenceNetwork([path(range(4)), cycle(range(4))], metrics=metrics)
        assert network.known_step_metrics(0).conductance == 0.5
        assert network.known_step_metrics(1) is None
        assert network.known_step_metrics(9) is None

    def test_metrics_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSequenceNetwork([path(range(4))], metrics=[None, None])


class TestPeriodicSequenceNetwork:
    def test_alternation(self):
        network = PeriodicSequenceNetwork([path(range(4)), cycle(range(4))])
        network.reset(0)
        edge_counts = [
            network.graph_for_step(t, frozenset()).number_of_edges() for t in range(4)
        ]
        assert edge_counts == [3, 4, 3, 4]


class TestCallableDynamicNetwork:
    def test_builder_receives_step_index(self):
        def builder(t):
            graph = path(range(5))
            if t % 2 == 1:
                graph.add_edge(0, 4)
            return graph

        network = CallableDynamicNetwork(list(range(5)), builder)
        network.reset(0)
        assert not network.graph_for_step(0, frozenset()).has_edge(0, 4)
        assert network.graph_for_step(1, frozenset()).has_edge(0, 4)

    def test_metrics_callable(self):
        metrics = GraphMetrics(
            conductance=0.25, diligence=1.0, absolute_diligence=0.5, connected=True, n=5
        )
        network = CallableDynamicNetwork(
            list(range(5)), lambda t: path(range(5)), metrics=lambda t: metrics if t == 0 else None
        )
        assert network.known_step_metrics(0) is metrics
        assert network.known_step_metrics(1) is None

    def test_wrong_node_set_from_builder_is_caught(self):
        network = CallableDynamicNetwork(list(range(5)), lambda t: path(range(6)))
        network.reset(0)
        with pytest.raises(ValueError):
            network.graph_for_step(0, frozenset())
