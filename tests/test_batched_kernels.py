"""Bit-identity and exactness tests for the batched race kernels.

Three contracts, each checked with exact float equality (no tolerances):

* the scalar per-trial race kernel (the numba-compiled path, run here under
  CPython by forcing ``HAVE_NUMBA``) and the numpy lockstep fallback produce
  **bit-identical** trial results, across fault families and variants;
* the crash-boundary rate rebuild kernel matches the engine's ``reduceat``
  path entry for entry;
* the batched first-passage solver matches a heap Dijkstra reference row by
  row, including crash clips and horizon censoring, and is invariant to the
  ordered-expansion fraction.

Plus a distributional cross-check pitting the two independent general-graph
strategies (``method="race"`` vs ``method="percolation"``) against each other.
"""

import math
import statistics

import networkx as nx
import numpy as np
import pytest

from repro.core import kernels
from repro.core import percolation
from repro.core.batched import BatchedRumorSpreading
from repro.core.faults import FaultModel
from repro.core.percolation import (
    entry_transmission_rates,
    first_passage_times,
    first_passage_times_reference,
)
from repro.core.variants import Variant
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, path, star


def snapshot_of(graph, source=0):
    network = StaticDynamicNetwork(graph)
    network.reset(None)
    return network.snapshot_for_step(0, {source})


def race_trials(graph, trials, seed, max_time=None, **process_kwargs):
    process = BatchedRumorSpreading(method="race", **process_kwargs)
    return process.run_batch(
        StaticDynamicNetwork(graph), trials, rng=seed, max_time=max_time
    )


SCENARIOS = [
    ("plain_cycle", lambda: cycle(range(9)), {}, None),
    ("star_push", lambda: star(0, range(1, 8)), {"variant": Variant.PUSH}, None),
    ("drops", lambda: clique(range(8)), {"faults": FaultModel(drop_probability=0.3)}, None),
    (
        "initial_crash",
        lambda: clique(range(7)),
        {"faults": FaultModel(crashed_nodes=frozenset({2}))},
        None,
    ),
    (
        "scheduled_crashes",
        lambda: clique(range(8)),
        {"faults": FaultModel(crash_times={3: 0.4, 5: 1.1})},
        None,
    ),
    (
        "drops_and_crash",
        lambda: path(range(10)),
        {"faults": FaultModel(drop_probability=0.2, crash_times={4: 1.0})},
        6.0,
    ),
    ("censored", lambda: path(range(16)), {}, 1.5),
    (
        "disconnected_stall",
        lambda: nx.union(path(range(4)), path(range(4, 7))),
        {},
        4.0,
    ),
]


class TestRaceKernelBitIdentity:
    """Scalar per-trial kernel == numpy lockstep, trial for trial, bit for bit."""

    @pytest.mark.parametrize(
        "name,graph_factory,process_kwargs,max_time",
        SCENARIOS,
        ids=[s[0] for s in SCENARIOS],
    )
    def test_scalar_and_lockstep_paths_match_exactly(
        self, monkeypatch, name, graph_factory, process_kwargs, max_time
    ):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        scalar = race_trials(graph_factory(), 12, 42, max_time, **process_kwargs)
        monkeypatch.setattr(kernels, "HAVE_NUMBA", False)
        lockstep = race_trials(graph_factory(), 12, 42, max_time, **process_kwargs)
        for res_s, res_l in zip(scalar, lockstep):
            assert res_s.informed_times == res_l.informed_times
            assert res_s.spread_time == res_l.spread_time
            assert res_s.completed == res_l.completed
            assert res_s.steps_used == res_l.steps_used

    def test_kernel_wiring_without_numba(self):
        if kernels.HAVE_NUMBA:
            pytest.skip("numba installed: compiled objects replace the plain functions")
        assert kernels.batched_trial_segment is kernels.batched_trial_segment_reference
        assert kernels.batched_rebuild is kernels.batched_rebuild_reference


class TestRebuildKernelIdentity:
    """The crash-boundary rebuild kernel equals the reduceat rebuild exactly."""

    @pytest.mark.parametrize(
        "graph",
        [clique(range(9)), cycle(range(11)), star(0, range(1, 8)), path(range(6))],
        ids=["clique", "cycle", "star", "path"],
    )
    @pytest.mark.parametrize("delivery", [1.0, 0.55], ids=["lossless", "drops"])
    def test_matches_reduceat_rebuild(self, graph, delivery):
        snapshot = snapshot_of(graph)
        n = snapshot.n
        gen = np.random.default_rng(7)
        trials = 5
        informed = gen.random((trials, n)) < 0.4
        informed[:, 0] = True  # a source is always informed
        down = gen.random(n) < 0.2

        drop = 1.0 - delivery
        process = BatchedRumorSpreading(faults=FaultModel(drop_probability=drop))
        expected = process._batch_rates(snapshot, informed, down)

        out = np.empty((trials, n))
        a, b = process.variant.rate_coefficients()
        kernels.batched_rebuild_reference(
            snapshot.indptr,
            snapshot.indices,
            snapshot.inverse_degrees,
            informed,
            down,
            a,
            b,
            delivery,
            out,
        )
        assert np.array_equal(expected, out)


def random_snapshot_and_delays(seed, n=40, p=0.12, trials=4):
    graph = nx.gnp_random_graph(n, p, seed=seed)
    graph.add_nodes_from(range(n))  # keep isolated nodes (inf rows)
    snapshot = snapshot_of(graph)
    gen = np.random.default_rng(seed + 1)
    m = int(snapshot.indices.size)
    delays = gen.standard_exponential((trials, m))
    delays /= entry_transmission_rates(snapshot, 1.0, 1.0, 1.0)[None, :]
    return snapshot, delays, gen


class TestFirstPassageExactness:
    """The vectorised frontier solver is bit-identical to heap Dijkstra."""

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_matches_dijkstra_reference(self, seed):
        snapshot, delays, _ = random_snapshot_and_delays(seed)
        times = first_passage_times(
            snapshot.indptr, snapshot.indices, snapshot.degrees, delays, 0
        )
        for t in range(delays.shape[0]):
            reference = first_passage_times_reference(
                snapshot.indptr, snapshot.indices, delays[t], 0
            )
            assert np.array_equal(times[t], reference)

    @pytest.mark.parametrize("seed", [5, 23])
    def test_matches_reference_with_clip_and_limit(self, seed):
        snapshot, delays, gen = random_snapshot_and_delays(seed)
        theta = np.where(gen.random(snapshot.n) < 0.3, gen.random(snapshot.n) * 3.0, np.inf)
        clip = np.minimum(theta[snapshot.row_owner], theta[snapshot.indices])
        limit = 2.5
        times = first_passage_times(
            snapshot.indptr,
            snapshot.indices,
            snapshot.degrees,
            delays,
            0,
            clip=clip,
            limit=limit,
        )
        assert np.all(times[np.isfinite(times)] < limit)
        for t in range(delays.shape[0]):
            reference = first_passage_times_reference(
                snapshot.indptr, snapshot.indices, delays[t], 0, clip=clip, limit=limit
            )
            assert np.array_equal(times[t], reference)

    def test_result_invariant_to_expansion_order(self, monkeypatch):
        # Any expansion schedule converges to the same fixed point bit for
        # bit: every finite time is the same left-associated delay sum.
        snapshot, delays, _ = random_snapshot_and_delays(29)
        baseline = first_passage_times(
            snapshot.indptr, snapshot.indices, snapshot.degrees, delays, 0
        )
        for fraction in (1.0, 0.5, 0.05):
            monkeypatch.setattr(percolation, "EXPAND_FRACTION", fraction)
            monkeypatch.setattr(percolation, "ORDERED_EXPANSION_MIN", 0)
            again = first_passage_times(
                snapshot.indptr, snapshot.indices, snapshot.degrees, delays, 0
            )
            assert np.array_equal(baseline, again)

    def test_zero_horizon_informs_only_the_source(self):
        snapshot, delays, _ = random_snapshot_and_delays(11)
        times = first_passage_times(
            snapshot.indptr, snapshot.indices, snapshot.degrees, delays, 0, limit=0.0
        )
        assert np.all(times[:, 0] == 0.0)
        assert np.all(np.isinf(times[:, 1:]))


class TestRaceVersusPercolation:
    """The two independent general-graph strategies agree in distribution."""

    @staticmethod
    def spread_times(graph, trials, seed, method, **process_kwargs):
        process = BatchedRumorSpreading(method=method, **process_kwargs)
        results = process.run_batch(StaticDynamicNetwork(graph), trials, rng=seed)
        return [r.spread_time for r in results]

    @pytest.mark.parametrize(
        "name,graph_factory,process_kwargs",
        [
            ("cycle", lambda: cycle(range(9)), {}),
            ("drops", lambda: clique(range(8)), {"faults": FaultModel(drop_probability=0.3)}),
            (
                "scheduled_crash",
                lambda: clique(range(8)),
                {"faults": FaultModel(crash_times={3: 0.75})},
            ),
        ],
        ids=["cycle", "drops", "scheduled_crash"],
    )
    def test_methods_agree_in_distribution(self, name, graph_factory, process_kwargs):
        trials = 150
        race = self.spread_times(graph_factory(), trials, 100, "race", **process_kwargs)
        perc = self.spread_times(
            graph_factory(), trials, 200, "percolation", **process_kwargs
        )
        mean_r, std_r = statistics.fmean(race), statistics.stdev(race)
        mean_p, std_p = statistics.fmean(perc), statistics.stdev(perc)
        standard_error = math.sqrt(std_r**2 / trials + std_p**2 / trials)
        assert abs(mean_r - mean_p) < 5 * standard_error + 0.05

    def test_method_validation(self):
        with pytest.raises(ValueError, match="method"):
            BatchedRumorSpreading(method="magic")
