"""Public-API contract snapshot: ``repro.api.__all__`` plus key signatures.

The point of ``repro.api`` is to be the *stable* surface everything else —
programs, scenario files, the CLI, future distributed backends — builds on.
These tests freeze the exported names and the signatures of the load-bearing
callables; an accidental rename, a dropped parameter or a changed default
fails here before it breaks downstream users.  Intentional changes must
update the snapshots below (that is the contract-review moment).
"""

import inspect

import pytest

from repro import api

#: Frozen export list.  Additions are append-only; removals/renames are
#: breaking changes and need a deliberate snapshot update.
EXPECTED_ALL = [
    "CIWidthRule",
    "ChaosMonkey",
    "Check",
    "CheckReport",
    "CheckResult",
    "EventLog",
    "ExecutionReport",
    "LocalDirSink",
    "MemorySink",
    "NetworkLike",
    "NullSink",
    "ObserverChain",
    "ResultSink",
    "RetryPolicy",
    "RunBuilder",
    "RunObserver",
    "RunResult",
    "RunSpec",
    "ServiceClient",
    "ServiceError",
    "StructuredObserver",
    "SweepFrame",
    "TrialSet",
    "bind_point",
    "evaluate_checks",
    "event_to_dict",
    "payload_checksum",
    "run",
    "sink_from_url",
    "sweep_scenario",
]

#: Frozen parameter lists (names in declaration order) of the entry points.
EXPECTED_SIGNATURES = {
    "run": [
        "network",
        "params",
        "algorithm",
        "variant",
        "engine",
        "faults",
        "seed",
        "network_seed",
        "source",
        "max_time",
        "family_params",
    ],
    "RunBuilder.trials": ["self", "count", "until_ci_width", "max_trials"],
    "RunBuilder.workers": ["self", "count"],
    "RunBuilder.sweep": ["self", "values", "name", "source_for", "extras_for"],
    "RunBuilder.once": ["self", "recorder", "rng"],
    "RunBuilder.collect": ["self"],
    "RunBuilder.observe": ["self", "observers"],
    "bind_point": ["point", "max_time"],
    "sweep_scenario": ["scenario"],
    "sink_from_url": ["url"],
    # The typed service client: programs/tests speak these methods instead of
    # hand-rolled urllib calls, so their shapes are part of the contract.
    "ServiceClient": ["base_url", "timeout"],
    "ServiceClient.submit": ["self", "scenarios"],
    "ServiceClient.run": ["self", "run_id"],
    "ServiceClient.events": ["self", "run_id", "start", "timeout"],
    "ServiceClient.wait": ["self", "run_id", "timeout"],
    "ServiceClient.artifact": ["self", "key", "raw"],
    "ServiceClient.store_artifact": ["self", "key", "spec", "kind", "payload", "checksum"],
    "ServiceClient.register_worker": ["self", "name"],
    "ServiceClient.acquire_leases": ["self", "worker", "max_points"],
    "ServiceClient.report_lease": ["self", "lease_id", "worker", "ok", "error", "cached"],
}

#: Frozen observer hook names: the streaming protocol both engines feed.
EXPECTED_OBSERVER_HOOKS = {
    "on_snapshot": ["self", "step", "snapshot", "informed_count"],
    "on_event": ["self", "time", "node", "informed_count"],
    "on_round": ["self", "round_index", "informed_count"],
    "on_complete": ["self", "result"],
    "on_trial": ["self", "index", "result"],
}


def _params(callable_):
    return list(inspect.signature(callable_).parameters)


class TestExportSnapshot:
    def test_all_is_frozen(self):
        assert list(api.__all__) == EXPECTED_ALL

    def test_every_export_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_run_returns_builder(self):
        assert isinstance(api.run(network="clique", n=8), api.RunBuilder)


class TestSignatureSnapshot:
    @pytest.mark.parametrize("dotted, expected", sorted(EXPECTED_SIGNATURES.items()))
    def test_signature(self, dotted, expected):
        target = api
        for part in dotted.split("."):
            target = getattr(target, part)
        assert _params(target) == expected, f"signature of {dotted} changed"

    def test_default_algorithm_engine_variant(self):
        spec = api.run(network="clique", n=8).spec
        assert (spec.algorithm, spec.variant, spec.engine) == (
            "async",
            "push-pull",
            "boundary",
        )
        assert spec.trials == 1 and spec.workers == 1

    def test_observer_hooks_frozen(self):
        for hook, expected in EXPECTED_OBSERVER_HOOKS.items():
            assert _params(getattr(api.RunObserver, hook)) == expected

    def test_result_sink_interface_frozen(self):
        assert _params(api.ResultSink.load) == ["self", "key", "spec"]
        assert _params(api.ResultSink.store) == ["self", "key", "spec", "kind", "payload"]
        assert _params(api.ResultSink.keys) == ["self"]
        assert _params(api.ResultSink.artifact) == ["self", "key"]
        assert _params(api.ResultSink.__contains__) == ["self", "key"]

    def test_results_expose_as_dict(self):
        for result_type in (api.RunResult, api.TrialSet, api.SweepFrame):
            assert callable(getattr(result_type, "as_dict"))


class TestBuilderImmutability:
    def test_configuration_returns_new_builder(self):
        base = api.run(network="clique", n=8)
        configured = base.trials(3).workers(2).seed(1)
        assert configured is not base
        assert base.spec.trials == 1 and configured.spec.trials == 3
        # the original is untouched and still usable
        assert base.spec.workers == 1

    def test_validation_is_shared_across_terminals(self):
        # the same invalid combination fails identically for collect and sweep
        bad = api.run(network="clique", n=8, algorithm="sync").engine("naive")
        with pytest.raises(ValueError, match="asynchronous"):
            bad.collect()
        with pytest.raises(ValueError, match="asynchronous"):
            bad.sweep([8, 12])
        with pytest.raises(ValueError, match="asynchronous"):
            bad.once()
