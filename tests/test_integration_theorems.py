"""Integration tests: small-scale checks of the paper's headline claims.

These are deliberately tiny versions of the benchmark experiments so the unit
test suite exercises the full pipeline (construction → simulation → bound
evaluation) without taking benchmark-level time.
"""

import math

import pytest

from repro.analysis.trials import run_trials
from repro.bounds.theorems import universal_quadratic_bound
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading
from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.diligent import DiligentDynamicNetwork
from repro.experiments.theorem_1_1 import (
    constant_rate_theorem_1_1_bound,
    constant_rate_theorem_1_3_bound,
)
from repro.experiments.standard_networks import static_clique_network, static_star_network


class TestTheorem11SmallScale:
    def test_clique_spread_is_within_both_bounds(self):
        n = 24
        summary = run_trials(
            AsynchronousRumorSpreading().run,
            lambda: static_clique_network(n),
            trials=8,
            rng=0,
        )
        assert summary.completion_rate == 1.0
        assert summary.whp_spread_time <= constant_rate_theorem_1_1_bound(0.5, 1.0, n)
        assert summary.whp_spread_time <= constant_rate_theorem_1_3_bound(1 / (n - 1), n)

    def test_star_spread_is_within_absolute_bound(self):
        n = 24
        summary = run_trials(
            AsynchronousRumorSpreading().run,
            lambda: static_star_network(n),
            trials=8,
            rng=1,
        )
        assert summary.whp_spread_time <= constant_rate_theorem_1_3_bound(1.0, n)


class TestRemark14SmallScale:
    def test_adversarial_connected_network_finishes_within_quadratic_bound(self):
        network_factory = lambda: AbsolutelyDiligentNetwork(48, 0.25)
        summary = run_trials(
            AsynchronousRumorSpreading().run, network_factory, trials=4, rng=2
        )
        assert summary.completion_rate == 1.0
        assert summary.maximum <= universal_quadratic_bound(48)


class TestTheorem12SmallScale:
    def test_diligent_family_is_slower_than_its_lower_prediction_scale(self):
        network_factory = lambda: DiligentDynamicNetwork(120, 0.5, rng=3)
        probe = network_factory()
        summary = run_trials(
            AsynchronousRumorSpreading().run, network_factory, trials=4, rng=3
        )
        assert summary.completion_rate == 1.0
        # The construction's whole point: the spread time is a constant
        # fraction of n/(4kΔ) or more.
        assert summary.mean >= 0.2 * probe.predicted_lower_bound()


class TestTheorem17SmallScale:
    def test_dynamic_star_sync_exactly_n_rounds(self):
        result = SynchronousRumorSpreading().run(DynamicStarNetwork(15), rng=4)
        assert result.spread_time == 15.0

    def test_dynamic_star_async_much_faster_than_sync(self):
        n = 40
        async_summary = run_trials(
            AsynchronousRumorSpreading().run, lambda: DynamicStarNetwork(n), trials=10, rng=5
        )
        assert async_summary.mean < n / 3

    def test_clique_bridge_async_slower_than_sync(self):
        n = 40
        async_summary = run_trials(
            AsynchronousRumorSpreading().run, lambda: CliqueBridgeNetwork(n), trials=20, rng=6
        )
        sync_summary = run_trials(
            SynchronousRumorSpreading().run, lambda: CliqueBridgeNetwork(n), trials=20, rng=7
        )
        assert async_summary.mean > sync_summary.mean
