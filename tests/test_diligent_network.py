"""Unit tests for the Theorem 1.2 adaptive network G(n, rho)."""

import math

import networkx as nx
import pytest

from repro.dynamics.diligent import DiligentDynamicNetwork, default_chain_length


class TestDefaults:
    def test_default_chain_length_grows_slowly(self):
        assert default_chain_length(100) >= 1
        assert default_chain_length(10_000) >= default_chain_length(100)
        assert default_chain_length(10_000) <= 10

    def test_default_chain_length_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            default_chain_length(1)


class TestConstruction:
    def test_basic_parameters(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=0)
        assert network.n == 160
        assert network.delta == 4
        assert network.k == default_chain_length(160)

    def test_rejects_too_small_n(self):
        with pytest.raises(ValueError):
            DiligentDynamicNetwork(30, 0.25)

    def test_rejects_incompatible_rho(self):
        # rho so small that |B| cannot host the chain plus an expander.
        with pytest.raises(ValueError):
            DiligentDynamicNetwork(60, 0.01)

    def test_rejects_invalid_rho(self):
        with pytest.raises(ValueError):
            DiligentDynamicNetwork(160, 0.0)
        with pytest.raises(ValueError):
            DiligentDynamicNetwork(160, 1.5)

    def test_default_source_is_in_part_a_expander(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=0)
        source = network.default_source()
        network.reset(0)
        network.graph_for_step(0, frozenset({source}))
        assert source in set(range(160 // 4))  # part A initially is nodes 0..n/4-1
        assert source >= network.delta  # not in S_0

    def test_initial_snapshot_is_connected_with_right_nodes(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=1)
        network.reset(1)
        graph = network.graph_for_step(0, frozenset({network.default_source()}))
        assert set(graph.nodes()) == set(range(160))
        assert nx.is_connected(graph)


class TestAdaptivity:
    def test_snapshot_kept_when_b_does_not_shrink(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=2)
        network.reset(2)
        informed = frozenset({network.default_source()})
        first = network.graph_for_step(0, informed)
        second = network.graph_for_step(1, informed)
        # No B-node was informed, so the snapshot must be reused verbatim.
        assert second is first

    def test_snapshot_rebuilt_when_b_shrinks(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=3)
        network.reset(3)
        source = network.default_source()
        first = network.graph_for_step(0, frozenset({source}))
        # Inform a couple of B-side nodes (B initially is nodes n/4 .. n-1).
        informed = frozenset({source, 60, 61, 62})
        second = network.graph_for_step(1, informed)
        assert second is not first
        # The freshly informed B nodes must now sit on the A side: they are no
        # longer in any cluster S_1..S_k nor in the B expander; equivalently
        # the current B part excludes them.
        assert not (set(network._part_b) & set(informed))

    def test_rebuild_stops_when_b_reaches_quarter(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=4)
        network.reset(4)
        source = network.default_source()
        first = network.graph_for_step(0, frozenset({source}))
        # Inform so many B nodes that |B| would fall below n/4.
        informed = frozenset(range(0, 140))
        second = network.graph_for_step(1, informed)
        assert second is first

    def test_known_metrics_match_observation_4_1(self):
        network = DiligentDynamicNetwork(160, 0.25, rng=5)
        network.reset(5)
        network.graph_for_step(0, frozenset({network.default_source()}))
        metrics = network.known_step_metrics(0)
        delta = network.delta
        assert metrics.diligence == pytest.approx(1 / delta)
        assert metrics.conductance == pytest.approx(
            delta**2 / (network.k * delta**2 + 160)
        )
        assert metrics.connected

    def test_predictions_are_positive_and_ordered(self):
        network = DiligentDynamicNetwork(200, 0.2, rng=6)
        lower = network.predicted_lower_bound()
        upper = network.predicted_upper_bound()
        assert 0 < lower
        assert lower < upper
