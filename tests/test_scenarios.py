"""Tests for the declarative scenario subsystem (dataclass + network registry)."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    Scenario,
    build_network,
    get_network_family,
    network_families,
    scenario_seed,
)
from repro.scenarios.networks import REQUIRED


class TestNetworkRegistry:
    #: Small, fast-to-build instance parameters per family.
    SMOKE_PARAMS = {
        "clique": {"n": 8},
        "star": {"n": 8},
        "cycle": {"n": 8},
        "path": {"n": 8},
        "expander": {"n": 10, "degree": 4},
        "erdos-renyi": {"n": 20, "p": 0.3},
        "dynamic-star": {"n": 8},
        "clique-bridge": {"n": 8},
        "diligent": {"n": 120, "rho": 0.5},
        "absolute-diligent": {"n": 48, "rho": 0.25},
        "edge-markovian": {"n": 8},
        "mobile-agents": {"n": 8, "side": 5},
        "alternating-regular-complete": {"n": 10},
    }

    def test_every_family_builds(self):
        for name in network_families():
            network = build_network(name, rng=0, **self.SMOKE_PARAMS[name])
            assert network.n >= 1
            network.reset(0)
            network.graph_for_step(0, frozenset())

    def test_smoke_params_cover_registry(self):
        assert set(self.SMOKE_PARAMS) == set(network_families())

    def test_unknown_family_lists_known_names(self):
        with pytest.raises(ValueError, match="clique"):
            get_network_family("hypercube")

    def test_unknown_param_rejected_with_declared_names(self):
        with pytest.raises(ValueError, match="rho"):
            build_network("clique", n=8, rho=0.5)

    def test_missing_required_param_rejected(self):
        with pytest.raises(ValueError, match="requires"):
            build_network("clique")

    def test_every_declared_default_is_json_or_required(self):
        for name in network_families():
            for value in get_network_family(name).defaults.values():
                assert value is REQUIRED or isinstance(value, (int, float, str))


# -- property-based dict/JSON round-trip -------------------------------------

_network_strategy = st.sampled_from([None, "clique", "diligent", "edge-markovian"])

_params_for = {
    None: st.just({}),
    "clique": st.just({}),
    "diligent": st.fixed_dictionaries({}, optional={"rho": st.floats(0.1, 1.0)}),
    "edge-markovian": st.fixed_dictionaries(
        {}, optional={"birth": st.floats(0.01, 0.99), "death": st.floats(0.01, 0.99)}
    ),
}

_faults_strategy = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {},
        optional={
            "drop_probability": st.floats(0.0, 0.9),
            "crashed_nodes": st.lists(st.integers(0, 30), max_size=3, unique=True),
            "crash_times": st.dictionaries(
                st.integers(0, 30).map(str), st.floats(0.0, 50.0), max_size=3
            ),
        },
    ),
)


@st.composite
def scenarios_strategy(draw):
    network = draw(_network_strategy)
    algorithm = draw(st.sampled_from(["async", "sync"]))
    if algorithm == "sync":
        variant, engine = "push-pull", "boundary"
    else:
        variant = draw(st.sampled_from(["push-pull", "push", "pull", "2-push"]))
        engine = draw(st.sampled_from(["boundary", "naive"]))
    sweep = draw(
        st.lists(st.integers(2, 500), min_size=0, max_size=4, unique=True).map(tuple)
    )
    if network is not None and not sweep:
        params = {"n": draw(st.integers(40, 200)), **draw(_params_for[network])}
    else:
        params = draw(_params_for[network])
    return Scenario(
        label=draw(st.text(min_size=1, max_size=20)),
        kind="trials",
        network=network,
        params=params,
        sweep_name="n",
        sweep=sweep,
        algorithm=algorithm,
        variant=variant,
        engine=engine,
        faults=draw(_faults_strategy),
        trials=draw(st.integers(1, 100)),
        seed=draw(st.integers(0, 2**40)),
        max_time=draw(st.one_of(st.none(), st.floats(1.0, 1e6))),
        options=draw(
            st.fixed_dictionaries({}, optional={"whp_quantile": st.floats(0.5, 0.99)})
        ),
    )


class TestScenarioRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenario=scenarios_strategy())
    def test_dict_round_trip(self, scenario):
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario

    @settings(max_examples=60, deadline=None)
    @given(scenario=scenarios_strategy())
    def test_json_round_trip(self, scenario):
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt == scenario
        # The JSON form itself must be pure JSON (lists, dicts, scalars).
        json.loads(scenario.to_json())

    @settings(max_examples=30, deadline=None)
    @given(scenario=scenarios_strategy())
    def test_point_specs_are_stable(self, scenario):
        first = [point.spec() for point in scenario.points()]
        second = [point.spec() for point in scenario.points()]
        assert first == second
        keys = [point.cache_key() for point in scenario.points()]
        assert len(set(keys)) == len(keys)


class TestScenarioValidation:
    def test_sync_with_variant_rejected(self):
        with pytest.raises(ValueError, match="asynchronous"):
            Scenario(label="bad", network="clique", params={"n": 8},
                     algorithm="sync", variant="push")

    def test_sync_with_engine_rejected(self):
        with pytest.raises(ValueError, match="asynchronous"):
            Scenario(label="bad", network="clique", params={"n": 8},
                     algorithm="sync", engine="naive")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            Scenario(label="bad", algorithm="quantum")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            Scenario(label="bad", variant="telepathy")

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="known families"):
            Scenario(label="bad", network="hypercube", sweep=(8,))

    def test_unknown_network_param_rejected(self):
        with pytest.raises(ValueError, match="does not take"):
            Scenario(label="bad", network="clique", params={"rho": 0.5}, sweep=(8,))

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            Scenario.from_dict({"label": "x", "workers": 4})

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            Scenario(label="bad", faults={"nuke_probability": 1.0})


class TestScenarioPoints:
    def test_sweep_expands_in_order(self):
        scenario = Scenario(label="s", network="clique", sweep=(8, 16, 32), seed=1)
        points = scenario.points()
        assert [point.value for point in points] == [8, 16, 32]
        assert [point.index for point in points] == [0, 1, 2]

    def test_empty_sweep_is_single_point(self):
        scenario = Scenario(label="s", network="clique", params={"n": 8}, seed=1)
        points = scenario.points()
        assert len(points) == 1
        assert points[0].value is None
        assert points[0].network_params() == {"n": 8}

    def test_point_networks_are_deterministic(self):
        scenario = Scenario(label="s", network="expander", sweep=(12,), seed=5)
        point = scenario.points()[0]
        first = point.build_network()
        second = point.build_network()
        first.reset(0)
        second.reset(0)
        assert set(first.graph_for_step(0, frozenset()).edges()) == set(
            second.graph_for_step(0, frozenset()).edges()
        )

    def test_fault_model_coerces_json_node_labels(self):
        scenario = Scenario(
            label="s",
            network="clique",
            params={"n": 8},
            faults={"drop_probability": 0.1, "crashed_nodes": [2], "crash_times": {"3": 1.5}},
        )
        model = Scenario.from_json(scenario.to_json()).fault_model()
        assert model.drop_probability == pytest.approx(0.1)
        assert model.crashed_nodes == frozenset({2})
        assert model.crash_times == {3: 1.5}

    def test_seed_policy_differs_across_points_and_scenarios(self):
        a = Scenario(label="a", network="clique", sweep=(8, 16), seed=scenario_seed(0, 0))
        b = Scenario(label="b", network="clique", sweep=(8, 16), seed=scenario_seed(0, 1))
        keys = {point.cache_key() for point in a.points()} | {
            point.cache_key() for point in b.points()
        }
        assert len(keys) == 4

    def test_scenario_seed_is_deterministic(self):
        assert scenario_seed(2020, 3) == scenario_seed(2020, 3)
        assert scenario_seed(2020, 3) != scenario_seed(2020, 4)
        assert scenario_seed(2020, 3) != scenario_seed(2021, 3)


class TestMeasurementRegistry:
    def test_unknown_kind_rejected_at_version_lookup(self):
        from repro.scenarios import measurement_version

        with pytest.raises(ValueError, match="known kinds"):
            measurement_version("teleport")

    def test_known_kinds_present(self):
        from repro.scenarios import measurement_kinds

        assert {"trials", "tabs_trials", "bound_series", "hk_snapshot",
                "two_push_chain", "sequence_bound_estimate"} <= set(measurement_kinds())

    def test_trials_payload_shape(self):
        from repro.scenarios import measure_point

        scenario = Scenario(label="s", network="clique", sweep=(8,), trials=3, seed=0)
        payload = measure_point(scenario.points()[0])
        assert payload["n"] == 8
        assert len(payload["spread_times"]) == 3
        assert math.isfinite(payload["summary"]["mean"])
