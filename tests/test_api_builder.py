"""Tests for the fluent builder, typed results, sinks and scenario bindings."""

import json
import warnings

import numpy as np
import pytest

from repro import api
from repro.core.faults import FaultModel, fault_model_from_data
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique
from repro.scenarios import ExperimentPipeline, Scenario


class TestNetworkForms:
    def test_family_name_with_params(self):
        trial_set = api.run(network="clique", n=12, seed=0).trials(3).collect()
        assert trial_set.nodes == 12 and trial_set.trials == 3

    def test_instance(self):
        network = StaticDynamicNetwork(clique(range(9)))
        result = api.run(network=network, seed=0).once()
        assert result.n == 9 and result.completed

    def test_factory_callable(self):
        trial_set = (
            api.run(network=lambda: StaticDynamicNetwork(clique(range(7))), seed=0)
            .trials(2)
            .collect()
        )
        assert trial_set.nodes == 7

    def test_unknown_family_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown network family"):
            api.run(network="hypercube", n=8).collect()

    def test_unknown_family_param_rejected(self):
        with pytest.raises(ValueError, match="does not take"):
            api.run(network="clique", n=8, rho=0.5).collect()

    def test_params_reject_non_family_networks(self):
        network = StaticDynamicNetwork(clique(range(5)))
        with pytest.raises(ValueError, match="family name"):
            api.run(network=network, n=5).once()

    def test_instance_cannot_sweep(self):
        network = StaticDynamicNetwork(clique(range(5)))
        with pytest.raises(ValueError, match="family name or factory"):
            api.run(network=network).sweep([5, 6])


class TestUnifiedValidation:
    """Engine/variant/fault options are validated identically everywhere."""

    @pytest.mark.parametrize("terminal", ["once", "collect", "sweep"])
    def test_bad_engine_everywhere(self, terminal):
        builder = api.run(network="clique", n=8).engine("telepathy")
        with pytest.raises(ValueError, match="engine"):
            builder.sweep([8]) if terminal == "sweep" else getattr(builder, terminal)()

    @pytest.mark.parametrize("terminal", ["once", "collect", "sweep"])
    def test_bad_variant_everywhere(self, terminal):
        builder = api.run(network="clique", n=8).variant("telepathy")
        with pytest.raises(ValueError):
            builder.sweep([8]) if terminal == "sweep" else getattr(builder, terminal)()

    def test_sweep_selects_engine_per_point(self):
        # the historical gap: sweep() could not choose the engine; the builder can.
        frame = (
            api.run(network="clique", seed=1)
            .engine("naive")
            .trials(2)
            .sweep([6, 8])
        )
        assert [point.spec.engine for point in frame.points] == ["naive", "naive"]
        assert list(frame.values) == [6, 8]

    def test_sweep_with_variant_and_faults(self):
        frame = (
            api.run(network="clique", seed=1, faults={"drop_probability": 0.1})
            .variant("push")
            .trials(2)
            .sweep([6, 8])
        )
        assert all(point.spec.faults.drop_probability == 0.1 for point in frame.points)

    def test_faults_kwargs_equal_mapping(self):
        by_fields = api.run(network="clique", n=8).faults(drop_probability=0.2)
        by_mapping = api.run(network="clique", n=8).faults({"drop_probability": 0.2})
        assert by_fields.spec.faults == by_mapping.spec.faults == FaultModel(0.2)

    def test_fault_data_coercion_matches_scenarios(self):
        model = fault_model_from_data({"crash_times": {"3": 1.5}, "crashed_nodes": ["2"]})
        assert model.crash_times == {3: 1.5}
        assert model.crashed_nodes == frozenset({2})
        with pytest.raises(ValueError, match="unknown fault field"):
            fault_model_from_data({"drop_chance": 0.5})


class TestTypedResults:
    def test_trialset_columns_are_numpy(self):
        trial_set = api.run(network="clique", n=10, seed=0).trials(4).collect()
        assert isinstance(trial_set.spread_times, np.ndarray)
        assert trial_set.spread_times.dtype == np.float64
        assert trial_set.completion_rate == 1.0

    def test_trialset_summary_matches_legacy_statistics(self):
        trial_set = api.run(network="clique", n=10, seed=0).trials(5).collect()
        summary = trial_set.summary()
        assert summary.mean == trial_set.mean
        assert summary.whp_spread_time == trial_set.whp_spread_time
        assert summary.as_dict()["trials"] == 5

    def test_trialset_as_dict_matches_cli_schema(self):
        trial_set = (
            api.run(network="clique", params={"n": 16}, seed=3)
            .trials(3)
            .collect()
        )
        document = trial_set.as_dict()
        assert list(document) == [
            "network", "params", "algorithm", "unit", "nodes", "trials",
            "seed", "summary", "variant", "engine",
        ]
        assert document["network"] == "clique"
        assert document["params"] == {"n": 16}
        assert document["seed"] == 3
        assert document["unit"] == "time"

    def test_sync_as_dict_has_rounds_and_no_engine(self):
        document = (
            api.run(network="clique", n=10, algorithm="sync", seed=1)
            .trials(2)
            .collect()
            .as_dict()
        )
        assert document["unit"] == "rounds"
        assert "engine" not in document and "variant" not in document

    def test_runresult_as_dict(self):
        document = api.run(network="clique", n=8, seed=0).once().as_dict()
        assert document["completed"] is True
        assert document["nodes"] == 8
        assert document["engine"] == "boundary"

    def test_sweepframe_columns_and_rows(self):
        frame = api.run(network="clique", seed=2).trials(3).sweep([6, 8, 10])
        means = frame.column("mean")
        assert isinstance(means, np.ndarray) and means.shape == (3,)
        rows = frame.rows()
        assert [row["n"] for row in rows] == [6, 8, 10]
        assert "mean" in frame.columns()
        with pytest.raises(ValueError, match="unknown column"):
            frame.column("no_such_column")

    def test_sweepframe_as_dict_round_trips_json(self):
        frame = api.run(network="clique", seed=2).trials(2).sweep([6, 8])
        document = json.loads(json.dumps(frame.as_dict()))
        assert document["parameter"] == "n"
        assert len(document["rows"]) == 2

    def test_sweepframe_legacy_adapter(self):
        frame = api.run(network="clique", seed=2).trials(2).sweep([6, 8])
        legacy = frame.to_sweep_result()
        assert legacy.values() == [6, 8]
        assert legacy.series("mean") == [float(m) for m in frame.column("mean")]

    def test_keep_results_retains_spread_results(self):
        trial_set = (
            api.run(network="clique", n=8, seed=0).trials(3).keep_results().collect()
        )
        assert len(trial_set.results) == 3
        assert all(result.completed for result in trial_set.results)


class TestLegacyShimEquivalence:
    def test_run_trials_equals_builder_collect(self):
        from repro.analysis.trials import run_trials
        from repro.core.asynchronous import AsynchronousRumorSpreading

        factory = lambda: StaticDynamicNetwork(clique(range(12)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_trials(
                AsynchronousRumorSpreading().run, factory, trials=4, rng=9
            )
        modern = api.run(network=factory, seed=9).trials(4).collect()
        assert legacy.spread_times == [float(t) for t in modern.spread_times]

    def test_sweep_shim_equals_builder_sweep(self):
        from repro.analysis.sweep import sweep
        from repro.core.asynchronous import AsynchronousRumorSpreading

        factory = lambda n: StaticDynamicNetwork(clique(range(n)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = sweep(
                "n", [6, 8], factory, AsynchronousRumorSpreading().run, trials=3, rng=4
            )
        modern = api.run(network=factory, seed=4).trials(3).sweep([6, 8])
        assert legacy.series("mean") == [float(m) for m in modern.column("mean")]
        assert legacy.series("whp") == [float(m) for m in modern.column("whp")]

    def test_shims_warn_exactly_once(self):
        from repro.analysis.trials import run_trials
        from repro.api._deprecation import reset_warnings
        from repro.core.asynchronous import AsynchronousRumorSpreading

        factory = lambda: StaticDynamicNetwork(clique(range(6)))
        runner = AsynchronousRumorSpreading().run
        reset_warnings()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                run_trials(runner, factory, trials=1, rng=0)
                run_trials(runner, factory, trials=1, rng=0)
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
        finally:
            reset_warnings()


class TestScenarioBinding:
    def _scenario(self, **overrides):
        fields = dict(
            label="bind me", network="clique", sweep=(8, 12), trials=3, seed=21
        )
        fields.update(overrides)
        return Scenario(**fields)

    def test_bind_matches_pipeline_payload(self):
        scenario = self._scenario()
        payloads = [point.payload for point in ExperimentPipeline().run(scenario)]
        for index, payload in enumerate(payloads):
            trial_set = scenario.bind(index=index).collect()
            assert payload["spread_times"] == [float(t) for t in trial_set.spread_times]

    def test_bind_by_value(self):
        scenario = self._scenario()
        by_value = scenario.bind(value=12).collect()
        by_index = scenario.bind(index=1).collect()
        assert [float(t) for t in by_value.spread_times] == [
            float(t) for t in by_index.spread_times
        ]

    def test_bind_rejects_unknown_value_and_kind(self):
        scenario = self._scenario()
        with pytest.raises(ValueError, match="not a swept value"):
            scenario.bind(value=99)
        hk = Scenario(label="hk", kind="hk_snapshot", sweep=(2,), options={"n": 16})
        with pytest.raises(ValueError, match="bind"):
            hk.bind()

    def test_sweep_scenario_returns_frame_matching_pipeline(self):
        scenario = self._scenario()
        frame = api.sweep_scenario(scenario)
        payloads = [point.payload for point in ExperimentPipeline().run(scenario)]
        assert list(frame.values) == [8, 12]
        for point, payload in zip(frame.points, payloads):
            assert payload["spread_times"] == [float(t) for t in point.spread_times]
            assert payload["summary"] == point.summary().as_dict()

    def test_tabs_trials_ignores_scenario_max_time(self):
        # the tabs_trials kind has always run to the engine's default horizon;
        # a scenario-level max_time must not leak in through the binding.
        scenario = Scenario(
            label="tabs", kind="tabs_trials", network="clique",
            sweep=(40,), trials=3, seed=5, max_time=0.5,
        )
        payload = ExperimentPipeline().run(scenario)[0].payload
        assert all(
            trial["spread_time"] < float("inf") for trial in payload["trials"]
        )

    def test_max_time_none_clears_horizon(self):
        builder = api.run(network="clique", n=8, max_time=0.001).max_time(None)
        assert builder.once().completed

    def test_adaptive_parallel_matches_budget_and_prefix(self):
        adaptive = (
            api.run(network="clique", n=16, seed=3)
            .trials(until_ci_width=1e-12, max_trials=11)
            .workers(2)
            .collect()
        )
        fixed = api.run(network="clique", n=16, seed=3).trials(11).collect()
        assert adaptive.trials == 11  # unreachable target runs the full budget
        assert [float(t) for t in adaptive.spread_times] == [
            float(t) for t in fixed.spread_times
        ]

    def test_adaptive_scenario_option(self):
        adaptive = self._scenario(
            sweep=(10,),
            trials=40,
            options={"until_ci_width": 1e9, "max_trials": 40},
        )
        fixed = self._scenario(sweep=(10,), trials=40)
        adaptive_payload = ExperimentPipeline().run(adaptive)[0].payload
        fixed_payload = ExperimentPipeline().run(fixed)[0].payload
        # the huge target stops after the 2-trial minimum, a prefix of the fixed run
        assert len(adaptive_payload["spread_times"]) == 2
        assert (
            adaptive_payload["spread_times"]
            == fixed_payload["spread_times"][:2]
        )


class TestSinks:
    def _scenario(self):
        return Scenario(label="sink", network="clique", sweep=(8,), trials=2, seed=5)

    def test_memory_sink_caches_like_local_dir(self, tmp_path):
        scenario = self._scenario()
        memory = api.MemorySink()
        first = ExperimentPipeline(sink=memory).run(scenario)
        second = ExperimentPipeline(sink=memory).run(scenario)
        assert [point.cached for point in first] == [False]
        assert [point.cached for point in second] == [True]
        local_first = ExperimentPipeline(cache_dir=tmp_path).run(scenario)
        assert [point.payload for point in second] == [
            point.payload for point in local_first
        ]

    def test_local_dir_sink_is_the_pipeline_cache_format(self, tmp_path):
        scenario = self._scenario()
        results = ExperimentPipeline(cache_dir=tmp_path).run(scenario)
        sink = api.LocalDirSink(tmp_path)
        artifact = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert sink.load(results[0].key, artifact["spec"]) == results[0].payload

    def test_spec_mismatch_reads_as_miss(self):
        sink = api.MemorySink()
        sink.store("key", {"a": 1}, "trials", {"x": 2})
        assert sink.load("key", {"a": 1}) == {"x": 2}
        assert sink.load("key", {"a": 999}) is None
        assert sink.load("other", {"a": 1}) is None

    def test_null_sink_never_stores(self):
        sink = api.NullSink()
        sink.store("key", {}, "trials", {"x": 1})
        assert sink.load("key", {}) is None

    def test_pipeline_rejects_cache_dir_and_sink(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ExperimentPipeline(cache_dir=tmp_path, sink=api.MemorySink())
