"""Unit tests for SpreadResult."""

import math

import pytest

from repro.core.state import SpreadResult


def make_result(times=None, n=5, completed=True, synchronous=False):
    times = {0: 0.0, 1: 1.0, 2: 1.5, 3: 2.0, 4: 3.5} if times is None else times
    spread = max(times.values()) if completed else math.inf
    return SpreadResult(
        spread_time=spread,
        informed_times=times,
        completed=completed,
        n=n,
        steps_used=4,
        source=0,
        synchronous=synchronous,
    )


class TestSpreadResult:
    def test_informed_count(self):
        assert make_result().informed_count == 5

    def test_informed_at(self):
        result = make_result()
        assert result.informed_at(0.0) == 1
        assert result.informed_at(1.5) == 3
        assert result.informed_at(10.0) == 5

    def test_informing_order_sorted_by_time(self):
        result = make_result()
        order = result.informing_order()
        assert [node for node, _ in order] == [0, 1, 2, 3, 4]
        times = [time for _, time in order]
        assert times == sorted(times)

    def test_time_to_fraction(self):
        result = make_result()
        assert result.time_to_fraction(0.2) == 0.0
        assert result.time_to_fraction(0.6) == 1.5
        assert result.time_to_fraction(1.0) == 3.5

    def test_time_to_fraction_not_reached(self):
        result = make_result(times={0: 0.0, 1: 2.0}, n=5, completed=False)
        assert result.time_to_fraction(1.0) is None

    def test_time_to_fraction_validation(self):
        with pytest.raises(ValueError):
            make_result().time_to_fraction(0.0)
        with pytest.raises(ValueError):
            make_result().time_to_fraction(1.5)

    def test_summary_mentions_status(self):
        assert "completed" in make_result().summary()
        assert "TIMED OUT" in make_result(completed=False).summary()

    def test_summary_mentions_rounds_for_synchronous(self):
        assert "rounds" in make_result(synchronous=True).summary()
        assert "time" in make_result(synchronous=False).summary()
