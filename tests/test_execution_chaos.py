"""Fault-injection tests: chaos harness, worker-death paths, checksummed artifacts.

The chaos monkey's kill/raise/slow schedule is a pure function of
``(seed, index, attempt)``, so each test scans (deterministically) for a seed
whose schedule exercises the wanted path — e.g. "at least one worker kill on
a first attempt, but few enough total kills that every item still finishes
within its retry budget".  The scans are pure Python over ``decision()``;
no test depends on scheduling luck.
"""

import io
import json

import pytest

from repro.api.sinks import LocalDirSink, MemorySink, payload_checksum
from repro.cli import main
from repro.execution import (
    ChaosError,
    ChaosMonkey,
    ExecutionReport,
    RetryPolicy,
    fork_available,
    supervised_map,
)
from repro.scenarios import ExperimentPipeline, Scenario, failed_points

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs fork")

FAST_RETRY = dict(backoff_base=0.0, jitter=0.0)


def _triple(value):
    return value * 3


def _find_kill_seed(n_items, max_attempts, kill_rate, max_total_kills):
    """First seed whose schedule has a first-attempt kill but a bounded total.

    ``total kills <= max_total_kills`` guarantees every item can absorb the
    worst case of being charged an attempt for every pool break *and* its own
    kills, and still reach a clean attempt within ``max_attempts``.
    """
    for seed in range(2000):
        monkey = ChaosMonkey(seed=seed, kill_rate=kill_rate)
        kills = [
            (index, attempt)
            for index in range(n_items)
            for attempt in range(1, max_attempts + 1)
            if monkey.decision(index, attempt) == "kill"
        ]
        first_attempt_kills = [pair for pair in kills if pair[1] == 1]
        if first_attempt_kills and 1 <= len(kills) <= max_total_kills:
            return seed
    raise AssertionError("no suitable chaos seed found in scan range")


class TestWorkerDeathRecovery:
    def test_killed_worker_respawns_and_releases_items(self):
        items = list(range(6))
        max_attempts = 8
        seed = _find_kill_seed(len(items), max_attempts, kill_rate=0.08,
                               max_total_kills=3)
        monkey = ChaosMonkey(seed=seed, kill_rate=0.08)
        policy = RetryPolicy(max_attempts=max_attempts, max_pool_respawns=10,
                             **FAST_RETRY)
        report = ExecutionReport()
        outcomes = supervised_map(_triple, items, workers=3, policy=policy,
                                  chaos=monkey, report=report)
        assert all(outcome.ok for outcome in outcomes)
        fault_free = supervised_map(_triple, items, workers=3)
        assert [o.value for o in outcomes] == [o.value for o in fault_free]
        assert report.pool_respawns >= 1
        assert report.retries >= 1
        assert report.serial_fallbacks == 0

    def test_exhausted_respawns_fall_back_to_serial(self):
        items = list(range(6))
        max_attempts = 8
        seed = _find_kill_seed(len(items), max_attempts, kill_rate=0.08,
                               max_total_kills=3)
        monkey = ChaosMonkey(seed=seed, kill_rate=0.08)
        policy = RetryPolicy(max_attempts=max_attempts, max_pool_respawns=0,
                             **FAST_RETRY)
        report = ExecutionReport()
        outcomes = supervised_map(_triple, items, workers=3, policy=policy,
                                  chaos=monkey, report=report)
        # One break is tolerated nowhere: the supervisor degrades to the
        # in-process serial fallback, where kills soften to raises and the
        # per-item retry budget still completes the sweep.
        assert report.serial_fallbacks == 1
        assert all(outcome.ok for outcome in outcomes)
        assert [outcome.value for outcome in outcomes] == [3 * item for item in items]

    def test_pipeline_survivors_identical_to_fault_free_run(self):
        scenario = Scenario(label="chaos clique", network="clique",
                            sweep=(8, 12), trials=2, seed=11)
        max_attempts = 6
        seed = _find_kill_seed(2, max_attempts, kill_rate=0.2, max_total_kills=2)
        policy = RetryPolicy(max_attempts=max_attempts, max_pool_respawns=10,
                             **FAST_RETRY)
        chaotic = ExperimentPipeline(
            jobs=2, policy=policy, chaos=ChaosMonkey(seed=seed, kill_rate=0.2)
        )
        chaos_results = chaotic.run([scenario])
        plain_results = ExperimentPipeline(jobs=2).run([scenario])
        assert all(point.ok for point in chaos_results)
        assert [point.payload for point in chaos_results] == \
               [point.payload for point in plain_results]
        assert chaotic.report.pool_respawns >= 1


class TestChaosRaises:
    def test_keep_going_records_failures_and_caches_nothing(self):
        scenario = Scenario(label="doomed", network="clique", sweep=(8, 12),
                            trials=2, seed=5)
        sink = MemorySink()
        pipeline = ExperimentPipeline(
            sink=sink, keep_going=True,
            policy=RetryPolicy(max_attempts=2, **FAST_RETRY),
            chaos=ChaosMonkey(seed=0, raise_rate=1.0),
        )
        results = pipeline.run([scenario])
        assert [point.status for point in results] == ["failed", "failed"]
        assert all(point.payload is None for point in results)
        assert all("chaos raise" in point.error for point in results)
        assert all(point.attempts == 2 for point in results)
        assert failed_points(results) == results
        assert len(sink) == 0  # failed points are never cached
        assert pipeline.report.failures == 2
        assert pipeline.report.succeeded == 0

    def test_strict_mode_raises_original_chaos_error(self):
        scenario = Scenario(label="doomed", network="clique", sweep=(8,),
                            trials=2, seed=5)
        pipeline = ExperimentPipeline(
            policy=RetryPolicy(max_attempts=1, **FAST_RETRY),
            chaos=ChaosMonkey(seed=0, raise_rate=1.0),
        )
        with pytest.raises(ChaosError, match="chaos raise"):
            pipeline.run([scenario])

    def test_max_failures_aborts_the_sweep(self):
        scenario = Scenario(label="doomed", network="clique", sweep=(8, 12, 16),
                            trials=2, seed=5)
        pipeline = ExperimentPipeline(
            keep_going=True, max_failures=0,
            policy=RetryPolicy(max_attempts=1, **FAST_RETRY),
            chaos=ChaosMonkey(seed=0, raise_rate=1.0),
        )
        results = pipeline.run([scenario])
        assert results[0].status == "failed"
        assert {point.status for point in results[1:]} == {"aborted"}


class TestChaosSlowAndTimeout:
    def test_slow_point_is_censored_by_timeout(self):
        # A seed where item 0 draws "slow" on its only attempt and item 1
        # draws nothing, so exactly one item trips the deadline.
        seed = next(
            s for s in range(2000)
            if ChaosMonkey(seed=s, slow_rate=0.5).decision(0, 1) == "slow"
            and ChaosMonkey(seed=s, slow_rate=0.5).decision(1, 1) is None
        )
        monkey = ChaosMonkey(seed=seed, slow_rate=0.5, slow_seconds=15.0)
        policy = RetryPolicy(max_attempts=1, timeout=0.5, max_pool_respawns=5,
                             **FAST_RETRY)
        report = ExecutionReport()
        outcomes = supervised_map(_triple, [0, 1], workers=2, policy=policy,
                                  chaos=monkey, report=report)
        assert outcomes[0].status == "timeout"
        assert "timed out" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 3
        assert report.timeouts >= 1
        assert report.pool_respawns >= 1


class TestArtifactChecksums:
    PAYLOAD = {"n": 8, "spread_times": [1.5, 2.5]}
    SPEC = {"kind": "trials", "n": 8}

    def test_corrupted_artifact_reads_as_miss(self, tmp_path):
        sink = LocalDirSink(tmp_path)
        sink.store("k1", self.SPEC, "trials", self.PAYLOAD)
        assert sink.load("k1", self.SPEC) == self.PAYLOAD
        monkey = ChaosMonkey(seed=0, corrupt_rate=1.0)
        assert monkey.corrupt_artifact(sink._path("k1"))
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert sink.load("k1", self.SPEC) is None
        assert sink.corruption_detected == 1

    def test_legacy_artifact_without_checksum_still_loads(self, tmp_path):
        sink = LocalDirSink(tmp_path)
        artifact = {"key": "k1", "kind": "trials", "spec": self.SPEC,
                    "payload": self.PAYLOAD}
        sink._path("k1").write_text(json.dumps(artifact, sort_keys=True))
        assert sink.load("k1", self.SPEC) == self.PAYLOAD
        assert sink.corruption_detected == 0

    def test_checksum_is_canonical(self):
        assert payload_checksum({"b": 1, "a": [2]}) == payload_checksum({"a": [2], "b": 1})
        assert payload_checksum({"a": 1}) != payload_checksum({"a": 2})

    def test_pipeline_detects_rot_and_recomputes(self, tmp_path):
        scenario = Scenario(label="rotting", network="clique", sweep=(8, 12),
                            trials=2, seed=7)
        monkey = ChaosMonkey(seed=3, corrupt_rate=1.0)
        first = ExperimentPipeline(cache_dir=tmp_path, chaos=monkey)
        first_results = first.run([scenario])
        second = ExperimentPipeline(cache_dir=tmp_path, chaos=monkey)
        with pytest.warns(RuntimeWarning, match="checksum"):
            second_results = second.run([scenario])
        assert [point.cached for point in second_results] == [False, False]
        assert [point.payload for point in second_results] == \
               [point.payload for point in first_results]
        assert second.report.cache_corruption == 2
        assert second.report.cache_hits == 0

    def test_memory_sink_rejects_tampered_payload(self):
        sink = MemorySink()
        sink.store("k1", self.SPEC, "trials", self.PAYLOAD)
        sink._artifacts["k1"]["payload"]["n"] = 999  # simulate silent rot
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert sink.load("k1", self.SPEC) is None
        assert sink.corruption_detected == 1


class TestMemorySinkIsolation:
    def test_mutating_stored_dict_does_not_poison_the_sink(self):
        sink = MemorySink()
        payload = {"values": [1, 2, 3]}
        sink.store("k1", {"s": 1}, "trials", payload)
        payload["values"].append(999)
        assert sink.load("k1", {"s": 1}) == {"values": [1, 2, 3]}

    def test_mutating_loaded_dict_does_not_poison_later_loads(self):
        sink = MemorySink()
        sink.store("k1", {"s": 1}, "trials", {"values": [1, 2, 3]})
        loaded = sink.load("k1", {"s": 1})
        loaded["values"].clear()
        loaded["extra"] = True
        assert sink.load("k1", {"s": 1}) == {"values": [1, 2, 3]}


class TestChaosCLI:
    def _scenario_file(self, tmp_path):
        scenario_file = tmp_path / "one.json"
        scenario_file.write_text(json.dumps(
            {"label": "one", "network": "star", "sweep": [8], "trials": 2, "seed": 1}
        ))
        return scenario_file

    def test_scenarios_run_under_chaos_keeps_going(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS", "raise=1.0,seed=0")
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        buffer = io.StringIO()
        code = main(
            ["scenarios", "run", str(self._scenario_file(tmp_path)),
             "--json", "--no-cache", "--keep-going"],
            out=buffer,
        )
        assert code == 1
        document = json.loads(buffer.getvalue())
        assert document["all_passed"] is False
        assert [point["status"] for point in document["points"]] == ["failed"]
        assert document["failures"][0]["label"] == "one"
        assert document["execution"]["failures"] == 1
        assert document["execution"]["items"] == 1
        assert "scenarios run: failed points" in capsys.readouterr().err
        assert "scenarios run: failed points" in summary.read_text()

    def test_scenarios_run_clean_schema_unchanged_without_chaos(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        buffer = io.StringIO()
        code = main(
            ["scenarios", "run", str(self._scenario_file(tmp_path)),
             "--json", "--no-cache", "--keep-going"],
            out=buffer,
        )
        assert code == 0
        # No failures and no checks: the historical bare-list schema survives.
        assert isinstance(json.loads(buffer.getvalue()), list)

    def test_experiment_keep_going_reports_failure(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS", "raise=1.0,seed=0")
        buffer = io.StringIO()
        code = main(["experiment", "E1", "--json", "--no-cache", "--keep-going"],
                    out=buffer)
        assert code == 1
        document = json.loads(buffer.getvalue())
        assert document["title"] == "(failed)"
        assert document["passed"] is False
        assert document["execution"]["failures"] >= 1
        assert "E1: failures" in capsys.readouterr().err

    def test_experiment_without_keep_going_propagates(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise=1.0,seed=0")
        with pytest.raises(ChaosError):
            main(["experiment", "E1", "--json", "--no-cache"], out=io.StringIO())

    def test_bad_chaos_spec_is_a_clean_cli_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS", "typo=1.0")
        code = main(
            ["scenarios", "run", str(self._scenario_file(tmp_path)), "--no-cache"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "unknown" in capsys.readouterr().err


class TestKeepGoingReporting:
    def test_build_results_substitutes_failed_placeholder(self, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.reporting import build_results
        from repro.experiments.result import ExperimentResult

        def ok_runner(scale="small", pipeline=None, **kwargs):
            return ExperimentResult(experiment_id="E1", title="ok", claim="c",
                                    rows=[{"x": 1}], passed=True)

        def bad_runner(scale="small", pipeline=None, **kwargs):
            raise RuntimeError("exploded mid-run")

        monkeypatch.setitem(registry.EXPERIMENTS, "E1", ok_runner)
        monkeypatch.setitem(registry.EXPERIMENTS, "E2", bad_runner)
        failure_log = []
        results = build_results(experiment_ids=["E1", "E2"], keep_going=True,
                                failure_log=failure_log)
        assert results["E1"].passed is True
        assert results["E2"].passed is False
        assert results["E2"].title == "(failed)"
        assert failure_log == [
            {"experiment": "E2", "status": "failed",
             "error": "RuntimeError: exploded mid-run"}
        ]

    def test_build_results_max_failures_aborts_rest(self, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.reporting import build_results

        def bad_runner(scale="small", pipeline=None, **kwargs):
            raise RuntimeError("exploded mid-run")

        monkeypatch.setitem(registry.EXPERIMENTS, "E1", bad_runner)
        failure_log = []
        results = build_results(experiment_ids=["E1", "E2", "E3"], keep_going=True,
                                max_failures=0, failure_log=failure_log)
        assert results["E1"].title == "(failed)"
        assert results["E2"].title == "(aborted)"
        assert results["E3"].title == "(aborted)"
        assert [entry["status"] for entry in failure_log] == \
               ["failed", "aborted", "aborted"]

    def test_without_keep_going_the_error_propagates(self, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.reporting import build_results

        def bad_runner(scale="small", pipeline=None, **kwargs):
            raise RuntimeError("exploded mid-run")

        monkeypatch.setitem(registry.EXPERIMENTS, "E1", bad_runner)
        with pytest.raises(RuntimeError, match="exploded"):
            build_results(experiment_ids=["E1"])
