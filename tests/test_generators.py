"""Unit tests for the static graph generators."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    bridged_double_clique,
    clique,
    clique_with_pendant,
    complete_bipartite_chain,
    cycle,
    dynamic_star_graph,
    near_regular_with_hub,
    path,
    random_regular_expander,
    regular_connected_graph,
    spectral_gap,
    star,
)


class TestElementaryTopologies:
    def test_clique_structure(self):
        graph = clique(range(6))
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 15
        assert all(degree == 5 for _, degree in graph.degree())

    def test_clique_requires_nodes(self):
        with pytest.raises(ValueError):
            clique([])

    def test_star_structure(self):
        graph = star("hub", ["a", "b", "c"])
        assert graph.degree("hub") == 3
        assert all(graph.degree(leaf) == 1 for leaf in "abc")

    def test_star_rejects_center_among_leaves(self):
        with pytest.raises(ValueError):
            star(0, [0, 1, 2])

    def test_dynamic_star_graph_center(self):
        graph = dynamic_star_graph(6, center=3)
        assert graph.degree(3) == 5
        assert set(graph.nodes()) == set(range(6))

    def test_dynamic_star_graph_rejects_unknown_center(self):
        with pytest.raises(ValueError):
            dynamic_star_graph(5, center=9)

    def test_cycle_structure(self):
        graph = cycle(range(7))
        assert graph.number_of_edges() == 7
        assert all(degree == 2 for _, degree in graph.degree())

    def test_cycle_needs_three_nodes(self):
        with pytest.raises(ValueError):
            cycle(range(2))

    def test_path_structure(self):
        graph = path(range(5))
        assert graph.number_of_edges() == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_complete_bipartite_chain(self):
        clusters = [[0, 1], [2, 3], [4, 5]]
        graph = complete_bipartite_chain(clusters)
        assert graph.number_of_edges() == 8
        assert graph.has_edge(0, 2)
        assert graph.has_edge(3, 5)
        assert not graph.has_edge(0, 4)
        assert not graph.has_edge(0, 1)

    def test_complete_bipartite_chain_rejects_overlap(self):
        with pytest.raises(ValueError):
            complete_bipartite_chain([[0, 1], [1, 2]])


class TestExpanders:
    def test_random_regular_expander_is_regular_and_connected(self):
        graph = random_regular_expander(4, range(30), rng=0)
        assert all(degree == 4 for _, degree in graph.degree())
        assert nx.is_connected(graph)
        assert set(graph.nodes()) == set(range(30))

    def test_random_regular_expander_has_spectral_gap(self):
        graph = random_regular_expander(4, range(60), rng=1)
        assert spectral_gap(graph) >= 0.1

    def test_expander_relabels_onto_given_nodes(self):
        labels = [f"node{i}" for i in range(20)]
        graph = random_regular_expander(4, labels, rng=2)
        assert set(graph.nodes()) == set(labels)

    def test_expander_rejects_odd_degree_times_n(self):
        with pytest.raises(ValueError):
            random_regular_expander(3, range(7), rng=0)

    def test_expander_rejects_degree_too_large(self):
        with pytest.raises(ValueError):
            random_regular_expander(10, range(6), rng=0)


class TestRegularConstructions:
    def test_regular_connected_graph_even_degree(self):
        graph = regular_connected_graph(list(range(12)), 4)
        assert all(degree == 4 for _, degree in graph.degree())
        assert nx.is_connected(graph)

    def test_regular_connected_graph_odd_degree(self):
        graph = regular_connected_graph(list(range(10)), 3, rng=0)
        assert all(degree == 3 for _, degree in graph.degree())
        assert nx.is_connected(graph)

    def test_near_regular_with_hub_degrees(self):
        nodes = list(range(30))
        graph, hub = near_regular_with_hub(nodes, base_degree=4, hub_degree=10, rng=0)
        assert graph.degree(hub) == 10
        others = [graph.degree(u) for u in nodes if u != hub]
        assert all(degree == 4 for degree in others)
        assert nx.is_connected(graph)

    def test_near_regular_with_hub_no_extra(self):
        graph, hub = near_regular_with_hub(list(range(10)), base_degree=4, hub_degree=4)
        assert graph.degree(hub) == 4

    def test_near_regular_with_hub_rejects_odd_degrees(self):
        with pytest.raises(ValueError):
            near_regular_with_hub(list(range(10)), base_degree=3, hub_degree=6)
        with pytest.raises(ValueError):
            near_regular_with_hub(list(range(10)), base_degree=4, hub_degree=7)


class TestFigureOneBuildingBlocks:
    def test_clique_with_pendant_structure(self):
        graph = clique_with_pendant(8)
        assert graph.number_of_nodes() == 9
        assert graph.degree(9) == 1
        assert graph.has_edge(1, 9)
        assert graph.degree(1) == 8

    def test_bridged_double_clique_structure(self):
        graph = bridged_double_clique(9)
        assert graph.number_of_nodes() == 10
        assert graph.has_edge(1, 10)
        assert nx.is_connected(graph)
        # Removing the bridge disconnects the graph into the two cliques.
        copy = graph.copy()
        copy.remove_edge(1, 10)
        components = list(nx.connected_components(copy))
        assert len(components) == 2
        sizes = sorted(len(component) for component in components)
        assert sizes == [5, 5]

    def test_bridged_double_clique_sides_are_cliques(self):
        graph = bridged_double_clique(11)
        copy = graph.copy()
        copy.remove_edge(1, 12)
        for component in nx.connected_components(copy):
            sub = copy.subgraph(component)
            size = sub.number_of_nodes()
            assert sub.number_of_edges() == size * (size - 1) // 2
