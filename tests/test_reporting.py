"""Unit tests for the combined experiment report builder."""

import io

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.reporting import build_report, distinct_experiment_ids, render_markdown
from repro.experiments.result import ExperimentResult


def stub_result(experiment_id="E1", passed=True):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="stub experiment",
        claim="stub claim",
        rows=[{"x": 1, "y": 2.0}],
        derived={"slope": 0.5},
        passed=passed,
        notes="stub notes",
    )


class TestDistinctIds:
    def test_shared_runners_deduplicated(self):
        ids = distinct_experiment_ids()
        assert "E5" in ids
        assert "E6" not in ids  # E6 shares the Theorem 1.7 runner
        assert len(ids) == len(set(ids))
        assert set(ids) <= set(EXPERIMENTS)


class TestRenderMarkdown:
    def test_contains_all_sections(self):
        text = render_markdown({"E1": stub_result("E1"), "E8": stub_result("E8", passed=False)})
        assert "# Reproduction report" in text
        assert "Shape checks passed: **1 / 2**" in text
        assert "## E1 — stub experiment" in text
        assert "stub claim" in text
        assert "PASS" in text and "FAIL" in text
        assert "slope = 0.5" in text
        assert "stub notes" in text

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            render_markdown({})


class TestBuildReport:
    def test_single_fast_experiment(self):
        text = build_report(scale="small", experiment_ids=["E8"])
        assert "## E8" in text
        assert "Lemma 4.2" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            build_report(experiment_ids=["E99"])

    def test_cli_report_command(self):
        buffer = io.StringIO()
        code = main(["report", "--only", "E8"], out=buffer)
        assert code == 0
        assert "Reproduction report" in buffer.getvalue()
