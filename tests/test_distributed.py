"""Distributed execution tests: leases, the remote sink, and worker agreement.

Three layers, increasingly end-to-end:

* :class:`LeaseRegistry` unit tests with an injectable clock — attempt
  charging, TTL reclamation without double-counting, stale completions and
  failures, budget exhaustion;
* :func:`repro.api.sink_from_url` scheme dispatch, the pinned sorted
  ``keys()`` ordering of every sink, and an :class:`HttpSink` round trip
  against a live service (including non-finite floats, which must survive
  the wire byte-for-byte for checksum verification to pass);
* cross-worker agreement — an in-process coordinator + worker producing the
  same artifacts a serial pipeline does and resuming fully cached, then a
  full subprocess fleet (``repro serve --coordinator`` + two ``repro
  worker`` processes, one chaos-killed mid-lease) whose resumed ``--json``
  output is byte-identical to the serial reference.
"""

import json
import math
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import api
from repro.api import LocalDirSink, MemorySink, NullSink, ServiceClient, sink_from_url
from repro.distributed import HttpSink, run_worker
from repro.scenarios.pipeline import ExperimentPipeline, _normalise
from repro.scenarios.scenario import Scenario
from repro.service import (
    ExperimentService,
    LeaseRegistry,
    ServiceConfig,
    create_server,
)

WAIT = 90

REPO_ROOT = Path(__file__).resolve().parent.parent

SWEEP_SCENARIO = {
    "label": "dist",
    "kind": "trials",
    "network": "clique",
    "params": {},
    "trials": 2,
    "seed": 7,
    "sweep_name": "n",
    "sweep": [12, 16, 20],
}


class FakeClock:
    """A hand-advanced monotonic clock for deterministic lease expiry."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_registry(ttl=10.0, max_attempts=3):
    clock = FakeClock()
    return LeaseRegistry(ttl=ttl, max_attempts=max_attempts, clock=clock), clock


class TestLeaseRegistry:
    def test_grant_charges_attempt_and_carries_the_point(self):
        registry, _ = make_registry()
        task = registry.add_point("run-1", {"scenario": {}, "value": 8}, "k" * 64)
        worker = registry.register_worker("alpha")
        (lease,) = registry.acquire(worker, max_points=4)
        assert task.state == "leased" and task.attempts == 1
        wire = lease.as_dict()
        assert wire["key"] == "k" * 64 and wire["attempt"] == 1
        assert wire["point"] == {"scenario": {}, "value": 8}
        # no second lease for the same point while the first is live
        assert registry.acquire(worker) == []

    def test_expiry_reclaims_without_charging_a_second_attempt(self):
        registry, clock = make_registry(ttl=10.0)
        task = registry.add_point("run-1", {}, "key")
        worker = registry.register_worker()
        registry.acquire(worker)
        clock.advance(10.1)
        assert registry.reclaim_expired() == 1
        # the expired grant's attempt stays charged; re-pending adds none
        assert task.state == "pending" and task.attempts == 1
        assert task.reclaims == 1 and registry.reclaimed == 1
        # the next grant charges the second attempt
        (lease,) = registry.acquire(worker)
        assert lease.attempt == 2 and task.attempts == 2

    def test_stale_completion_accepted_while_point_open(self):
        registry, clock = make_registry(ttl=5.0)
        task = registry.add_point("run-1", {}, "key")
        first = registry.register_worker("first")
        second = registry.register_worker("second")
        (stale,) = registry.acquire(first)
        clock.advance(5.1)
        registry.acquire(second)  # sweeps the expired lease, re-grants
        # the presumed-dead worker finishes anyway: content-addressed
        # artifacts make the late result identical, so it is accepted
        done, accepted = registry.complete(stale.lease_id, first)
        assert accepted and done is task and task.state == "completed"
        assert task.completed_by == first and second  # late finisher credited
        assert task.attempts == 2  # both grants charged, nothing more

    def test_stale_reports_ignored_once_terminal(self):
        registry, clock = make_registry(ttl=5.0)
        task = registry.add_point("run-1", {}, "key")
        worker = registry.register_worker()
        (stale,) = registry.acquire(worker)
        clock.advance(5.1)
        (fresh,) = registry.acquire(worker)
        registry.complete(fresh.lease_id, worker)
        # a completion against a terminal point is a no-op…
        _, accepted = registry.complete(stale.lease_id, worker)
        assert not accepted and task.state == "completed"
        # …and so is a stale failure (the reclamation handled that attempt)
        _, accepted = registry.fail(stale.lease_id, worker, "late crash")
        assert not accepted and task.state == "completed" and task.error is None

    def test_failures_exhaust_the_attempt_budget(self):
        registry, _ = make_registry(max_attempts=2)
        task = registry.add_point("run-1", {}, "key")
        worker = registry.register_worker()
        (lease,) = registry.acquire(worker)
        _, accepted = registry.fail(lease.lease_id, worker, "boom 1")
        assert accepted and task.state == "pending" and task.attempts == 1
        (lease,) = registry.acquire(worker)
        registry.fail(lease.lease_id, worker, "boom 2")
        assert task.state == "failed" and task.error == "boom 2"
        assert registry.acquire(worker) == [] and not registry.open_work()

    def test_expiry_on_last_attempt_goes_terminal(self):
        registry, clock = make_registry(ttl=3.0, max_attempts=1)
        task = registry.add_point("run-1", {}, "key")
        registry.acquire(registry.register_worker())
        clock.advance(3.1)
        registry.reclaim_expired()
        assert task.state == "failed"
        assert "attempt budget (1) exhausted" in task.error

    def test_wait_run_blocks_until_terminal_and_abort_unblocks(self):
        # real clock: wait_run's timeout deadline must actually pass
        registry = LeaseRegistry(ttl=10.0)
        registry.add_point("run-1", {}, "key")
        assert registry.wait_run("run-1", timeout=0.05) is False
        assert registry.abort_open("run-1", error="test abort") == 1
        assert registry.wait_run("run-1", timeout=1.0) is True
        listing = registry.as_dict()
        assert listing["tasks"][0]["state"] == "aborted"
        assert listing["tasks"][0]["error"] == "test abort"


class TestSinkFromUrl:
    def test_scheme_dispatch(self, tmp_path):
        assert isinstance(sink_from_url("memory://"), MemorySink)
        assert isinstance(sink_from_url("null://"), NullSink)
        file_sink = sink_from_url(f"file://{tmp_path}/cache")
        assert isinstance(file_sink, LocalDirSink)
        assert file_sink.directory == tmp_path / "cache"
        # a plain path and a Path object mean LocalDirSink, like --cache-dir
        assert sink_from_url(str(tmp_path)).directory == tmp_path
        assert sink_from_url(tmp_path).directory == tmp_path
        http = sink_from_url("http://127.0.0.1:9")
        assert isinstance(http, HttpSink)
        assert http.client.base_url == "http://127.0.0.1:9"

    def test_bad_urls_raise(self):
        with pytest.raises(ValueError, match="unknown sink URL scheme"):
            sink_from_url("s3://bucket/prefix")
        with pytest.raises(ValueError, match="directory path"):
            sink_from_url("file://")


class TestSinkKeyOrdering:
    """keys() is sorted — resume sweeps and listings must not depend on
    insertion or filesystem order, or distributed runs would disagree."""

    KEYS = ["cc" * 32, "aa" * 32, "bb" * 32]

    def check(self, sink):
        for i, key in enumerate(self.KEYS):
            sink.store(key, {"i": i}, "trials", {"i": i})
        assert sink.keys() == sorted(self.KEYS)

    def test_memory_sink_keys_sorted(self):
        self.check(MemorySink())

    def test_local_dir_sink_keys_sorted(self, tmp_path):
        self.check(LocalDirSink(tmp_path))


@pytest.fixture
def live_service():
    """A plain (non-coordinator) service; yields its base URL + service."""
    service = ExperimentService(ServiceConfig(workers=1))
    server = create_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=30)


class TestHttpSink:
    def test_round_trip_preserves_non_finite_floats(self, live_service):
        base, _ = live_service
        sink = HttpSink(base)
        key = "f" * 64
        spec = {"label": "nonfinite", "n": 8}
        payload = {"summary": {"mean": math.inf, "worst": math.nan, "best": 1.5}}
        sink.store(key, spec, "trials", payload)
        assert key in sink and sink.keys() == [key]
        loaded = sink.load(key, spec)
        # load() returning non-None proves the checksum verified, i.e. the
        # inf/nan literals crossed the wire byte-identically
        assert loaded is not None and sink.corruption_detected == 0
        assert loaded["summary"]["mean"] == math.inf
        assert math.isnan(loaded["summary"]["worst"])
        artifact = sink.artifact(key)
        assert artifact["checksum"] == api.payload_checksum(payload)

    def test_mismatched_spec_and_missing_key_are_misses(self, live_service):
        base, _ = live_service
        sink = HttpSink(base)
        key = "e" * 64
        sink.store(key, {"n": 8}, "trials", {"v": 1})
        assert sink.load(key, {"n": 16}) is None  # different spec: miss
        assert sink.load("0" * 64, {"n": 8}) is None  # absent key: miss
        assert "0" * 64 not in sink

    def test_stores_are_idempotent(self, live_service):
        base, service = live_service
        sink = HttpSink(base)
        key = "d" * 64
        sink.store(key, {"n": 8}, "trials", {"v": 2})
        sink.store(key, {"n": 8}, "trials", {"v": 2})  # second write no-ops
        assert service.metrics.counters()["artifacts_stored"] == 1


@pytest.fixture
def coordinator():
    """A coordinator-mode service; yields (base_url, service)."""
    service = ExperimentService(ServiceConfig(
        workers=1, coordinator=True, sink=MemorySink(),
        lease_ttl=30.0, lease_attempts=3,
    ))
    server = create_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=30)


class TestCoordinatedExecution:
    def test_worker_fleet_matches_serial_and_resumes_cached(self, coordinator):
        base, service = coordinator
        client = ServiceClient(base)
        submitted = client.submit(SWEEP_SCENARIO)
        # let the coordinator enqueue the leases before exit-when-idle
        # workers look, or they would see "idle" and leave immediately
        deadline = time.monotonic() + WAIT
        while len(client.leases()["tasks"]) < 3 and time.monotonic() < deadline:
            time.sleep(0.05)

        workers = []
        threads = [
            threading.Thread(
                target=lambda: workers.append(
                    run_worker(base, exit_when_idle=True, poll=0.05)),
                daemon=True)
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        detail = client.wait(submitted["id"], timeout=WAIT)
        for thread in threads:
            thread.join(timeout=WAIT)

        assert detail["state"] == "completed"
        points = detail["result"]["points"]
        assert [p["status"] for p in points] == ["ok"] * 3
        assert all(p["attempts"] == 1 and not p["cached"] for p in points)
        # the fleet's combined completions cover every point exactly once
        assert sum(stats.completed for stats in workers) == 3
        assert all(stats.stopped == "idle" for stats in workers)

        # the artifacts are the bytes a serial single-machine run produces
        serial = ExperimentPipeline(sink=MemorySink())
        scenario = Scenario.from_dict(SWEEP_SCENARIO)
        serial_points = scenario.points()
        serial_results = serial.run([scenario])
        by_value = {p["value"]: p for p in points}
        for point, result in zip(serial_points, serial_results):
            shared = service.config.sink.load(result.key, _normalise(point.spec()))
            assert shared == _normalise(result.payload)
            assert by_value[result.value]["key"] == result.key

        # resubmitting resolves entirely from the shared sink: no leases,
        # no worker needed, attempts=0
        resumed = client.wait(client.submit(SWEEP_SCENARIO)["id"], timeout=WAIT)
        assert resumed["state"] == "completed"
        assert all(p["cached"] and p["attempts"] == 0
                   for p in resumed["result"]["points"])
        assert resumed["result"]["execution"]["cache_hits"] == 3

    def test_slow_chaos_changes_timing_never_bytes(self, coordinator):
        from repro.execution.chaos import ChaosMonkey

        base, service = coordinator
        client = ServiceClient(base)
        submitted = client.submit(SWEEP_SCENARIO)
        slow = ChaosMonkey(seed=0, slow_rate=1.0, slow_seconds=0.01)
        stats = run_worker(base, exit_when_idle=True, poll=0.05, chaos=slow)
        detail = client.wait(submitted["id"], timeout=WAIT)
        assert detail["state"] == "completed" and stats.completed == 3
        serial = ExperimentPipeline(sink=MemorySink())
        scenario = Scenario.from_dict(SWEEP_SCENARIO)
        for point, result in zip(scenario.points(), serial.run([scenario])):
            assert service.config.sink.load(result.key, _normalise(point.spec())) \
                == _normalise(result.payload)

    def test_raise_chaos_exhausts_budgets_into_failed_points(self):
        from repro.execution.chaos import ChaosMonkey

        service = ExperimentService(ServiceConfig(
            workers=1, coordinator=True, sink=MemorySink(),
            lease_ttl=30.0, lease_attempts=2,
        ))
        server = create_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        client = ServiceClient(base)
        try:
            submitted = client.submit(SWEEP_SCENARIO)
            always_raise = ChaosMonkey(seed=0, raise_rate=1.0)
            stats = run_worker(base, exit_when_idle=True, poll=0.05,
                               chaos=always_raise)
            detail = client.wait(submitted["id"], timeout=WAIT)
            # every attempt raised: 3 points × 2-attempt budget, all failed
            assert stats.failed == 6 and stats.completed == 0
            assert detail["state"] == "failed"
            points = detail["result"]["points"]
            assert [p["status"] for p in points] == ["failed"] * 3
            assert all(p["attempts"] == 2 and "chaos raise" in p["error"]
                       for p in points)
            assert detail["result"]["execution"]["retries"] == 3
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=30)

    def test_lease_expiry_reissues_a_hung_workers_point(self):
        service = ExperimentService(ServiceConfig(
            workers=1, coordinator=True, sink=MemorySink(),
            lease_ttl=1.0, lease_attempts=3,
        ))
        server = create_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        client = ServiceClient(base)
        try:
            submitted = client.submit(SWEEP_SCENARIO)
            # a "hung" worker: leases one point and never reports
            hung = client.register_worker("hung")
            deadline = time.monotonic() + WAIT
            while time.monotonic() < deadline:
                grabbed = client.acquire_leases(hung, max_points=1)
                if grabbed["state"] == "granted":
                    break
                time.sleep(0.05)
            assert grabbed["state"] == "granted"
            hung_key = grabbed["leases"][0]["key"]

            # a healthy worker finishes the run, including the reclaimed point
            stats = run_worker(base, name="healthy", exit_when_idle=True, poll=0.05)
            detail = client.wait(submitted["id"], timeout=WAIT)
            assert detail["state"] == "completed"
            assert stats.completed == 3

            tasks = {task["key"]: task for task in client.leases()["tasks"]}
            reclaimed = tasks[hung_key]
            # the hung grant charged attempt 1, expiry reclaimed it without
            # charging another, the re-issue charged attempt 2 — never 3
            assert reclaimed["reclaims"] == 1 and reclaimed["attempts"] == 2
            assert reclaimed["completed_by"] == stats.worker_id
            assert all(task["attempts"] == 1 for key, task in tasks.items()
                       if key != hung_key)
            by_key = {p["key"]: p for p in detail["result"]["points"]}
            assert by_key[hung_key]["attempts"] == 2
            assert detail["result"]["execution"]["timeouts"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=30)


def _run_cli(argv, cwd, env=None, timeout=WAIT):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=str(cwd),
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src"), **(env or {})},
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestDistributedSubprocessAgreement:
    def test_chaos_killed_fleet_is_byte_identical_to_serial(self, tmp_path):
        """Two worker processes (one chaos-killed mid-lease) + reclamation
        produce a resumed sweep byte-identical to the serial reference."""
        scenario_file = tmp_path / "sweep.json"
        scenario_file.write_text(json.dumps(SWEEP_SCENARIO))

        # serial reference: run once to fill the cache, once more to get the
        # canonical fully-cached --json output
        serial_args = ["scenarios", "run", str(scenario_file),
                       "--sink", f"file://{tmp_path}/serial", "--json"]
        first = _run_cli(serial_args, tmp_path)
        assert first.returncode == 0, first.stderr
        reference = _run_cli(serial_args, tmp_path)
        assert reference.returncode == 0, reference.stderr

        serve = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--coordinator", "--sink", f"file://{tmp_path}/shared",
             "--lease-ttl", "2", "--workers", "1"],
            cwd=str(tmp_path),
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            announce = serve.stdout.readline()
            match = re.search(r"http://[\d.]+:\d+", announce)
            assert match, f"unexpected announce line: {announce!r}"
            base = match.group(0)
            assert ", coordinator=on" in announce
            client = ServiceClient(base)
            submitted = client.submit(SWEEP_SCENARIO)

            # worker A dies abruptly on its first lease (kill every attempt)
            doomed = _run_cli(
                ["worker", "--coordinator", base, "--json"],
                tmp_path, env={"REPRO_CHAOS": "kill=1.0,seed=3"},
            )
            assert doomed.returncode == 86  # os._exit(86): no report sent

            # two healthy workers drain the rest; the killed point re-issues
            # once its 2s lease expires (the "busy" state keeps them polling)
            healthy = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--coordinator", base, "--exit-when-idle",
                     "--poll", "0.1", "--json"],
                    cwd=str(tmp_path),
                    env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
                    stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
                )
                for _ in range(2)
            ]
            detail = client.wait(submitted["id"], timeout=WAIT)
            outs = [w.communicate(timeout=WAIT) for w in healthy]
            assert detail["state"] == "completed", detail
            assert all(w.returncode == 0 for w in healthy), outs
            stats = [json.loads(out) for out, _ in outs]
            assert sum(s["completed"] for s in stats) == 3

            listing = client.leases()
            assert listing["reclaimed"] >= 1  # the killed worker's lease
            killed_tasks = [t for t in listing["tasks"] if t["reclaims"] > 0]
            assert killed_tasks and all(t["state"] == "completed"
                                        for t in listing["tasks"])

            # resume through the shared sink: byte-identical to serial
            resumed = _run_cli(
                ["scenarios", "run", str(scenario_file),
                 "--sink", base, "--json"], tmp_path)
            assert resumed.returncode == 0, resumed.stderr
            assert resumed.stdout == reference.stdout
        finally:
            serve.send_signal(signal.SIGINT)
            try:
                serve.wait(timeout=30)
            except subprocess.TimeoutExpired:
                serve.kill()


class TestCacheDirDeprecation:
    def test_cache_dir_flag_warns_once_per_process(self, tmp_path):
        from repro.api._deprecation import reset_warnings
        from repro.cli import _sink_url_from_args

        class Args:
            sink = None
            cache_dir = str(tmp_path / "cache")
            no_cache = False

        reset_warnings()
        try:
            with pytest.warns(DeprecationWarning, match="--cache-dir is deprecated"):
                assert _sink_url_from_args(Args()) == str(tmp_path / "cache")
            # second use: same URL, no second warning
            import warnings as warnings_module
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error", DeprecationWarning)
                assert _sink_url_from_args(Args()) == str(tmp_path / "cache")
            # --sink wins when both are given
            Args.sink = "memory://"
            assert _sink_url_from_args(Args()) == "memory://"
        finally:
            reset_warnings()
