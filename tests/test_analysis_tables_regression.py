"""Unit tests for table rendering and growth-exponent fits."""

import math

import pytest

from repro.analysis.regression import loglog_slope, ratio_is_bounded, semilog_slope
from repro.analysis.tables import format_table, to_csv


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_title_is_prepended(self):
        text = format_table([{"x": 1}], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0].split()
        assert header == ["c", "a"]

    def test_heterogeneous_rows_use_union_of_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        header = format_table(rows).splitlines()[0].split()
        assert header == ["a", "b"]

    def test_special_float_values(self):
        text = format_table([{"x": math.inf, "y": math.nan, "z": 1e-9}])
        assert "inf" in text
        assert "nan" in text
        assert "e-09" in text

    def test_booleans_render_as_yes_no(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text
        assert "no" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table([])


class TestToCsv:
    def test_basic_csv(self):
        text = to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_unsafe_cells_rejected(self):
        with pytest.raises(ValueError):
            to_csv([{"a": "has,comma"}])


class TestRegression:
    def test_linear_growth_has_slope_one(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.0, abs=1e-9)

    def test_quadratic_growth_has_slope_two(self):
        xs = [10, 20, 40, 80]
        ys = [0.5 * x * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0, abs=1e-9)

    def test_logarithmic_growth_has_small_loglog_slope(self):
        xs = [2**k for k in range(4, 12)]
        ys = [math.log(x) for x in xs]
        assert loglog_slope(xs, ys) < 0.35

    def test_semilog_slope_of_logarithmic_data(self):
        xs = [2**k for k in range(4, 12)]
        ys = [5 * math.log(x) + 1 for x in xs]
        assert semilog_slope(xs, ys) == pytest.approx(5.0, abs=1e-9)

    def test_positive_inputs_required(self):
        with pytest.raises(ValueError):
            loglog_slope([1, -2], [1, 2])
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [0, 2])

    def test_at_least_two_points_required(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_ratio_is_bounded(self):
        assert ratio_is_bounded([1.0, 2.0, 3.0], tolerance=5.0)
        assert not ratio_is_bounded([1.0, 100.0], tolerance=5.0)
        with pytest.raises(ValueError):
            ratio_is_bounded([0.0, 1.0])
